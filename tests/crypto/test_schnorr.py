"""Tests for Schnorr digital signatures (paper Section 2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keypair, keypair_for
from repro.crypto.schnorr import SchnorrSignature, schnorr_sign, schnorr_verify


@pytest.fixture(scope="module")
def keypair():
    return keypair_for("alice", seed=1)


@pytest.fixture(scope="module")
def other_keypair():
    return keypair_for("bob", seed=1)


class TestSchnorrSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        signature = schnorr_sign(keypair.private, b"a message")
        assert schnorr_verify(keypair.public, b"a message", signature)

    def test_modified_message_rejected(self, keypair):
        signature = schnorr_sign(keypair.private, b"a message")
        assert not schnorr_verify(keypair.public, b"another message", signature)

    def test_wrong_public_key_rejected(self, keypair, other_keypair):
        signature = schnorr_sign(keypair.private, b"a message")
        assert not schnorr_verify(other_keypair.public, b"a message", signature)

    def test_forgery_requires_secret_key(self, keypair, other_keypair):
        # Bob signing with his own key cannot produce a signature that
        # verifies under Alice's public key (Section 2.1's forgery claim).
        forged = schnorr_sign(other_keypair.private, b"pay bob")
        assert not schnorr_verify(keypair.public, b"pay bob", forged)

    def test_tampered_scalar_rejected(self, keypair):
        signature = schnorr_sign(keypair.private, b"msg")
        tampered = SchnorrSignature(signature.nonce_point, signature.scalar + 1)
        assert not schnorr_verify(keypair.public, b"msg", tampered)

    def test_signature_is_deterministic(self, keypair):
        assert schnorr_sign(keypair.private, b"m") == schnorr_sign(keypair.private, b"m")

    def test_distinct_messages_get_distinct_nonces(self, keypair):
        sig_a = schnorr_sign(keypair.private, b"m1")
        sig_b = schnorr_sign(keypair.private, b"m2")
        assert sig_a.nonce_point != sig_b.nonce_point

    def test_encode_length(self, keypair):
        assert len(schnorr_sign(keypair.private, b"m").encode()) == 65

    def test_non_signature_object_rejected(self, keypair):
        assert not schnorr_verify(keypair.public, b"m", "not a signature")

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_roundtrip_for_arbitrary_messages(self, message):
        keypair = keypair_for("prop-signer", seed=5)
        signature = schnorr_sign(keypair.private, message)
        assert schnorr_verify(keypair.public, message, signature)
        assert not schnorr_verify(keypair.public, message + b"x", signature)


class TestKeyGeneration:
    def test_deterministic_from_seed(self):
        assert keypair_for("x", seed=3).public == keypair_for("x", seed=3).public

    def test_different_identities_differ(self):
        assert keypair_for("x", seed=3).public != keypair_for("y", seed=3).public

    def test_random_keys_differ(self):
        assert generate_keypair().public != generate_keypair().public

    def test_public_key_matches_private(self):
        keypair = keypair_for("z", seed=4)
        assert keypair.private.public_key() == keypair.public

    def test_fingerprint_is_short_hex(self):
        fingerprint = keypair_for("z", seed=4).public.fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)
