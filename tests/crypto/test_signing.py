"""Tests for the pluggable per-message signing schemes."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.crypto.keys import keypair_for
from repro.crypto.signing import (
    HashSigningScheme,
    SchnorrSigningScheme,
    make_signing_scheme,
)


@pytest.fixture(params=["schnorr", "hash"])
def scheme(request):
    return make_signing_scheme(request.param)


@pytest.fixture
def keypair():
    return keypair_for("signer", seed=2)


class TestSigningSchemes:
    def test_sign_verify_roundtrip(self, scheme, keypair):
        payload = {"type": "read", "item": "x", "nested": [1, 2, 3]}
        signature = scheme.sign(keypair, payload)
        assert scheme.verify(keypair.public, payload, signature)

    def test_modified_payload_rejected(self, scheme, keypair):
        signature = scheme.sign(keypair, {"v": 1})
        assert not scheme.verify(keypair.public, {"v": 2}, signature)

    def test_wrong_key_rejected(self, scheme, keypair):
        other = keypair_for("other", seed=2)
        signature = scheme.sign(keypair, {"v": 1})
        assert not scheme.verify(other.public, {"v": 1}, signature)

    def test_garbage_signature_rejected(self, scheme, keypair):
        assert not scheme.verify(keypair.public, {"v": 1}, b"garbage")
        assert not scheme.verify(keypair.public, {"v": 1}, 12345)

    def test_factory_round_trip(self):
        assert isinstance(make_signing_scheme("schnorr"), SchnorrSigningScheme)
        assert isinstance(make_signing_scheme("hash"), HashSigningScheme)

    def test_factory_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            make_signing_scheme("rsa")

    def test_schnorr_signature_length(self, keypair):
        scheme = SchnorrSigningScheme()
        assert len(scheme.sign(keypair, "payload")) == 65
