"""Tests for Merkle Hash Trees and Verification Objects (paper Section 2.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.crypto.merkle import MerkleTree, merkle_root_of, verify_inclusion


def build_tree(count: int = 16):
    return MerkleTree.from_items({f"item-{i:04d}": i for i in range(count)})


class TestMerkleTreeBasics:
    def test_root_is_deterministic(self):
        assert build_tree().root == build_tree().root

    def test_different_contents_different_roots(self):
        tree_a = MerkleTree.from_items({"a": 1, "b": 2})
        tree_b = MerkleTree.from_items({"a": 1, "b": 3})
        assert tree_a.root != tree_b.root

    def test_single_item_tree(self):
        tree = MerkleTree.from_items({"only": 42})
        proof = tree.verification_object("only")
        assert verify_inclusion("only", 42, proof, tree.root)

    def test_depth_grows_logarithmically(self):
        assert build_tree(8).depth == 3
        assert build_tree(9).depth == 4
        assert build_tree(1000).depth == 10

    def test_vo_size_matches_paper_log2_claim(self):
        # Section 2.3: the verification object has size log2(n).
        tree = build_tree(1024)
        assert len(tree.verification_object("item-0000")) == 10

    def test_contains_and_value_of(self):
        tree = build_tree(4)
        assert "item-0002" in tree
        assert tree.value_of("item-0002") == 2
        with pytest.raises(StorageError):
            tree.value_of("missing")

    def test_unknown_item_proof_raises(self):
        with pytest.raises(StorageError):
            build_tree(4).verification_object("missing")

    def test_ordered_ids_must_match_items(self):
        with pytest.raises(StorageError):
            MerkleTree({"a": 1}, ordered_ids=["a", "b"])

    def test_merkle_root_of_helper(self):
        items = {"a": 1, "b": 2, "c": 3}
        assert merkle_root_of(items) == MerkleTree.from_items(items).root


class TestVerificationObjects:
    def test_proof_verifies_for_every_leaf(self):
        tree = build_tree(10)
        for item_id in tree.item_ids():
            proof = tree.verification_object(item_id)
            assert verify_inclusion(item_id, tree.value_of(item_id), proof, tree.root)

    def test_wrong_value_fails(self):
        tree = build_tree(10)
        proof = tree.verification_object("item-0003")
        assert not verify_inclusion("item-0003", 999, proof, tree.root)

    def test_wrong_item_id_fails(self):
        tree = build_tree(10)
        proof = tree.verification_object("item-0003")
        assert not verify_inclusion("item-0004", 3, proof, tree.root)

    def test_wrong_root_fails(self):
        tree = build_tree(10)
        proof = tree.verification_object("item-0003")
        assert not verify_inclusion("item-0003", 3, proof, b"\x00" * 32)

    def test_proof_from_other_leaf_fails(self):
        tree = build_tree(10)
        proof = tree.verification_object("item-0004")
        assert not verify_inclusion("item-0003", 3, proof, tree.root)


class TestIncrementalUpdates:
    def test_update_changes_root(self):
        tree = build_tree(16)
        before = tree.root
        tree.update("item-0005", 500)
        assert tree.root != before
        assert tree.value_of("item-0005") == 500

    def test_update_matches_full_rebuild(self):
        tree = build_tree(16)
        tree.update("item-0005", 500)
        tree.update("item-0011", -1)
        rebuilt = MerkleTree.from_items(tree.snapshot())
        assert tree.root == rebuilt.root

    def test_update_returns_path_length(self):
        tree = build_tree(1024)
        assert tree.update("item-0000", 7) == tree.depth + 1

    def test_update_many_shares_dirty_ancestors(self):
        # Leaves 1 and 2 share every ancestor above level 1, so the batched
        # sweep hashes 2 leaves, 2 level-1 parents, and one node per level
        # after that -- strictly less than two full root paths.
        tree = build_tree(64)
        work = tree.update_many({"item-0001": 10, "item-0002": 20})
        assert work == 2 + 2 + (tree.depth - 1)
        assert work < 2 * (tree.depth + 1)
        assert tree.root == MerkleTree.from_items(tree.snapshot()).root

    def test_update_many_single_leaf_matches_update_cost(self):
        batched = build_tree(64)
        per_leaf = build_tree(64)
        assert batched.update_many({"item-0003": 5}) == per_leaf.update("item-0003", 5)
        assert batched.root == per_leaf.root

    def test_update_many_empty_batch_is_free(self):
        tree = build_tree(16)
        before = tree.root
        assert tree.update_many({}) == 0
        assert tree.root == before

    def test_update_unknown_item_raises(self):
        with pytest.raises(StorageError):
            build_tree(4).update("missing", 1)

    def test_rebuild_requires_same_ids(self):
        tree = build_tree(4)
        with pytest.raises(StorageError):
            tree.rebuild({"other": 1})

    def test_proofs_valid_after_updates(self):
        tree = build_tree(32)
        tree.update("item-0007", "new-value")
        proof = tree.verification_object("item-0007")
        assert verify_inclusion("item-0007", "new-value", proof, tree.root)
        assert not verify_inclusion("item-0007", 7, proof, tree.root)


class TestBatchedUpdates:
    """The batched dirty-path sweep must match a full rebuild exactly."""

    def test_random_batches_match_fresh_build(self):
        import random

        rng = random.Random(2020)
        tree = build_tree(200)
        items = tree.snapshot()
        for round_number in range(10):
            batch = {
                item_id: rng.randint(0, 10**6)
                for item_id in rng.sample(sorted(items), rng.randint(1, 60))
            }
            tree.update_many(batch)
            items.update(batch)
            assert tree.root == MerkleTree.from_items(items).root

    def test_proofs_verify_after_batched_update(self):
        tree = build_tree(33)  # odd size -> padded leaf level
        batch = {f"item-{i:04d}": 1000 + i for i in range(0, 33, 3)}
        tree.update_many(batch)
        for item_id in tree.item_ids():
            proof = tree.verification_object(item_id)
            assert verify_inclusion(item_id, tree.value_of(item_id), proof, tree.root)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 9, 31, 100])
    def test_padded_and_odd_sized_trees(self, size):
        tree = build_tree(size)
        batch = {f"item-{i:04d}": -i for i in range(size)}
        tree.update_many(batch)
        assert tree.root == MerkleTree.from_items(batch).root

    def test_partial_batch_raises_without_mutating(self):
        tree = build_tree(8)
        before = tree.root
        with pytest.raises(StorageError):
            tree.update_many({"item-0001": 1, "missing": 2})
        assert tree.root == before

    def test_10k_tree_500_leaf_batch_beats_per_leaf_cost(self):
        # The acceptance criterion of the batched-MHT work: strictly fewer
        # node hashes than 500 independent root paths, same root as rebuild.
        tree = build_tree(10_000)
        batch = {f"item-{(i * 17) % 10_000:04d}": i for i in range(500)}
        work = tree.update_many(batch)
        assert work < len(batch) * (tree.depth + 1)
        items = {f"item-{i:04d}": i for i in range(10_000)}
        items.update(batch)
        assert tree.root == MerkleTree.from_items(items).root

    def test_clone_is_independent(self):
        tree = build_tree(16)
        dup = tree.clone()
        assert dup.root == tree.root
        dup.update_many({"item-0004": 99})
        assert dup.root != tree.root
        assert tree.value_of("item-0004") == 4
        assert dup.value_of("item-0004") == 99


class TestSeededRandomSequences:
    """Seeded-random operation sequences: incremental paths == full rebuild.

    Complements the hypothesis properties below with long *mixed* sequences
    (single updates, batched updates, clones, rebuilds) under fixed seeds so
    runs stay deterministic and failures replay exactly.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2020, 424242])
    def test_mixed_operation_sequence_matches_rebuild(self, seed):
        import random

        rng = random.Random(seed)
        size = rng.randint(1, 120)
        items = {f"item-{i:04d}": rng.randint(-100, 100) for i in range(size)}
        tree = MerkleTree.from_items(items)
        for _ in range(30):
            op = rng.choice(["update", "update_many", "rebuild", "clone"])
            if op == "update":
                item_id = rng.choice(sorted(items))
                value = rng.randint(-(10**6), 10**6)
                items[item_id] = value
                tree.update(item_id, value)
            elif op == "update_many":
                chosen = rng.sample(sorted(items), rng.randint(1, min(20, size)))
                batch = {item_id: rng.randint(-(10**6), 10**6) for item_id in chosen}
                items.update(batch)
                tree.update_many(batch)
            elif op == "rebuild":
                tree.rebuild(items)
            else:
                tree = tree.clone()
            assert tree.root == MerkleTree.from_items(items).root

    @pytest.mark.parametrize("seed", [7, 77])
    def test_update_many_work_never_exceeds_per_leaf_updates(self, seed):
        import random

        rng = random.Random(seed)
        tree = build_tree(256)
        for _ in range(10):
            chosen = rng.sample(tree.item_ids(), rng.randint(1, 64))
            batch = {item_id: rng.random() for item_id in chosen}
            per_leaf_cost = len(batch) * (tree.depth + 1)
            assert tree.update_many(batch) <= per_leaf_cost

    @pytest.mark.parametrize("seed", [3, 33])
    def test_proofs_survive_random_batches(self, seed):
        import random

        rng = random.Random(seed)
        tree = build_tree(100)
        for _ in range(5):
            chosen = rng.sample(tree.item_ids(), rng.randint(1, 40))
            tree.update_many({item_id: rng.randint(0, 10**9) for item_id in chosen})
        for item_id in rng.sample(tree.item_ids(), 20):
            proof = tree.verification_object(item_id)
            assert verify_inclusion(item_id, tree.value_of(item_id), proof, tree.root)


_item_maps = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(st.integers(), st.text(max_size=10), st.none()),
    min_size=1,
    max_size=40,
)


class TestMerkleProperties:
    @settings(max_examples=30, deadline=None)
    @given(_item_maps)
    def test_every_proof_verifies(self, items):
        tree = MerkleTree.from_items(items)
        for item_id, value in items.items():
            proof = tree.verification_object(item_id)
            assert verify_inclusion(item_id, value, proof, tree.root)

    @settings(max_examples=30, deadline=None)
    @given(_item_maps, st.data())
    def test_tampered_value_never_verifies(self, items, data):
        tree = MerkleTree.from_items(items)
        item_id = data.draw(st.sampled_from(sorted(items)))
        proof = tree.verification_object(item_id)
        wrong_value = data.draw(st.integers(min_value=10**6, max_value=10**7))
        if items[item_id] != wrong_value:
            assert not verify_inclusion(item_id, wrong_value, proof, tree.root)

    @settings(max_examples=20, deadline=None)
    @given(_item_maps, st.data())
    def test_incremental_update_equals_rebuild(self, items, data):
        tree = MerkleTree.from_items(items)
        item_id = data.draw(st.sampled_from(sorted(items)))
        new_value = data.draw(st.integers())
        tree.update(item_id, new_value)
        updated_items = dict(items)
        updated_items[item_id] = new_value
        assert tree.root == MerkleTree.from_items(updated_items).root

    @settings(max_examples=20, deadline=None)
    @given(_item_maps, st.data())
    def test_batched_update_equals_rebuild(self, items, data):
        tree = MerkleTree.from_items(items)
        subset = data.draw(st.sets(st.sampled_from(sorted(items)), min_size=1))
        batch = {item_id: data.draw(st.integers()) for item_id in subset}
        tree.update_many(batch)
        updated_items = dict(items)
        updated_items.update(batch)
        assert tree.root == MerkleTree.from_items(updated_items).root

    @settings(max_examples=20, deadline=None)
    @given(_item_maps)
    def test_depth_is_ceil_log2(self, items):
        tree = MerkleTree.from_items(items)
        expected = max(0, math.ceil(math.log2(len(items)))) if len(items) > 1 else 0
        assert tree.depth == expected
