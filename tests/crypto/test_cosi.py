"""Tests for Collective Signing (paper Section 2.2, Lemma 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.crypto.cosi import (
    CollectiveSignature,
    CoSiCoordinator,
    CoSiWitness,
    cosi_verify,
    identify_faulty_signers,
    run_cosi_round,
    verify_partial,
)
from repro.crypto.group import CURVE_ORDER
from repro.crypto.keys import keypair_for


def make_witnesses(count: int, seed: int = 0):
    return [CoSiWitness(f"w{i}", keypair_for(f"w{i}", seed=seed)) for i in range(count)]


def public_keys_of(witnesses):
    return {w.identity: w.keypair.public for w in witnesses}


class TestCoSiRound:
    def test_round_produces_verifiable_signature(self):
        witnesses = make_witnesses(4)
        cosign = run_cosi_round(b"a block digest", witnesses)
        assert cosi_verify(cosign, b"a block digest", public_keys_of(witnesses))

    def test_signature_bound_to_record(self):
        witnesses = make_witnesses(4)
        cosign = run_cosi_round(b"record A", witnesses)
        assert not cosi_verify(cosign, b"record B", public_keys_of(witnesses))

    def test_signature_bound_to_signer_keys(self):
        witnesses = make_witnesses(4)
        cosign = run_cosi_round(b"record", witnesses)
        # Same identities but different key pairs: the signature must not verify.
        other_keys = public_keys_of(make_witnesses(4, seed=123))
        assert not cosi_verify(cosign, b"record", other_keys)

    def test_single_witness_round(self):
        witnesses = make_witnesses(1)
        cosign = run_cosi_round(b"solo", witnesses)
        assert cosi_verify(cosign, b"solo", public_keys_of(witnesses))

    def test_missing_public_key_fails_verification(self):
        witnesses = make_witnesses(3)
        cosign = run_cosi_round(b"record", witnesses)
        keys = public_keys_of(witnesses)
        keys.pop("w0")
        assert not cosi_verify(cosign, b"record", keys)

    def test_tampered_challenge_fails(self):
        witnesses = make_witnesses(3)
        cosign = run_cosi_round(b"record", witnesses)
        forged = CollectiveSignature(
            challenge=(cosign.challenge + 1) % CURVE_ORDER,
            response=cosign.response,
            signer_ids=cosign.signer_ids,
        )
        assert not cosi_verify(forged, b"record", public_keys_of(witnesses))

    def test_not_a_signature_object(self):
        witnesses = make_witnesses(2)
        assert not cosi_verify("garbage", b"record", public_keys_of(witnesses))

    @settings(max_examples=8, deadline=None)
    @given(st.binary(min_size=1, max_size=48), st.integers(min_value=1, max_value=5))
    def test_round_verifies_for_arbitrary_records(self, record, count):
        witnesses = make_witnesses(count, seed=9)
        cosign = run_cosi_round(record, witnesses)
        assert cosi_verify(cosign, record, public_keys_of(witnesses))


class TestCoSiProtocolStates:
    def test_witness_requires_announcement_before_commit(self):
        witness = make_witnesses(1)[0]
        with pytest.raises(ProtocolError):
            witness.commit()

    def test_witness_requires_commit_before_respond(self):
        witness = make_witnesses(1)[0]
        witness.on_announcement(b"record")
        with pytest.raises(ProtocolError):
            witness.respond(7)

    def test_witness_refuses_foreign_record(self):
        witness = make_witnesses(1)[0]
        witness.on_announcement(b"record A")
        witness.commit()
        with pytest.raises(ProtocolError):
            witness.respond(7, record=b"record B")

    def test_coordinator_rejects_unknown_witness_response(self):
        coordinator = CoSiCoordinator(b"record")
        with pytest.raises(ProtocolError):
            coordinator.add_response("nobody", 1)

    def test_coordinator_requires_commitments_for_challenge(self):
        coordinator = CoSiCoordinator(b"record")
        with pytest.raises(ProtocolError):
            coordinator.challenge()

    def test_coordinator_requires_all_responses(self):
        witnesses = make_witnesses(2)
        coordinator = CoSiCoordinator(b"record")
        for witness in witnesses:
            witness.on_announcement(b"record")
            coordinator.add_commitment(witness.identity, witness.commit())
        challenge = coordinator.challenge()
        coordinator.add_response("w0", witnesses[0].respond(challenge))
        with pytest.raises(ProtocolError):
            coordinator.aggregate()


class TestCulpritIdentification:
    def _run_round_with_liar(self, liar_index: int):
        witnesses = make_witnesses(4)
        coordinator = CoSiCoordinator(b"record")
        for witness in witnesses:
            witness.on_announcement(b"record")
            coordinator.add_commitment(witness.identity, witness.commit())
        challenge = coordinator.challenge()
        for index, witness in enumerate(witnesses):
            response = witness.respond(challenge)
            if index == liar_index:
                response = (response + 1) % CURVE_ORDER
            coordinator.add_response(witness.identity, response)
        return witnesses, coordinator, challenge

    def test_bad_response_invalidates_signature(self):
        witnesses, coordinator, _ = self._run_round_with_liar(2)
        cosign = coordinator.aggregate()
        assert not cosi_verify(cosign, b"record", public_keys_of(witnesses))

    def test_identify_faulty_signer(self):
        witnesses, coordinator, challenge = self._run_round_with_liar(2)
        culprits = identify_faulty_signers(
            coordinator.commitments,
            coordinator.responses,
            challenge,
            public_keys_of(witnesses),
        )
        assert culprits == ["w2"]

    def test_partial_signature_excluding_culprit_verifies(self):
        witnesses, coordinator, challenge = self._run_round_with_liar(1)
        honest = [w for w in witnesses if w.identity != "w1"]
        for witness in honest:
            assert verify_partial(
                witness.identity,
                coordinator.commitments[witness.identity],
                coordinator.responses[witness.identity],
                challenge,
                witness.keypair.public,
            )

    def test_missing_response_reported(self):
        witnesses = make_witnesses(3)
        coordinator = CoSiCoordinator(b"record")
        for witness in witnesses:
            witness.on_announcement(b"record")
            coordinator.add_commitment(witness.identity, witness.commit())
        challenge = coordinator.challenge()
        coordinator.add_response("w0", witnesses[0].respond(challenge))
        culprits = identify_faulty_signers(
            coordinator.commitments, coordinator.responses, challenge, public_keys_of(witnesses)
        )
        assert culprits == ["w1", "w2"]

    def test_honest_round_has_no_culprits(self):
        witnesses = make_witnesses(3)
        coordinator = CoSiCoordinator(b"record")
        for witness in witnesses:
            witness.on_announcement(b"record")
            coordinator.add_commitment(witness.identity, witness.commit())
        challenge = coordinator.challenge()
        for witness in witnesses:
            coordinator.add_response(witness.identity, witness.respond(challenge))
        assert (
            identify_faulty_signers(
                coordinator.commitments,
                coordinator.responses,
                challenge,
                public_keys_of(witnesses),
            )
            == []
        )
