"""Tests for the secp256k1 group arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.crypto.group import (
    CURVE_ORDER,
    GENERATOR,
    INFINITY,
    Point,
    cached_scalar_multiply,
    decompress_point,
    double_scalar_multiply,
    generator_multiply,
    point_add,
    scalar_multiply,
)

_scalars = st.integers(min_value=1, max_value=CURVE_ORDER - 1)


class TestGroupLaw:
    def test_generator_is_on_curve(self):
        assert GENERATOR.is_on_curve()

    def test_identity_element(self):
        assert point_add(GENERATOR, INFINITY) == GENERATOR
        assert point_add(INFINITY, GENERATOR) == GENERATOR

    def test_inverse_sums_to_infinity(self):
        assert point_add(GENERATOR, -GENERATOR) == INFINITY

    def test_doubling_matches_scalar_two(self):
        assert point_add(GENERATOR, GENERATOR) == scalar_multiply(2, GENERATOR)

    def test_order_times_generator_is_infinity(self):
        assert scalar_multiply(CURVE_ORDER, GENERATOR) == INFINITY

    def test_zero_scalar(self):
        assert scalar_multiply(0, GENERATOR) == INFINITY

    @settings(max_examples=15, deadline=None)
    @given(_scalars)
    def test_generator_table_matches_plain_multiplication(self, scalar):
        assert generator_multiply(scalar) == scalar_multiply(scalar, GENERATOR)

    @settings(max_examples=10, deadline=None)
    @given(_scalars)
    def test_cached_multiply_matches_plain(self, scalar):
        point = generator_multiply(12345)
        assert cached_scalar_multiply(scalar, point) == scalar_multiply(scalar, point)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=2**64), st.integers(min_value=1, max_value=2**64))
    def test_multiplication_distributes_over_addition(self, a, b):
        left = scalar_multiply(a + b, GENERATOR)
        right = point_add(scalar_multiply(a, GENERATOR), scalar_multiply(b, GENERATOR))
        assert left == right

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=2**48), st.integers(min_value=1, max_value=2**48))
    def test_double_scalar_multiply(self, a, b):
        q = generator_multiply(999)
        expected = point_add(scalar_multiply(a, GENERATOR), scalar_multiply(b, q))
        assert double_scalar_multiply(a, GENERATOR, b, q) == expected

    @settings(max_examples=10, deadline=None)
    @given(_scalars)
    def test_results_stay_on_curve(self, scalar):
        assert scalar_multiply(scalar, GENERATOR).is_on_curve()


class TestPointEncoding:
    def test_compressed_roundtrip(self):
        point = generator_multiply(987654321)
        assert decompress_point(point.encode()) == point

    def test_infinity_roundtrip(self):
        assert decompress_point(INFINITY.encode()) == INFINITY

    def test_malformed_prefix_rejected(self):
        with pytest.raises(ValidationError):
            decompress_point(b"\x05" + b"\x00" * 32)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            decompress_point(b"\x02" + b"\x01" * 10)

    def test_off_curve_x_rejected(self):
        # x = 5 is not the abscissa of a curve point on secp256k1.
        with pytest.raises(ValidationError):
            decompress_point(b"\x02" + (5).to_bytes(32, "big"))

    @settings(max_examples=10, deadline=None)
    @given(_scalars)
    def test_roundtrip_preserves_parity_choice(self, scalar):
        point = generator_multiply(scalar)
        assert decompress_point(point.encode()) == point
