"""Tests for hashing utilities."""

from __future__ import annotations

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    EMPTY_HASH,
    hash_concat,
    hash_hex,
    hash_object,
    hash_objects,
    hash_to_int,
    sha256,
)


class TestHashing:
    def test_sha256_matches_stdlib(self):
        assert sha256(b"fides") == hashlib.sha256(b"fides").digest()

    def test_hash_hex(self):
        assert hash_hex(b"fides") == hashlib.sha256(b"fides").hexdigest()

    def test_empty_hash_constant(self):
        assert EMPTY_HASH == hashlib.sha256(b"").digest()

    def test_digest_size(self):
        assert len(sha256(b"x")) == DIGEST_SIZE == 32

    def test_hash_concat_is_not_plain_concatenation(self):
        assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")

    def test_hash_object_equals_for_equal_objects(self):
        assert hash_object({"a": [1, 2]}) == hash_object({"a": [1, 2]})

    def test_hash_objects_order_sensitive(self):
        assert hash_objects([1, 2]) != hash_objects([2, 1])

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=64), st.integers(min_value=2, max_value=2**64))
    def test_hash_to_int_in_range_and_nonzero(self, data, modulus):
        value = hash_to_int(data, modulus)
        assert 1 <= value < max(modulus, 2)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=5))
    def test_hash_concat_deterministic(self, parts):
        assert hash_concat(*parts) == hash_concat(*parts)
