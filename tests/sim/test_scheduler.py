"""Unit tests for the pipelined round scheduler's dependency rules."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolInvariantError
from repro.sim import EventLoop, PipelinedRoundScheduler
from repro.sim.scheduler import KIND_COMPUTE, KIND_TERMINAL


def make_scheduler(depth: int = 1) -> PipelinedRoundScheduler:
    return PipelinedRoundScheduler(EventLoop(), pipeline_depth=depth)


def run_round(scheduler, resource="c0", label="b", **kwargs):
    """Drive one classic five-phase round with unit-duration phases."""
    task = scheduler.begin_block(resource=resource, label=label, **kwargs)
    for phase, kind in (
        ("get_vote", "broadcast"),
        ("aggregate", KIND_COMPUTE),
        ("challenge", "broadcast"),
        ("finalize", KIND_COMPUTE),
        ("decision", KIND_TERMINAL),
    ):
        scheduler.begin_phase(task, phase, kind=kind)
        scheduler.end_phase(task, phase, 1.0)
    scheduler.end_block(task)
    return task


class TestSequentialDepthOne:
    def test_blocks_run_back_to_back(self):
        scheduler = make_scheduler(depth=1)
        first = run_round(scheduler, label="b1")
        second = run_round(scheduler, label="b2")
        assert first.done_at == 5.0
        assert second.started_at == first.done_at
        assert second.done_at == 10.0
        assert scheduler.makespan == 10.0

    def test_phases_are_contiguous(self):
        scheduler = make_scheduler(depth=1)
        task = run_round(scheduler)
        ends = [task.phases[p][1] for p in ("get_vote", "aggregate", "challenge", "finalize", "decision")]
        assert ends == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestPipelining:
    def test_chain_rule_overlaps_from_aggregate_end(self):
        scheduler = make_scheduler(depth=2)
        first = run_round(scheduler, label="b1")
        second = run_round(scheduler, label="b2")
        # Block 2's phase 1 starts when block 1's aggregate ends (its hash
        # pointer exists), overlapping block 1's phases 3-5.
        assert second.started_at == first.phases["aggregate"][1] == 2.0
        assert scheduler.makespan < first.done_at + 5.0

    def test_depth_limits_inflight_blocks(self):
        scheduler = make_scheduler(depth=2)
        first = run_round(scheduler, label="b1")
        second = run_round(scheduler, label="b2")
        third = run_round(scheduler, label="b3")
        # At depth 2 the third block cannot start before the first finished.
        assert third.started_at >= first.done_at
        assert second.started_at < first.done_at

    def test_conflict_rule_serializes(self):
        scheduler = make_scheduler(depth=4)
        first = run_round(scheduler, label="b1", write_items=frozenset({"x"}))
        second = run_round(scheduler, label="b2", read_items=frozenset({"x"}))
        assert second.started_at == first.done_at

    def test_disjoint_footprints_do_overlap(self):
        scheduler = make_scheduler(depth=4)
        first = run_round(scheduler, label="b1", write_items=frozenset({"x"}))
        second = run_round(scheduler, label="b2", write_items=frozenset({"y"}))
        assert second.started_at < first.done_at

    def test_commit_frontier_rule_serializes(self):
        scheduler = make_scheduler(depth=4)
        first = run_round(scheduler, label="b1", max_commit_ts=(7, "c1"))
        second = run_round(scheduler, label="b2", min_commit_ts=(5, "c0"))
        # A transaction at or below the in-flight block's frontier depends on
        # its decision (it may become stale), so the rounds serialize.
        assert second.started_at == first.done_at

    def test_unchained_blocks_skip_the_chain_rule(self):
        scheduler = make_scheduler(depth=2)
        first = run_round(scheduler, label="g1", chained=False)
        second = run_round(scheduler, label="g2", chained=False)
        # Group blocks have no proposal-time hash pointer: only the depth
        # rule applies, so block 2 starts immediately.
        assert second.started_at == 0.0
        assert first.started_at == 0.0

    def test_coordinator_compute_serializes_across_blocks(self):
        scheduler = make_scheduler(depth=2)
        first = run_round(scheduler, label="b1")
        second = run_round(scheduler, label="b2")
        windows = sorted([first.phases["aggregate"], first.phases["finalize"],
                          second.phases["aggregate"], second.phases["finalize"]])
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1  # one machine: compute segments never overlap

    def test_terminal_phases_apply_in_block_order(self):
        scheduler = make_scheduler(depth=2)
        first = run_round(scheduler, label="b1")
        second = run_round(scheduler, label="b2")
        assert second.phases["decision"][0] >= first.phases["decision"][1]


class TestDeliveries:
    def test_deliveries_serialize_on_the_ordering_resource(self):
        scheduler = make_scheduler(depth=2)
        start_a = scheduler.begin_delivery(None, "d1")
        scheduler.end_delivery(None, "d1", start_a, 2.0, write_items=frozenset({"x"}))
        start_b = scheduler.begin_delivery(None, "d2")
        assert start_b == start_a + 2.0

    def test_frontier_gates_only_conflicting_footprints(self):
        scheduler = make_scheduler(depth=2)
        start = scheduler.begin_delivery(None, "d1")
        scheduler.end_delivery(None, "d1", start, 2.0, write_items=frozenset({"x"}))
        blocked = scheduler.begin_block(
            resource="c1", label="g1", read_items=frozenset({"x"}),
            chained=False, group_members=frozenset({"s0"}),
        )
        free = scheduler.begin_block(
            resource="c2", label="g2", read_items=frozenset({"y"}),
            chained=False, group_members=frozenset({"s0"}),
        )
        assert blocked.started_at == 2.0
        assert free.started_at == 0.0


class TestLifecycleGuards:
    def test_begin_phase_twice_raises(self):
        scheduler = make_scheduler()
        task = scheduler.begin_block(resource="c0", label="b")
        scheduler.begin_phase(task, "get_vote")
        with pytest.raises(ProtocolInvariantError):
            scheduler.begin_phase(task, "aggregate")

    def test_end_phase_without_begin_raises(self):
        scheduler = make_scheduler()
        task = scheduler.begin_block(resource="c0", label="b")
        with pytest.raises(ProtocolInvariantError):
            scheduler.end_phase(task, "get_vote", 1.0)

    def test_end_block_closes_an_open_phase(self):
        # A round that dies mid-phase (coordinator crash) still finishes its
        # task; the open phase closes at zero additional cost.
        scheduler = make_scheduler()
        task = scheduler.begin_block(resource="c0", label="b")
        start = scheduler.begin_phase(task, "get_vote")
        done = scheduler.end_block(task, status="failed")
        assert done == start
        assert task.status == "failed"

    def test_depth_below_one_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler(depth=0)
