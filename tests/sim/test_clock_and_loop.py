"""Unit tests for the virtual clock and the deterministic event loop."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolInvariantError
from repro.sim import EventLoop, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_set_may_jump_backwards(self):
        # Scheduling another resource's earlier activity legitimately moves
        # the "current activity time" backwards (see the module docstring).
        clock = VirtualClock(start=10.0)
        clock.set(2.0)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        loop.schedule(2.0, "b")
        loop.schedule(1.0, "a")
        loop.schedule(3.0, "c")
        fired = loop.run_until_idle()
        assert [event.kind for event in fired] == ["a", "b", "c"]
        assert loop.timeline == fired

    def test_ties_break_by_creation_order(self):
        loop = EventLoop()
        first = loop.schedule(1.0, "x", label="first")
        second = loop.schedule(1.0, "x", label="second")
        assert first.seq < second.seq
        fired = loop.run_until_idle()
        assert [event.label for event in fired] == ["first", "second"]

    def test_horizon_tracks_latest_scheduled_time(self):
        loop = EventLoop()
        loop.schedule(5.0, "a")
        loop.schedule(1.0, "b")
        assert loop.horizon == 5.0

    def test_negative_time_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            EventLoop().schedule(-1.0, "bad")

    def test_callbacks_run_and_may_schedule_more(self):
        loop = EventLoop()
        seen = []

        def chain(event):
            seen.append(event.label)
            if len(seen) < 3:
                loop.schedule(event.time + 1.0, "tick", label=f"t{len(seen)}", callback=chain)

        loop.schedule(0.0, "tick", label="t0", callback=chain)
        loop.run_until_idle()
        assert seen == ["t0", "t1", "t2"]

    def test_fingerprint_is_stable_and_covers_pending_events(self):
        def build():
            loop = EventLoop()
            loop.schedule(1.0, "a", resource="r", label="x", detail={"k": 1})
            loop.schedule(0.5, "b")
            return loop

        drained = build()
        drained.run_until_idle()
        pending = build()
        assert drained.fingerprint() == pending.fingerprint()
        other = build()
        other.schedule(0.75, "c")
        assert other.fingerprint() != pending.fingerprint()
