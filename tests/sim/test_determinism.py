"""Scheduler determinism: same seed => identical timeline, blocks, timings.

These tests run whole deployments twice under the deterministic
:class:`~repro.sim.context.FixedCompute` model (measured wall-clock compute
is the one intentionally non-deterministic input; the model replaces it) and
assert that the event timelines, block orders, and timing metrics are
bit-identical -- including under crash/recovery faults.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.core.scaled import ScaledFidesSystem
from repro.net.latency import lan_latency
from repro.server.faults import CrashFault
from repro.sim import FixedCompute
from repro.workload.ycsb import YcsbWorkload


def classic_config(depth: int = 2, seed: int = 2020) -> SystemConfig:
    return SystemConfig(
        num_servers=3,
        items_per_shard=60,
        txns_per_block=2,
        ops_per_txn=2,
        multi_versioned=False,
        message_signing="hash",
        pipeline_depth=depth,
        seed=seed,
    )


def run_classic(depth: int = 2, seed: int = 2020, crash: bool = False):
    config = classic_config(depth=depth, seed=seed)
    system = FidesSystem(
        config=config,
        latency=lan_latency(seed=seed),
        compute_model=FixedCompute(0.001),
    )
    if crash:
        # A cohort crashes in the vote phase of the round at height >= 1:
        # that round fails, the workload continues on retry semantics, and
        # the server recovers mid-run -- all of it on the virtual timeline.
        system.inject_fault("s2", CrashFault(phase="vote", at_height=1))
    workload = YcsbWorkload(
        item_ids=system.shard_map.all_items(),
        ops_per_txn=2,
        conflict_free_window=2 * config.txns_per_block,
        seed=seed,
    )
    outcome = system.run_workload(workload.generate(8))
    if crash:
        assert system.crashed_servers() == ["s2"]
        system.recover_server("s2")
        outcome2 = system.run_workload(workload.generate(4))
        system.sim.drain()
        return system, (outcome, outcome2)
    return system, (outcome,)


def timeline_of(system):
    return [event.describe() for event in system.sim.loop.timeline]


def timings_of(outcomes):
    return [
        (r.status, None if r.block is None else r.block.height, sorted(r.timing.phases.items()))
        for outcome in outcomes
        for r in outcome.block_results
    ]


class TestClassicDeterminism:
    def test_same_seed_same_timeline_and_metrics(self):
        a_system, a_outcomes = run_classic()
        b_system, b_outcomes = run_classic()
        assert a_system.sim.fingerprint() == b_system.sim.fingerprint()
        assert timeline_of(a_system) == timeline_of(b_system)
        assert timings_of(a_outcomes) == timings_of(b_outcomes)
        assert a_system.sim.makespan == b_system.sim.makespan

    def test_different_seed_different_timeline(self):
        a_system, _ = run_classic(seed=2020)
        b_system, _ = run_classic(seed=2021)
        assert a_system.sim.fingerprint() != b_system.sim.fingerprint()

    def test_depth_changes_timeline_but_not_outcomes(self):
        a_system, a_outcomes = run_classic(depth=1)
        b_system, b_outcomes = run_classic(depth=2)
        assert a_system.sim.fingerprint() != b_system.sim.fingerprint()
        a_blocks = [(s, h) for s, h, _ in timings_of(a_outcomes)]
        b_blocks = [(s, h) for s, h, _ in timings_of(b_outcomes)]
        assert a_blocks == b_blocks
        assert b_system.sim.makespan < a_system.sim.makespan

    def test_deterministic_under_crash_and_recovery(self):
        a_system, a_outcomes = run_classic(crash=True)
        b_system, b_outcomes = run_classic(crash=True)
        assert any(r.status == "failed" for out in a_outcomes for r in out.block_results)
        assert a_system.sim.fingerprint() == b_system.sim.fingerprint()
        assert timings_of(a_outcomes) == timings_of(b_outcomes)
        assert a_system.audit().ok and b_system.audit().ok


class TestScaledDeterminism:
    def run_scaled(self, seed: int = 2020):
        config = SystemConfig(
            num_servers=4,
            items_per_shard=50,
            txns_per_block=2,
            ops_per_txn=2,
            multi_versioned=False,
            message_signing="hash",
            pipeline_depth=2,
            seed=seed,
        )
        system = ScaledFidesSystem(
            config, latency=lan_latency(seed=seed), compute_model=FixedCompute(0.001)
        )
        from repro.bench.harness import locality_partitions
        from repro.workload.ycsb import PartitionedWorkload

        workload = PartitionedWorkload(
            partitions=locality_partitions(system, 2),
            ops_per_txn=2,
            locality=1.0,
            conflict_free_window=4,
            seed=seed,
        )
        outcome = system.run_workload(workload.generate(12), num_clients=2)
        return system, outcome

    def test_same_seed_same_interleaved_timeline(self):
        a_system, a_outcome = self.run_scaled()
        b_system, b_outcome = self.run_scaled()
        assert a_system.sim.fingerprint() == b_system.sim.fingerprint()
        assert a_outcome.committed == b_outcome.committed
        assert a_system.sim.makespan == b_system.sim.makespan
        # The shared timeline genuinely interleaves distinct coordinators and
        # the ordering service.
        resources = {event.resource for event in a_system.sim.loop.timeline}
        assert "ordserv" in resources
        assert len({r for r in resources if r.startswith("s")}) >= 2
