"""Tests for the fault-injection policies."""

from __future__ import annotations

from repro.crypto.group import CURVE_ORDER, generator_multiply
from repro.server.faults import (
    BadCosiFault,
    DatastoreCorruptionFault,
    EquivocatingCoordinatorFault,
    FakeRootFault,
    HonestBehavior,
    IsolationViolationFault,
    LogTamperFault,
    LogTruncationFault,
    StaleReadFault,
)


class TestHonestBehavior:
    def test_all_hooks_are_identity(self):
        honest = HonestBehavior()
        point = generator_multiply(7)
        assert honest.corrupt_read_value("x", 5) == 5
        assert honest.corrupt_commitment(point) == point
        assert honest.corrupt_response(9) == 9
        assert honest.corrupt_root(b"r") == b"r"
        assert honest.skip_validation() is False
        assert honest.equivocate() is False
        assert honest.post_commit_corruption() == {}
        assert honest.fake_root_for("s1", b"r") == b"r"
        assert honest.drop_buffered_write("x") is False


class TestFaultPolicies:
    def test_stale_read_fault_trigger_after(self):
        fault = StaleReadFault(target_item="x", wrong_value=0, trigger_after=1)
        assert fault.corrupt_read_value("x", 10) == 10  # first read honest
        assert fault.corrupt_read_value("x", 10) == 0  # second read lies
        assert fault.corrupt_read_value("y", 7) == 7

    def test_datastore_corruption_fires_once(self):
        fault = DatastoreCorruptionFault(corruptions={"x": 666})
        assert fault.post_commit_corruption() == {"x": 666}
        assert fault.post_commit_corruption() == {}

    def test_isolation_violation_skips_validation(self):
        assert IsolationViolationFault().skip_validation() is True

    def test_bad_cosi_response_corruption(self):
        fault = BadCosiFault(corrupt_resp=True)
        assert fault.corrupt_response(5) == 6 % CURVE_ORDER
        assert fault.corrupt_commitment(generator_multiply(3)) == generator_multiply(3)

    def test_bad_cosi_commitment_corruption(self):
        fault = BadCosiFault(corrupt_commit=True, corrupt_resp=False)
        assert fault.corrupt_commitment(generator_multiply(3)) != generator_multiply(3)
        assert fault.corrupt_response(5) == 5

    def test_equivocating_coordinator(self):
        assert EquivocatingCoordinatorFault().equivocate() is True

    def test_fake_root_only_for_victim(self):
        fault = FakeRootFault(victim="s1", fake_root=b"\xaa" * 32)
        assert fault.fake_root_for("s1", b"real") == b"\xaa" * 32
        assert fault.fake_root_for("s2", b"real") == b"real"

    def test_log_faults_have_names(self):
        assert LogTamperFault().name == "log-tamper"
        assert LogTruncationFault().name == "log-truncation"
        assert StaleReadFault(target_item="x").name == "stale-read"
