"""Tests for the database server's message dispatch."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.crypto.keys import keypair_for
from repro.crypto.merkle import verify_inclusion
from repro.net.latency import ConstantLatency
from repro.net.message import MessageType
from repro.net.network import Network
from repro.server.server import DatabaseServer


@pytest.fixture
def wired_server():
    network = Network(latency=ConstantLatency(0.0001))
    server = DatabaseServer("s0", keypair_for("s0"), {"a": 1, "b": 2})
    server.attach(network)
    network.register_observer("c0", keypair_for("c0"))
    return network, server


class TestExecutionMessages:
    def test_begin_read_write_flow(self, wired_server):
        network, server = wired_server
        assert network.send("c0", "s0", MessageType.BEGIN_TRANSACTION, {"txn_id": "t1"})["ok"]
        read = network.send("c0", "s0", MessageType.READ, {"txn_id": "t1", "item_id": "a"})
        assert read["value"] == 1
        write = network.send(
            "c0", "s0", MessageType.WRITE, {"txn_id": "t1", "item_id": "a", "value": 5}
        )
        assert write["ok"] and write["old"]["value"] == 1
        # Writes stay buffered until the commit protocol applies them.
        assert server.store.read("a").value == 1

    def test_client_messages_are_archived(self, wired_server):
        network, server = wired_server
        network.send("c0", "s0", MessageType.BEGIN_TRANSACTION, {"txn_id": "t1"})
        network.send("c0", "s0", MessageType.READ, {"txn_id": "t1", "item_id": "a"})
        assert len(server.execution.client_message_log) == 2

    def test_unknown_message_type_rejected(self, wired_server):
        # Every real MessageType member is dispatched (the static analyzer's
        # totality check), so an undispatched type has to be faked.
        class _BogusType:
            value = "bogus"

        network, server = wired_server
        with pytest.raises(ProtocolError):
            network.send("c0", "s0", _BogusType(), {})

    def test_end_transaction_without_coordinator_role_rejected(self, wired_server):
        network, server = wired_server
        with pytest.raises(ProtocolError):
            network.send("c0", "s0", MessageType.END_TRANSACTION, {"transaction": None})


class TestAuditMessages:
    def test_audit_log_request_returns_copy(self, wired_server):
        network, server = wired_server
        response = network.send("auditor" if False else "c0", "s0", MessageType.AUDIT_LOG_REQUEST, {})
        log_copy = response["log"]
        assert len(log_copy) == 0
        log_copy.truncate(0)
        assert len(server.log) == 0

    def test_audit_vo_request_latest(self, wired_server):
        network, server = wired_server
        response = network.send(
            "c0", "s0", MessageType.AUDIT_VO_REQUEST, {"item_id": "a", "at": None}
        )
        assert response["ok"]
        assert verify_inclusion("a", response["value"], response["vo"], response["root"])

    def test_audit_vo_request_unknown_item(self, wired_server):
        network, _ = wired_server
        response = network.send(
            "c0", "s0", MessageType.AUDIT_VO_REQUEST, {"item_id": "zz", "at": None}
        )
        assert not response["ok"]


class TestFaultWiring:
    def test_set_faults_applies_to_both_layers(self, wired_server):
        from repro.server.faults import IsolationViolationFault

        _, server = wired_server
        policy = IsolationViolationFault()
        server.set_faults(policy)
        assert server.execution.faults is policy
        assert server.commitment.faults is policy
        assert server.faults is policy

    def test_snapshot(self, wired_server):
        _, server = wired_server
        assert server.snapshot() == {"a": 1, "b": 2}
