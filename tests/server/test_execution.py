"""Tests for the transaction execution layer (Section 4.2.1)."""

from __future__ import annotations

import pytest

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.net.message import Envelope, MessageType
from repro.server.execution import ExecutionLayer
from repro.server.faults import StaleReadFault
from repro.storage.datastore import DataStore


@pytest.fixture
def layer():
    return ExecutionLayer(DataStore({"x": 10, "y": 20}))


class TestReadsAndWrites:
    def test_read_returns_value_and_timestamps(self, layer):
        result = layer.read("t1", "x")
        assert result.value == 10
        assert result.rts == Timestamp.zero()
        assert result.wts == Timestamp.zero()

    def test_read_unknown_item_raises(self, layer):
        with pytest.raises(StorageError):
            layer.read("t1", "missing")

    def test_writes_are_buffered_not_applied(self, layer):
        layer.begin("t1", "c0")
        ack = layer.write("t1", "x", 99)
        assert ack.value == 10  # old value, for blind-write support
        assert layer.store.read("x").value == 10
        assert layer.buffered_writes("t1") == {"x": 99}

    def test_write_unknown_item_raises(self, layer):
        with pytest.raises(StorageError):
            layer.write("t1", "missing", 1)

    def test_finish_clears_state(self, layer):
        layer.begin("t1", "c0")
        layer.write("t1", "x", 99)
        layer.finish("t1")
        assert layer.buffered_writes("t1") == {}
        assert "t1" not in layer.active_transactions()

    def test_begin_is_idempotent(self, layer):
        layer.begin("t1", "c0")
        layer.write("t1", "x", 99)
        layer.begin("t1", "c0")
        assert layer.buffered_writes("t1") == {"x": 99}

    def test_multiple_transactions_are_isolated(self, layer):
        layer.write("t1", "x", 99)
        layer.write("t2", "y", 88)
        assert layer.buffered_writes("t1") == {"x": 99}
        assert layer.buffered_writes("t2") == {"y": 88}


class TestFaultHooks:
    def test_stale_read_fault_corrupts_returned_value(self):
        layer = ExecutionLayer(
            DataStore({"x": 10}), faults=StaleReadFault(target_item="x", wrong_value=-1)
        )
        assert layer.read("t1", "x").value == -1
        # The datastore itself is untouched; only the response lies.
        assert layer.store.read("x").value == 10

    def test_fault_only_affects_target_item(self):
        layer = ExecutionLayer(
            DataStore({"x": 10, "y": 20}), faults=StaleReadFault(target_item="x", wrong_value=-1)
        )
        assert layer.read("t1", "y").value == 20


class TestClientMessageArchive:
    def test_archive_keeps_signed_requests(self, layer):
        envelope = Envelope("c0", "s0", MessageType.READ, {"item_id": "x"}, signature=b"sig")
        layer.archive_client_message(envelope)
        assert layer.client_message_log == [envelope]
