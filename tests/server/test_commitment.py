"""Unit tests for the cohort-side commitment layer (TFCommit phases 2, 4, 5)."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import (
    CollectiveSignature,
    aggregate_points,
    aggregate_scalars,
    compute_challenge,
)
from repro.crypto.group import decompress_point
from repro.crypto.keys import keypair_for
from repro.ledger.block import BlockDecision, genesis_previous_hash, make_partial_block
from repro.ledger.log import TransactionLog
from repro.server.commitment import CommitmentLayer
from repro.storage.datastore import DataStore
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry

SERVER_IDS = ["s0", "s1"]


def make_cohorts():
    cohorts = {}
    for server_id in SERVER_IDS:
        store = DataStore({f"{server_id}-item": 0})
        cohorts[server_id] = CommitmentLayer(
            server_id, keypair_for(server_id, seed=5), store, TransactionLog()
        )
    return cohorts


def make_txn(item: str, counter: int = 5) -> Transaction:
    zero = Timestamp.zero()
    return Transaction(
        txn_id=f"t-{item}-{counter}",
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(item, 0, zero, zero)],
        write_set=[WriteSetEntry(item, 42)],
    )


def run_phases(cohorts, block, tamper_block_for_challenge=None):
    """Drive phases 2-4 directly against the cohort layers."""
    votes = {sid: layer.handle_get_vote(block) for sid, layer in cohorts.items()}
    roots = {sid: v.root for sid, v in votes.items() if v.involved and v.root is not None}
    decision = (
        BlockDecision.COMMIT
        if all(v.decision == "commit" for v in votes.values() if v.involved)
        else BlockDecision.ABORT
    )
    decided = block.with_decision(decision, roots)
    aggregate = aggregate_points(decompress_point(v.commitment) for v in votes.values())
    challenge = compute_challenge(aggregate, decided.body_digest())
    challenge_block = tamper_block_for_challenge or decided
    responses = {
        sid: layer.handle_challenge(challenge, aggregate.encode(), challenge_block)
        for sid, layer in cohorts.items()
    }
    return votes, decided, challenge, responses


class TestVotePhase:
    def test_involved_cohort_votes_commit_with_root(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        vote = cohorts["s0"].handle_get_vote(block)
        assert vote.involved and vote.decision == "commit"
        assert vote.root is not None and vote.mht_hashes > 0

    def test_uninvolved_cohort_still_co_signs(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        vote = cohorts["s1"].handle_get_vote(block)
        assert not vote.involved
        assert vote.root is None
        assert len(vote.commitment) == 33  # a Schnorr commitment is still produced

    def test_forced_abort_reason(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        vote = cohorts["s0"].handle_get_vote(block, force_abort_reason="bad client signature")
        assert vote.decision == "abort"
        assert vote.abort_reason == "bad client signature"

    def test_validation_failure_votes_abort(self):
        cohorts = make_cohorts()
        cohorts["s0"].store.apply_commit(Timestamp(10, "z"), {"s0-item": 7})
        block = make_partial_block(0, [make_txn("s0-item", counter=5)], genesis_previous_hash())
        vote = cohorts["s0"].handle_get_vote(block)
        assert vote.decision == "abort"
        assert vote.abort_reason

    def test_wrong_height_rejected(self):
        cohorts = make_cohorts()
        block = make_partial_block(3, [make_txn("s0-item")], genesis_previous_hash())
        with pytest.raises(ProtocolError):
            cohorts["s0"].handle_get_vote(block)


class TestChallengePhase:
    def test_honest_round_produces_responses(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        _, decided, challenge, responses = run_phases(cohorts, block)
        assert all(resp["ok"] for resp in responses.values())

    def test_challenge_for_unknown_round_rejected(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        decided = block.with_decision(BlockDecision.COMMIT, {})
        with pytest.raises(ProtocolError):
            cohorts["s0"].handle_challenge(1, b"\x00", decided)

    def test_cohort_detects_fake_root(self):
        # Scenario 2: the coordinator records a wrong root for a benign server.
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        votes = {sid: layer.handle_get_vote(block) for sid, layer in cohorts.items()}
        fake_roots = {"s0": b"\x00" * 32}
        decided = block.with_decision(BlockDecision.COMMIT, fake_roots)
        aggregate = aggregate_points(decompress_point(v.commitment) for v in votes.values())
        challenge = compute_challenge(aggregate, decided.body_digest())
        response = cohorts["s0"].handle_challenge(challenge, aggregate.encode(), decided)
        assert not response["ok"]
        assert "different root" in response["reason"]

    def test_cohort_detects_challenge_block_mismatch(self):
        # Lemma 5 / Case 1: the challenge was computed over a different block.
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        votes = {sid: layer.handle_get_vote(block) for sid, layer in cohorts.items()}
        roots = {sid: v.root for sid, v in votes.items() if v.root is not None}
        commit_block = block.with_decision(BlockDecision.COMMIT, roots)
        abort_block = block.with_decision(BlockDecision.ABORT, {})
        aggregate = aggregate_points(decompress_point(v.commitment) for v in votes.values())
        challenge = compute_challenge(aggregate, commit_block.body_digest())
        response = cohorts["s1"].handle_challenge(challenge, aggregate.encode(), abort_block)
        assert not response["ok"]
        assert "does not correspond" in response["reason"]

    def test_cohort_refuses_commit_after_voting_abort(self):
        cohorts = make_cohorts()
        cohorts["s0"].store.apply_commit(Timestamp(10, "z"), {"s0-item": 7})
        block = make_partial_block(0, [make_txn("s0-item", counter=5)], genesis_previous_hash())
        votes = {sid: layer.handle_get_vote(block) for sid, layer in cohorts.items()}
        # Malicious coordinator ignores the abort vote and claims commit,
        # forging a root for s0.
        decided = block.with_decision(BlockDecision.COMMIT, {"s0": b"\x01" * 32})
        aggregate = aggregate_points(decompress_point(v.commitment) for v in votes.values())
        challenge = compute_challenge(aggregate, decided.body_digest())
        response = cohorts["s0"].handle_challenge(challenge, aggregate.encode(), decided)
        assert not response["ok"]


class TestDecisionPhase:
    def _finalise(self, cohorts, block):
        votes, decided, challenge, responses = run_phases(cohorts, block)
        cosign = CollectiveSignature(
            challenge=challenge,
            response=aggregate_scalars(r["response"] for r in responses.values()),
            signer_ids=tuple(sorted(cohorts)),
        )
        return decided.with_cosign(cosign)

    def test_decision_appends_and_applies(self):
        cohorts = make_cohorts()
        public_keys = {sid: keypair_for(sid, seed=5).public for sid in SERVER_IDS}
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        final = self._finalise(cohorts, block)
        for layer in cohorts.values():
            result = layer.handle_decision(final, public_keys)
            assert result["ok"]
            assert len(layer.log) == 1
        assert cohorts["s0"].store.read("s0-item").value == 42
        assert cohorts["s1"].store.read("s1-item").value == 0

    def test_decision_with_invalid_cosign_rejected(self):
        cohorts = make_cohorts()
        public_keys = {sid: keypair_for(sid, seed=5).public for sid in SERVER_IDS}
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        final = self._finalise(cohorts, block)
        forged = final.with_cosign(
            CollectiveSignature(
                challenge=final.cosign.challenge,
                response=(final.cosign.response + 1),
                signer_ids=final.cosign.signer_ids,
            )
        )
        result = cohorts["s0"].handle_decision(forged, public_keys)
        assert not result["ok"]
        assert len(cohorts["s0"].log) == 0
        assert cohorts["s0"].store.read("s0-item").value == 0


class TestTwoPhaseCommitCohort:
    def test_prepare_and_decision(self):
        cohorts = make_cohorts()
        block = make_partial_block(0, [make_txn("s0-item")], genesis_previous_hash())
        vote = cohorts["s0"].handle_prepare(block)
        assert vote["involved"] and vote["decision"] == "commit"
        decided = block.with_decision(BlockDecision.COMMIT, {})
        result = cohorts["s0"].handle_2pc_decision(decided)
        assert result["ok"]
        assert cohorts["s0"].store.read("s0-item").value == 42
        assert len(cohorts["s0"].log) == 1

    def test_prepare_conflict_votes_abort(self):
        cohorts = make_cohorts()
        cohorts["s0"].store.apply_commit(Timestamp(10, "z"), {"s0-item": 7})
        block = make_partial_block(0, [make_txn("s0-item", counter=5)], genesis_previous_hash())
        vote = cohorts["s0"].handle_prepare(block)
        assert vote["decision"] == "abort"
