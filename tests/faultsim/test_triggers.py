"""Unit tests for fault triggers, plans, and the plan-driven policy."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.faultsim import (
    AfterCallsTrigger,
    AtHeightTrigger,
    AtTimeTrigger,
    FaultPlan,
    PhaseTrigger,
    PlannedFaultPolicy,
    ProbabilisticTrigger,
    Trigger,
    TxnPredicateTrigger,
    build_fault_matrix,
    trigger_from_spec,
)
from repro.server.faults import FaultContext


def ctx(phase="vote", height=3, txns=("t1",)):
    return FaultContext(phase=phase, block_height=height, txn_ids=txns)


class TestTriggers:
    def test_always_fires(self):
        assert Trigger().fires(ctx())

    def test_at_height_from(self):
        trigger = AtHeightTrigger(height=2)
        assert not trigger.fires(ctx(height=1))
        assert trigger.fires(ctx(height=2))
        assert trigger.fires(ctx(height=7))
        assert not trigger.fires(ctx(height=None))

    def test_at_height_exact(self):
        trigger = AtHeightTrigger(height=2, exact=True)
        assert trigger.fires(ctx(height=2))
        assert not trigger.fires(ctx(height=3))

    def test_phase_trigger(self):
        trigger = PhaseTrigger(phases=("decision",))
        assert trigger.fires(ctx(phase="decision"))
        assert not trigger.fires(ctx(phase="vote"))

    def test_txn_trigger_by_item(self):
        trigger = TxnPredicateTrigger(item_ids=("x",))
        assert trigger.fires(ctx(), item_id="x")
        assert not trigger.fires(ctx(), item_id="y")

    def test_txn_trigger_by_prefix(self):
        trigger = TxnPredicateTrigger(txn_prefix="c1-")
        assert trigger.fires(ctx(txns=("c1-txn-3",)))
        assert not trigger.fires(ctx(txns=("c0-txn-3",)))
        assert trigger.fires(ctx(txns=()), txn_id="c1-txn-9")

    def test_probabilistic_is_seeded_and_latching(self):
        draws_a = [ProbabilisticTrigger(probability=0.5, seed=9).fires(ctx()) for _ in range(5)]
        draws_b = [ProbabilisticTrigger(probability=0.5, seed=9).fires(ctx()) for _ in range(5)]
        assert draws_a == draws_b
        latching = ProbabilisticTrigger(probability=0.5, seed=9, latch=True)
        fired = [latching.fires(ctx()) for _ in range(20)]
        if any(fired):
            assert all(fired[fired.index(True):])

    def test_probability_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticTrigger(probability=1.5)

    def test_after_calls(self):
        trigger = AfterCallsTrigger(skip=2)
        assert [trigger.fires(ctx()) for _ in range(4)] == [False, False, True, True]

    def test_spec_round_trip(self):
        assert isinstance(trigger_from_spec(None), Trigger)
        assert isinstance(trigger_from_spec({}), Trigger)
        trigger = trigger_from_spec({"kind": "at-height", "height": 4, "exact": True})
        assert isinstance(trigger, AtHeightTrigger) and trigger.height == 4
        trigger = trigger_from_spec({"kind": "phase", "phases": ["vote", "decision"]})
        assert trigger.phases == ("vote", "decision")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            trigger_from_spec({"kind": "full-moon"})
        with pytest.raises(ConfigurationError):
            trigger_from_spec({"kind": "at-height", "altitude": 3})


class TestAtTimeTrigger:
    def test_fires_from_the_virtual_time_onwards(self):
        trigger = AtTimeTrigger(time=1.5)
        early = FaultContext(phase="vote", sim_time=1.0)
        late = FaultContext(phase="vote", sim_time=2.0)
        assert not trigger.fires(early)
        assert trigger.fires(late)
        assert trigger.describe() == "t>=1.5"

    def test_never_fires_without_a_simulation_context(self):
        trigger = AtTimeTrigger(time=0.0)
        assert not trigger.fires(FaultContext(phase="vote", sim_time=None))

    def test_spec_round_trip(self):
        trigger = trigger_from_spec({"kind": "at-time", "time": 0.25})
        assert isinstance(trigger, AtTimeTrigger)
        assert trigger.time == 0.25

    def test_observe_phase_stamps_the_attached_clock(self):
        from repro.server.faults import HonestBehavior
        from repro.sim import VirtualClock

        clock = VirtualClock()
        policy = HonestBehavior()
        policy.observe_phase("vote", 0)
        assert policy.context.sim_time is None
        policy.attach_clock(clock)
        clock.set(3.25)
        policy.observe_phase("vote", 0)
        assert policy.context.sim_time == 3.25

    def test_time_triggered_fault_fires_on_the_event_timeline(self):
        """An at-time planned fault detonates mid-run at its virtual time."""
        from repro.common.config import SystemConfig
        from repro.core.fides import FidesSystem
        from repro.faultsim import PlannedFaultPolicy
        from repro.net.latency import ConstantLatency
        from repro.sim import FixedCompute
        from repro.workload.ycsb import YcsbWorkload

        def build(trigger_time):
            config = SystemConfig(
                num_servers=3,
                items_per_shard=40,
                txns_per_block=1,
                ops_per_txn=2,
                multi_versioned=True,
                message_signing="hash",
                seed=9,
            )
            system = FidesSystem(
                config=config,
                latency=ConstantLatency(0.001),
                compute_model=FixedCompute(0.001),
            )
            plan = FaultPlan(
                fault="skip-validation",
                target="s1",
                trigger={"kind": "at-time", "time": trigger_time},
            )
            system.inject_fault("s1", PlannedFaultPolicy([plan]))
            workload = YcsbWorkload(
                item_ids=system.shard_map.all_items(), ops_per_txn=2, seed=9
            )
            system.run_workload(workload.generate(6))
            return system

        # Past the horizon: the fault never fires during the run.
        never = build(trigger_time=10_000.0)
        assert never.servers["s1"].faults.context.sim_time is not None
        # From virtual time zero: fires on the very first observed phase.
        always = build(trigger_time=0.0)
        assert always.servers["s1"].faults.skip_validation()
        assert not never.servers["s1"].faults.skip_validation()


class TestFaultPlans:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(fault="bribe-the-auditor", target="s1")

    def test_plans_serialise_declaratively(self):
        plan = FaultPlan(
            fault="read-corruption",
            target="s1",
            trigger={"kind": "at-height", "height": 2},
            params={"item": "item-1"},
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_matrix_needs_three_servers(self):
        with pytest.raises(ConfigurationError):
            build_fault_matrix(["s0", "s1"])

    def test_matrix_enumerates_kind_x_trigger_grid(self):
        matrix = build_fault_matrix(["s0", "s1", "s2"])
        assert len(matrix) == 19 * 3
        assert len({scenario.name for scenario in matrix}) == len(matrix)


class TestPlannedPolicy:
    def test_hooks_stay_honest_until_trigger_fires(self):
        plan = FaultPlan(
            fault="read-corruption", target="s1", trigger={"kind": "at-height", "height": 5}
        )
        policy = PlannedFaultPolicy([plan])
        policy.observe_phase("execute", 1, ("t1",))
        assert policy.corrupt_read_value("x", 42) == 42
        assert not policy.fired()
        policy.observe_phase("execute", 5, ("t2",))
        assert policy.corrupt_read_value("x", 42) != 42
        assert policy.fired_heights["read-corruption"] == 5

    def test_item_restriction(self):
        plan = FaultPlan(fault="read-corruption", target="s1", params={"item": "x"})
        policy = PlannedFaultPolicy([plan])
        policy.observe_phase("execute", 0)
        assert policy.corrupt_read_value("y", 1) == 1
        assert policy.corrupt_read_value("x", 1) != 1

    def test_composed_plans_on_one_server(self):
        policy = PlannedFaultPolicy(
            [
                FaultPlan(fault="skip-validation", target="s1"),
                FaultPlan(fault="collude", target="s1"),
            ]
        )
        policy.observe_phase("vote", 0)
        assert policy.skip_validation()
        assert policy.collude_on_challenge()
        assert policy.name == "skip-validation+collude"

    def test_drop_write_filters_applied_writes(self):
        plan = FaultPlan(fault="drop-write", target="s1", params={"item": "x"})
        policy = PlannedFaultPolicy([plan])
        policy.observe_phase("decision", 0)
        assert policy.filter_applied_writes({"x": 1, "y": 2}) == {"y": 2}

    def test_log_integrity_flag_flips_after_tamper(self):
        from repro.ledger.log import TransactionLog

        policy = PlannedFaultPolicy(
            [FaultPlan(fault="log-truncate", target="s1", params={"keep": 0})]
        )
        assert policy.maintains_log_integrity()
        policy.observe_phase("decision", 0)
        policy.tamper_log(TransactionLog())
        # An empty log cannot be truncated below zero blocks: nothing fired.
        assert policy.maintains_log_integrity()
