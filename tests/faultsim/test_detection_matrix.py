"""The auditor-detection matrix: every ViolationType is reachable and caught.

This suite is the executable form of the paper's central claim (Lemmas 1-7):
for *every* violation class the auditor can report there is at least one
declarative :class:`FaultPlan` that produces it, the auditor detects it, and
the culprit attribution is correct.  If a violation type becomes unreachable
(no scenario produces it) or undetected, the suite fails.
"""

from __future__ import annotations

import pytest

from repro.audit.violations import ViolationType
from repro.faultsim import (
    CampaignConfig,
    CampaignRunner,
    build_fault_matrix,
)

#: Violation types that protocol-level faults (caught inside the TFCommit
#: round, before any block is logged) can never place in an audit report.
PROTOCOL_ONLY_FAULTS = {
    "corrupt-commitment",
    "corrupt-response",
    "equivocate",
    "fake-root",
    "byzantine-coordinator",
}


@pytest.fixture(scope="module")
def campaign():
    """Run the deterministic (always-trigger) matrix once for the module."""
    config = CampaignConfig(num_requests=4)
    runner = CampaignRunner(config)
    scenarios = build_fault_matrix(
        config.server_ids, trigger_variants=(("always", {}, True),)
    )
    results = runner.run_matrix(scenarios)
    return {result.scenario: result for result in results}


class TestViolationTypeCoverage:
    @pytest.mark.parametrize("violation_type", list(ViolationType), ids=lambda v: v.value)
    def test_every_violation_type_is_produced_and_detected(self, campaign, violation_type):
        """At least one FaultPlan produces this type; the auditor catches it."""
        producing = [
            result
            for result in campaign.values()
            if result.expected_violation is violation_type
        ]
        assert producing, (
            f"no fault scenario in the matrix produces {violation_type.value}; "
            "the detection matrix has a coverage hole"
        )
        for result in producing:
            assert result.detected, f"{result.scenario} went undetected"
            assert result.detected_by == "audit"
            assert violation_type.value in result.violation_kinds
            assert result.culprit_correct, (
                f"{result.scenario}: expected {result.expected_culprits}, "
                f"audit blamed {result.culprits}"
            )

    def test_protocol_level_faults_are_caught_in_the_round(self, campaign):
        """Crypto and block-assembly faults never reach the log; the round
        itself identifies the culprit (Lemma 4) or refuses to sign (Lemma 5)."""
        protocol_scenarios = [
            result
            for result in campaign.values()
            if result.expected_violation is None and not result.liveness
        ]
        assert {r.fault_kinds[0] for r in protocol_scenarios} == PROTOCOL_ONLY_FAULTS
        for result in protocol_scenarios:
            assert result.detected, f"{result.scenario} went undetected"
            assert result.detected_by == "protocol"
            assert result.culprit_correct
            assert result.blocks_until_detection == 0

    def test_crash_faults_are_liveness_events_not_safety_violations(self, campaign):
        """Crash faults are detected via round failure (and recovery-time
        rejection of tampered catch-up), recovered from, and never attributed
        by the auditor as a protocol violation."""
        liveness_scenarios = [
            result for result in campaign.values() if result.liveness
        ]
        assert liveness_scenarios, "the matrix lost its crash/recovery rows"
        for result in liveness_scenarios:
            assert result.detected, f"{result.scenario} went undetected"
            assert result.detected_by == "liveness"
            assert result.culprit_correct, (
                f"{result.scenario}: expected {result.expected_culprits}, "
                f"observed {result.culprits}"
            )
            assert result.recovered_servers, (
                f"{result.scenario}: no server was recovered"
            )
            assert not result.misattributed, (
                f"{result.scenario}: the audit pinned a safety violation on a "
                "crash target"
            )
            # After recovery the audit must be clean: the crash left no trace
            # a safety check could (or should) flag.
            assert result.report is not None and result.report.ok

    def test_tampered_catchup_is_rejected_during_recovery(self, campaign):
        """The decision-phase crash leaves a one-block gap; the tamperer's
        doctored state response must be rejected before an honest peer
        completes the catch-up."""
        result = campaign["tampered-catchup@always"]
        assert result.recovery_rejections == ("s1",)
        assert "s1" in result.culprits


class TestCoordinatorFailover:
    """The view-change rows: faulty coordinators are deposed, not terminal.

    Detection alone is not enough for coordinator faults -- the ISSUE 7
    acceptance bar is *recovery*: after the view change the elected successor
    must commit new transactions and the final logs must audit clean.
    """

    def test_coordinator_crash_is_recovered_via_view_change(self, campaign):
        result = campaign["coordinator-crash@always"]
        assert result.detected and result.detected_by == "liveness"
        assert result.culprits == ("s0",)
        assert result.failover
        assert result.failover_successor == "s1"
        assert result.new_view == 1
        assert result.post_failover_committed > 0
        assert result.recovered_after_failover
        assert result.recovered_servers == ("s0",)

    def test_byzantine_coordinator_is_deposed_and_cluster_recovers(self, campaign):
        result = campaign["byzantine-coordinator@always"]
        assert result.detected and result.detected_by == "protocol"
        assert result.culprits == ("s0",)
        assert result.failover_successor == "s1"
        assert result.post_failover_committed > 0
        assert result.recovered_after_failover
        assert result.report is not None and result.report.ok

    def test_failover_rows_render_the_view_change(self, campaign):
        row = campaign["coordinator-crash@always"].as_row()
        assert row["view change"] == "s1@v1"
        assert row["recovered"] is True
        # Non-failover rows stay readable as dashes.
        assert campaign["read-corruption@always"].as_row()["view change"] == "-"


class TestAttributionQuality:
    def test_honest_servers_are_never_blamed(self, campaign):
        for result in campaign.values():
            assert set(result.culprits) <= set(result.expected_culprits), (
                f"{result.scenario} implicated honest servers: {result.culprits}"
            )

    def test_detection_latency_is_reported(self, campaign):
        for result in campaign.values():
            assert result.blocks_until_detection is not None, result.scenario
            assert result.blocks_until_detection >= 0

    def test_audit_overhead_compares_against_honest_baseline(self, campaign):
        audited = [r for r in campaign.values() if r.detected_by == "audit"]
        assert audited
        for result in audited:
            assert result.audit_time_s > 0
            assert result.honest_audit_time_s > 0
            assert result.audit_overhead > 0

    def test_fault_height_recorded_for_live_faults(self, campaign):
        # Hook-driven faults record the block height at which they first
        # fired -- the anchor of the blocks-until-detection metric.
        result = campaign["read-corruption@always"]
        assert result.fault_height is not None

    def test_rows_are_reportable(self, campaign):
        for result in campaign.values():
            row = result.as_row()
            assert row["scenario"] == result.scenario
            assert isinstance(row["detected"], bool)
            assert "blocks-to-detect" in row
            assert "audit overhead (x)" in row
