"""Round-trip tests for the recovery wire codecs (the byte trust boundary)."""

from __future__ import annotations

import pytest

from repro.common.encoding import canonical_decode, canonical_encode
from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CoSiWitness, run_cosi_round
from repro.crypto.keys import keypair_for
from repro.ledger.checkpoint import Checkpoint
from repro.recovery.wire import (
    block_from_wire,
    checkpoint_from_wire,
    cosign_from_wire,
    transaction_from_wire,
)


class TestBlockRoundTrip:
    @pytest.mark.parametrize("group", [None, ("s0", "s1")], ids=["classic", "group"])
    def test_wire_round_trip_preserves_digests(self, block_factory, group):
        block = block_factory(group=group)
        # Through actual bytes, exactly as the WAL and catch-up do.
        decoded = block_from_wire(canonical_decode(canonical_encode(block.to_wire())))
        assert decoded.block_hash() == block.block_hash()
        assert decoded.signing_digest() == block.signing_digest()
        assert decoded.height == block.height
        assert decoded.group == block.group
        assert decoded.roots == dict(block.roots)
        assert [t.txn_id for t in decoded.transactions] == [
            t.txn_id for t in block.transactions
        ]

    def test_transaction_round_trip_preserves_encoding(self, transaction_factory):
        txn = transaction_factory()
        decoded = transaction_from_wire(
            canonical_decode(canonical_encode(txn.to_wire()))
        )
        assert decoded.encoded() == txn.encoded()
        assert decoded.write_set[1].blind is True

    def test_cosign_round_trip(self, block_factory):
        block = block_factory()
        decoded = cosign_from_wire(block.cosign.to_wire())
        assert decoded == block.cosign
        assert cosign_from_wire(None) is None

    def test_malformed_block_rejected(self, block_factory):
        wire = block_factory().to_wire()
        broken = dict(wire)
        broken["body"] = {k: v for k, v in wire["body"].items() if k != "roots"}
        with pytest.raises(ValidationError):
            block_from_wire(broken)

    def test_non_bytes_root_rejected(self, block_factory):
        wire = block_factory().to_wire()
        body = dict(wire["body"])
        body["roots"] = {"s0": "not-bytes"}
        with pytest.raises(ValidationError):
            block_from_wire({"body": body, "cosign": wire["cosign"]})


class TestCheckpointRoundTrip:
    def test_wire_round_trip_preserves_digest(self):
        checkpoint = Checkpoint(
            height=9,
            head_hash=b"\x44" * 32,
            shard_roots={"s0": b"\x55" * 32, "s1": b"\x66" * 32},
            latest_commit_ts=Timestamp(12, "client-1"),
            transactions_covered=17,
        )
        keypairs = {sid: keypair_for(sid, seed=5) for sid in ("s0", "s1")}
        witnesses = [CoSiWitness(sid, kp) for sid, kp in sorted(keypairs.items())]
        checkpoint = checkpoint.with_cosign(
            run_cosi_round(checkpoint.digest(), witnesses)
        )
        decoded = checkpoint_from_wire(
            canonical_decode(canonical_encode(checkpoint.to_wire()))
        )
        assert decoded.digest() == checkpoint.digest()
        assert decoded.cosign == checkpoint.cosign
        assert decoded.latest_commit_ts == checkpoint.latest_commit_ts

    def test_malformed_checkpoint_rejected(self):
        with pytest.raises(ValidationError):
            checkpoint_from_wire({"height": 1})
