"""Tests for the durable state layer: snapshots, WAL framing, compaction."""

from __future__ import annotations

import pytest

from repro.common.errors import RecoveryError
from repro.common.timestamps import Timestamp
from repro.ledger.checkpoint import Checkpoint
from repro.recovery.statestore import FileStateStore, MemoryStateStore
from repro.storage.datastore import DataStore


@pytest.fixture(params=["memory", "file"])
def state_store(request, tmp_path):
    if request.param == "memory":
        store = MemoryStateStore()
    else:
        store = FileStateStore(str(tmp_path / "server.wal"))
    yield store
    store.close()


def datastore_state(values=None):
    return DataStore(values or {"item-1": 41, "item-9": 0}).export_state()


class TestSnapshotAndBlocks:
    def test_initialize_then_load_round_trips_datastore(self, state_store):
        state_store.initialize("s0", datastore_state())
        state = state_store.load()
        assert state.server_id == "s0"
        assert state.checkpoint is None
        assert state.snapshot_next_height == 0
        assert state.blocks == []
        restored = DataStore.import_state(state.datastore_state)
        assert restored.snapshot() == {"item-1": 41, "item-9": 0}

    def test_initialize_is_idempotent(self, state_store, block_factory):
        state_store.initialize("s0", datastore_state())
        state_store.record_block(block_factory(), b"\x01" * 32)
        # A process restart re-runs the constructor path: the existing
        # journal must win over the fresh genesis snapshot.
        state_store.initialize("s0", datastore_state({"item-1": -1}))
        state = state_store.load()
        assert len(state.blocks) == 1
        restored = DataStore.import_state(state.datastore_state)
        assert restored.snapshot()["item-1"] == 41

    def test_blocks_round_trip_in_order_with_roots(self, state_store, block_factory):
        state_store.initialize("s0", datastore_state())
        blocks = [block_factory(), block_factory(group=("s0", "s1"))]
        for index, block in enumerate(blocks):
            state_store.record_block(block, bytes([index]) * 32)
        state = state_store.load()
        assert [b.block_hash() for b, _ in state.blocks] == [
            b.block_hash() for b in blocks
        ]
        assert [root for _, root in state.blocks] == [b"\x00" * 32, b"\x01" * 32]

    def test_loading_an_empty_store_fails(self, state_store):
        with pytest.raises(RecoveryError):
            state_store.load()


class TestCheckpointCompaction:
    def test_install_checkpoint_drops_covered_blocks(self, state_store, block_factory):
        state_store.initialize("s0", datastore_state())
        covered = block_factory()  # height 4
        state_store.record_block(covered, b"\x01" * 32)
        checkpoint = Checkpoint(
            height=4,
            head_hash=covered.block_hash(),
            shard_roots={"s0": b"\x02" * 32},
            latest_commit_ts=Timestamp(9, "c"),
            transactions_covered=2,
        )
        state_store.install_checkpoint(
            checkpoint, datastore_state({"item-1": 42, "item-9": 0}), 5, "s0"
        )
        state = state_store.load()
        assert state.checkpoint is not None
        assert state.checkpoint.height == 4
        assert state.snapshot_next_height == 5
        assert state.blocks == []
        assert state.log_base_height == 5

    def test_blocks_after_checkpoint_are_retained(self, state_store, block_factory):
        state_store.initialize("s0", datastore_state())
        newer = block_factory()  # height 4
        state_store.record_block(newer, b"\x01" * 32)
        checkpoint = Checkpoint(
            height=3,
            head_hash=newer.previous_hash,
            shard_roots={},
            latest_commit_ts=Timestamp(1, "c"),
            transactions_covered=0,
        )
        state_store.install_checkpoint(checkpoint, datastore_state(), 5, "s0")
        state = state_store.load()
        # Height 4 > checkpoint height 3: the block survives compaction as
        # retained log content (already reflected in the snapshot).
        assert [b.height for b, _ in state.blocks] == [4]
        assert state.snapshot_next_height == 5


class TestWalRobustness:
    def test_torn_tail_is_ignored(self, tmp_path, block_factory):
        path = tmp_path / "server.wal"
        store = FileStateStore(str(path))
        store.initialize("s0", datastore_state())
        store.record_block(block_factory(), b"\x01" * 32)
        store.close()
        # Simulate a crash mid-append: chop bytes off the last frame.
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        reopened = FileStateStore(str(path))
        state = reopened.load()
        assert state.blocks == []  # torn block frame dropped, snapshot intact
        reopened.close()

    def test_corrupt_payload_stops_the_scan(self, tmp_path, block_factory):
        path = tmp_path / "server.wal"
        store = FileStateStore(str(path))
        store.initialize("s0", datastore_state())
        store.record_block(block_factory(), b"\x01" * 32)
        store.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last frame
        path.write_bytes(bytes(data))
        reopened = FileStateStore(str(path))
        assert reopened.load().blocks == []
        reopened.close()

    def test_wal_survives_reopen(self, tmp_path, block_factory):
        path = tmp_path / "server.wal"
        store = FileStateStore(str(path))
        store.initialize("s0", datastore_state())
        store.record_block(block_factory(), b"\x01" * 32)
        store.close()
        reopened = FileStateStore(str(path))
        state = reopened.load()
        assert len(state.blocks) == 1
        reopened.close()
