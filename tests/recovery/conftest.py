"""Shared factories for the recovery test suite."""

from __future__ import annotations

import pytest

from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CoSiWitness, run_cosi_round
from repro.crypto.keys import keypair_for
from repro.ledger.block import Block, BlockDecision
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def build_transaction(index: int = 0) -> Transaction:
    ts = Timestamp(7 + index, "client-0")
    return Transaction(
        txn_id=f"txn-{index}",
        client_id="client-0",
        commit_ts=ts,
        read_set=(
            ReadSetEntry("item-1", 41, rts=Timestamp(3, "c"), wts=Timestamp(2, "c")),
        ),
        write_set=(
            WriteSetEntry(
                "item-1", 42, old_value=41, rts=Timestamp(3, "c"), wts=Timestamp(2, "c")
            ),
            WriteSetEntry("item-9", "blind", blind=True),
        ),
    )


def build_block(group=None, signers=("s0", "s1"), height: int = 4) -> Block:
    block = Block(
        height=height,
        transactions=(build_transaction(0), build_transaction(1)),
        roots={"s0": b"\x11" * 32, "s1": b"\x22" * 32},
        decision=BlockDecision.COMMIT,
        previous_hash=b"\x33" * 32,
        group=group,
    )
    witnesses = [CoSiWitness(sid, keypair_for(sid, seed=5)) for sid in signers]
    return block.with_cosign(run_cosi_round(block.signing_digest(), witnesses))


@pytest.fixture
def transaction_factory():
    return build_transaction


@pytest.fixture
def block_factory():
    return build_block
