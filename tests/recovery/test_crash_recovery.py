"""Crash -> restore -> catch-up -> verify -> rejoin, on live deployments."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ConfigurationError,
    RecoveryError,
    UnreachableError,
)
from repro.crypto.keys import keypair_for
from repro.net.message import MessageType
from repro.recovery.statestore import FileStateStore
from repro.server.faults import CrashFault, FaultPolicy


class TamperCatchupFault(FaultPolicy):
    """Hand-wired malicious catch-up peer: doctors the first served block."""

    name = "tamper-catchup"

    def tamper_state_response(self, blocks):
        if not blocks:
            return blocks
        doctored = [dict(block) for block in blocks]
        body = dict(doctored[0]["body"])
        transactions = [dict(txn) for txn in body["transactions"]]
        for index, txn in enumerate(transactions):
            if txn["write_set"]:
                write_set = [dict(entry) for entry in txn["write_set"]]
                write_set[0]["new_value"] = 666_666
                txn = dict(txn)
                txn["write_set"] = write_set
                transactions[index] = txn
                break
        body["transactions"] = transactions
        doctored[0] = dict(doctored[0])
        doctored[0]["body"] = body
        return doctored


class TestNetworkRejoin:
    """Satellite: handler re-registration semantics on the Network."""

    def test_duplicate_registration_is_rejected(self, small_system):
        network = small_system.network
        with pytest.raises(ConfigurationError):
            network.register("s0", small_system.server("s0").keypair, lambda e: None)

    def test_rejoin_with_replace_keeps_per_node_stats(self, small_system, run_history):
        run_history(small_system, count=2)
        network = small_system.network
        delivered_before = network.stats.per_node["s1"]
        assert delivered_before > 0
        server = small_system.server("s1")
        network.unregister("s1")
        network.register("s1", server.keypair, server.handle, replace=True)
        run_history(small_system, count=2, seed=77)
        assert network.stats.per_node["s1"] > delivered_before

    def test_rejoin_with_a_different_key_is_rejected(self, small_system):
        network = small_system.network
        server = small_system.server("s1")
        network.unregister("s1")
        with pytest.raises(ConfigurationError):
            network.register(
                "s1", keypair_for("impostor", seed=1), server.handle, replace=True
            )

    def test_unregistered_participant_is_unreachable_but_keeps_its_key(
        self, small_system
    ):
        network = small_system.network
        network.unregister("s2")
        assert not network.is_reachable("s2")
        assert "s2" in network.public_key_directory()
        with pytest.raises(UnreachableError):
            network.send("s0", "s2", MessageType.ROUND_FAILED, {"round_key": ["height", 0]})
        assert network.stats.messages_undeliverable == 1


class TestCrashLifecycle:
    def test_crash_drops_volatile_state_and_recover_restores_it(
        self, small_system, run_history
    ):
        run_history(small_system, count=4)
        server = small_system.server("s1")
        snapshot_before = server.snapshot()
        height_before = server.log.height
        small_system.crash_server("s1")
        assert server.crashed
        assert server.store is None and server.log is None
        result = small_system.recover_server("s1")
        assert result.restored_blocks == height_before
        assert result.fetched_blocks == 0
        assert server.log.height == height_before
        assert server.snapshot() == snapshot_before
        # The recovered tree is byte-identical to one rebuilt from scratch
        # over the same values (no stale internal nodes survive recovery).
        from repro.crypto.merkle import merkle_root_of

        assert server.store.merkle_root() == merkle_root_of(server.snapshot())

    def test_mid_round_crash_fails_round_releases_state_and_recovers(
        self, small_system, run_history, workload_factory
    ):
        run_history(small_system, count=3)
        small_system.inject_fault("s2", CrashFault(phase="vote"))
        workload = workload_factory(small_system, seed=91)
        result = small_system.run_workload(workload.generate(3))
        assert result.committed == 0 and result.failed == 3
        assert "s2" in small_system.crashed_servers()
        # The failed rounds broadcast ROUND_FAILED: no cohort leaks RoundState.
        for server_id in ("s0", "s1"):
            assert small_system.server(server_id).commitment.pending_round_count() == 0
        failed = [r for r in small_system.coordinator.results if r.status == "failed"]
        assert failed and any(
            refusal.get("unreachable") and refusal.get("server_id") == "s2"
            for refusal in failed[0].refusals
        )
        recovery = small_system.recover_server("s2")
        assert recovery.caught_up
        after = small_system.run_workload(workload.generate(3))
        assert after.committed == 3
        assert small_system.audit().ok

    def test_recovering_server_fetches_blocks_missed_at_decision_time(
        self, small_system, run_history
    ):
        run_history(small_system, count=2)
        small_system.inject_fault("s1", CrashFault(phase="decision"))
        run_history(small_system, count=1, seed=63)  # commits; s1 misses the block
        assert "s1" in small_system.crashed_servers()
        result = small_system.recover_server("s1")
        assert result.fetched_blocks == 1
        assert result.served_by
        heads = {srv.log.head_hash for srv in small_system.servers.values()}
        assert len(heads) == 1
        assert small_system.audit().ok

    def test_tampered_catchup_response_is_rejected(self, small_system, run_history):
        run_history(small_system, count=2)
        small_system.inject_fault("s1", CrashFault(phase="decision"))
        run_history(small_system, count=1, seed=63)
        small_system.inject_fault("s2", TamperCatchupFault())
        result = small_system.recover_server("s1", peer_order=["s2", "s0"])
        assert result.rejected_peers == ("s2",)
        assert "invalid collective signature" in result.rejected[0][1]
        assert result.served_by == "s0"
        assert small_system.audit().ok

    def test_lagging_first_peer_cannot_end_recovery_stale(
        self, small_system, run_history
    ):
        """A peer claiming a low head (lagging or lying) must not terminate
        catch-up early: every peer is consulted, so the honest up-to-date
        peer still brings the server to the real head."""
        run_history(small_system, count=2)
        small_system.inject_fault("s1", CrashFault(phase="decision"))
        run_history(small_system, count=1, seed=63)
        network = small_system.network
        restored_height = small_system.server("s0").log.height - 1

        def lagging_handler(envelope):
            return {
                "server_id": "laggard",
                "ok": True,
                "from_height": envelope.payload["from_height"],
                "head_height": restored_height,  # "you are already caught up"
                "blocks": [],
            }

        network.register("laggard", keypair_for("laggard", seed=3), lagging_handler)
        result = small_system.recover_server("s1", peer_order=["laggard", "s0"])
        assert result.caught_up
        assert result.served_by == "s0"
        assert small_system.server("s1").log.height == small_system.server(
            "s0"
        ).log.height

    def test_recovery_fails_when_every_peer_lies(self, small_system, run_history):
        run_history(small_system, count=2)
        small_system.inject_fault("s1", CrashFault(phase="decision"))
        run_history(small_system, count=1, seed=63)
        small_system.inject_fault("s0", TamperCatchupFault())
        small_system.inject_fault("s2", TamperCatchupFault())
        with pytest.raises(RecoveryError):
            small_system.recover_server("s1", peer_order=["s0", "s2"])

    def test_stale_checkpoint_install_is_a_noop_and_state_stays_recoverable(
        self, small_system, run_history
    ):
        """Re-delivering an older checkpoint must not regress the installed
        boundary or rewrite the WAL -- the server must stay recoverable."""
        run_history(small_system, count=2)
        first = small_system.create_checkpoint()
        run_history(small_system, count=2, seed=77)
        second = small_system.create_checkpoint()
        server = small_system.server("s1")
        assert server.install_checkpoint(first) == 0
        assert server.latest_checkpoint is second
        assert server.state_store.load().checkpoint.height == second.height
        run_history(small_system, count=1, seed=78)
        small_system.crash_server("s1")
        result = small_system.recover_server("s1")
        assert result.from_checkpoint_height == second.height
        assert small_system.audit().ok

    def test_recovery_from_checkpoint_replays_nothing_before_it(
        self, small_system, run_history
    ):
        run_history(small_system, count=4)
        checkpoint = small_system.create_checkpoint()
        run_history(small_system, count=2, seed=77)
        small_system.crash_server("s1")
        result = small_system.recover_server("s1")
        assert result.from_checkpoint_height == checkpoint.height
        assert result.restored_blocks == 2  # only the post-checkpoint suffix
        server = small_system.server("s1")
        assert server.log.base_height == checkpoint.height + 1
        assert server.latest_checkpoint is not None
        assert small_system.audit().ok


class TestFileWalRecovery:
    def test_recovery_through_a_real_wal(self, make_system, tmp_path, workload_factory):
        system = make_system()
        # Swap every server onto a file WAL before any history accumulates.
        for server_id, server in system.servers.items():
            server.state_store = FileStateStore(str(tmp_path / f"{server_id}.wal"))
            server.state_store.initialize(server_id, server.store.export_state())
        workload = workload_factory(system, seed=5)
        assert system.run_workload(workload.generate(4)).committed == 4
        system.crash_server("s2")
        assert system.run_workload(workload.generate(2)).committed == 0
        result = system.recover_server("s2")
        assert result.restored_blocks > 0
        assert system.server("s2").log.height == system.server("s0").log.height
        assert system.run_workload(workload.generate(2)).committed == 2
        assert system.audit().ok
