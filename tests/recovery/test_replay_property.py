"""Property: replaying any log prefix reproduces the live shard Merkle roots.

This is the invariant catch-up verification stands on: a recovering server
replays fetched blocks into its restored store and compares the resulting
root against the root each block advertises.  If live application and replay
could ever diverge -- different write-merge order, different batch grouping
-- recovery would reject honest peers.  The suite drives seeded random
workloads through real deployments and replays every prefix, from genesis
and from every checkpoint, asserting byte-identical roots at every height.
"""

from __future__ import annotations

import pytest

from repro.crypto.merkle import merkle_root_of
from repro.storage.apply import block_store_commits
from repro.storage.datastore import DataStore


def shard_items(system, server_id):
    return {
        item: 0 for item in system.shard_map.items_of(server_id)
    }


def live_roots_per_height(system, server_id, specs_batches):
    """Run the workload batch by batch, recording the store root after each block."""
    server = system.server(server_id)
    roots = {}
    for specs in specs_batches:
        system.run_workload(specs)
        roots[server.log.height] = server.store.merkle_root()
    return roots


class TestPrefixReplayReproducesRoots:
    @pytest.mark.parametrize("seed", [3, 17, 51])
    def test_replay_from_genesis_matches_live_application(
        self, make_system, workload_factory, seed
    ):
        system = make_system(seed=seed, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=3, seed=seed)
        result = system.run_workload(workload.generate(10))
        # Conflicting specs may abort -- good: abort blocks are part of the
        # log and must replay as no-ops.
        assert result.committed > 0
        for server_id in system.server_ids:
            server = system.server(server_id)
            live_root = server.store.merkle_root()
            replayed = DataStore(
                shard_items(system, server_id),
                multi_versioned=True,
            )
            for block in server.log:
                if block.is_commit:
                    replayed.apply_batch(block_store_commits(block, replayed))
                    if server_id in block.roots:
                        # Every intermediate advertised root is reproduced.
                        # (Abort blocks are skipped: their recorded roots are
                        # speculative -- computed with writes that were never
                        # applied.)
                        assert replayed.merkle_root() == block.roots[server_id]
            assert replayed.merkle_root() == live_root
            assert replayed.snapshot() == server.snapshot()

    def test_replay_from_checkpoint_snapshot_matches_live_application(
        self, make_system, workload_factory
    ):
        system = make_system(seed=29, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=2, seed=29)
        assert system.run_workload(workload.generate(6)).committed == 6
        system.create_checkpoint()
        assert system.run_workload(workload.generate(6)).committed == 6
        for server_id in system.server_ids:
            server = system.server(server_id)
            state = server.state_store.load()
            replayed = DataStore.import_state(state.datastore_state)
            # The checkpoint snapshot's root is the checkpoint's shard root.
            assert replayed.merkle_root() == server.latest_checkpoint.shard_roots[
                server_id
            ]
            for block, recorded_root in state.blocks:
                if block.is_commit:
                    replayed.apply_batch(block_store_commits(block, replayed))
                assert replayed.merkle_root() == recorded_root
            assert replayed.merkle_root() == server.store.merkle_root()

    def test_scaled_group_blocks_replay_identically(
        self, make_scaled_system, workload_factory
    ):
        system = make_scaled_system(num_servers=4, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=2, seed=13)
        result = system.run_workload(workload.generate(10))
        assert result.committed == 10
        for server_id in system.server_ids:
            server = system.server(server_id)
            replayed = DataStore(shard_items(system, server_id), multi_versioned=True)
            for block in server.log:
                if block.is_commit:
                    replayed.apply_batch(block_store_commits(block, replayed))
                if block.is_commit and server_id in block.roots:
                    assert replayed.merkle_root() == block.roots[server_id]
            assert replayed.merkle_root() == server.store.merkle_root()

    def test_import_export_is_the_identity_on_roots(self, make_system, workload_factory):
        system = make_system(seed=7)
        workload = workload_factory(system, seed=7)
        system.run_workload(workload.generate(5))
        for server in system.servers.values():
            clone = DataStore.import_state(server.store.export_state())
            assert clone.merkle_root() == server.store.merkle_root()
            assert clone.merkle_root() == merkle_root_of(clone.snapshot())
            # Version chains survive: historical reads agree everywhere.
            for item_id in clone.item_ids():
                assert clone.record(item_id).versions == server.store.record(
                    item_id
                ).versions
