"""Tests for the latency models."""

from __future__ import annotations

import pytest

from repro.net.latency import (
    ConstantLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
    zero_latency,
)


class TestLatencyModels:
    def test_constant_latency(self):
        model = ConstantLatency(0.002)
        assert model.sample() == 0.002
        assert model.round_trip() == pytest.approx(0.004)

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(low=0.001, high=0.002, seed=1)
        samples = [model.sample() for _ in range(200)]
        assert all(0.001 <= s <= 0.002 for s in samples)

    def test_uniform_latency_deterministic_per_seed(self):
        a = [UniformLatency(seed=5).sample() for _ in range(10)]
        b = [UniformLatency(seed=5).sample() for _ in range(10)]
        assert a == b

    def test_uniform_latency_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(low=0.2, high=0.1)

    def test_lan_is_much_faster_than_wan(self):
        lan = sum(lan_latency(seed=1).sample() for _ in range(50)) / 50
        wan = sum(wan_latency(seed=1).sample() for _ in range(50)) / 50
        assert wan > 10 * lan

    def test_zero_latency(self):
        assert zero_latency().sample() == 0.0
