"""Tests for the signed message bus."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SignatureError
from repro.crypto.keys import keypair_for
from repro.net.message import Envelope, MessageType
from repro.net.latency import ConstantLatency
from repro.net.network import Network


@pytest.fixture
def network():
    net = Network(latency=ConstantLatency(0.001))
    received = []

    def handler(envelope):
        received.append(envelope)
        return {"echo": envelope.payload, "type": envelope.message_type.value}

    net.register("server", keypair_for("server"), handler)
    net.register_observer("client", keypair_for("client"))
    net.received = received
    return net


class TestDelivery:
    def test_send_returns_handler_response(self, network):
        response = network.send("client", "server", MessageType.READ, {"item": "x"})
        assert response["echo"] == {"item": "x"}
        assert response["type"] == "read"

    def test_receiver_sees_verified_envelope(self, network):
        network.send("client", "server", MessageType.READ, {"item": "x"})
        envelope = network.received[0]
        assert envelope.sender == "client"
        assert network.verify_envelope(envelope)

    def test_unknown_recipient_raises(self, network):
        with pytest.raises(ConfigurationError):
            network.send("client", "nobody", MessageType.READ, {})

    def test_unknown_sender_raises(self, network):
        with pytest.raises(ConfigurationError):
            network.send("stranger", "server", MessageType.READ, {})

    def test_broadcast_collects_all_responses(self, network):
        network.register("server2", keypair_for("server2"), lambda env: {"ok": True})
        responses = network.broadcast("client", ["server", "server2"], MessageType.READ, {})
        assert set(responses) == {"server", "server2"}

    def test_stats_accumulate(self, network):
        network.send("client", "server", MessageType.READ, {})
        network.send("client", "server", MessageType.WRITE, {})
        assert network.stats.messages_sent == 2
        assert network.stats.per_type == {"read": 1, "write": 1}
        assert network.stats.simulated_delay == pytest.approx(0.002)


class TestSignatures:
    def test_forged_envelope_rejected(self, network):
        # Sign one payload, then try to deliver a different payload with it.
        honest = network.sign_envelope(
            Envelope("client", "server", MessageType.READ, {"item": "x"})
        )
        forged = Envelope(
            "client", "server", MessageType.READ, {"item": "y"}, signature=honest.signature
        )
        with pytest.raises(SignatureError):
            network.send("client", "server", MessageType.READ, {"item": "y"}, presigned=forged)
        assert network.stats.messages_rejected == 1

    def test_unsigned_envelope_rejected(self, network):
        bare = Envelope("client", "server", MessageType.READ, {"item": "x"})
        with pytest.raises(SignatureError):
            network.send("client", "server", MessageType.READ, {"item": "x"}, presigned=bare)

    def test_impersonation_rejected(self, network):
        # An envelope claiming to come from "server" but signed by "client".
        network.register_observer("mallory", keypair_for("mallory"))
        envelope = Envelope("server", "server", MessageType.READ, {"item": "x"})
        scheme = network.signing_scheme
        forged = envelope.with_signature(
            scheme.sign(keypair_for("mallory"), envelope.signed_content())
        )
        with pytest.raises(SignatureError):
            network.send("server", "server", MessageType.READ, {"item": "x"}, presigned=forged)

    def test_public_key_directory(self, network):
        directory = network.public_key_directory()
        assert set(directory) == {"server", "client"}
        assert network.public_key_of("server") == directory["server"]

    def test_public_key_of_unknown(self, network):
        with pytest.raises(ConfigurationError):
            network.public_key_of("nobody")
