"""Tests for message envelopes."""

from __future__ import annotations

from repro.net.message import Envelope, MessageType


class TestEnvelope:
    def test_signed_content_excludes_signature(self):
        envelope = Envelope("a", "b", MessageType.READ, {"x": 1}, signature=b"sig")
        content = envelope.signed_content()
        assert "signature" not in content
        assert content["sender"] == "a"
        assert content["type"] == "read"

    def test_with_signature_preserves_fields(self):
        envelope = Envelope("a", "b", MessageType.WRITE, {"x": 1})
        signed = envelope.with_signature(b"sig")
        assert signed.signature == b"sig"
        assert signed.payload == {"x": 1}
        assert envelope.signature is None

    def test_to_wire_shape(self):
        wire = Envelope("a", "b", MessageType.VOTE, {"x": 1}, b"s").to_wire()
        assert set(wire) == {"content", "signature"}

    def test_message_types_cover_protocol_phases(self):
        names = {mt.value for mt in MessageType}
        for expected in (
            "begin_transaction",
            "read",
            "write",
            "end_transaction",
            "get_vote",
            "vote",
            "challenge",
            "response",
            "decision",
            "prepare",
            "commit_decision",
            "audit_log_request",
            "audit_vo_request",
        ):
            assert expected in names
