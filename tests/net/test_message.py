"""Tests for message envelopes."""

from __future__ import annotations

import random

import pytest

from repro.common.encoding import canonical_encode
from repro.crypto.keys import keypair_for
from repro.crypto.signing import make_signing_scheme
from repro.net.message import Envelope, MessageType


class TestEnvelope:
    def test_signed_content_excludes_signature(self):
        envelope = Envelope("a", "b", MessageType.READ, {"x": 1}, signature=b"sig")
        content = envelope.signed_content()
        assert "signature" not in content
        assert content["sender"] == "a"
        assert content["type"] == "read"

    def test_with_signature_preserves_fields(self):
        envelope = Envelope("a", "b", MessageType.WRITE, {"x": 1})
        signed = envelope.with_signature(b"sig")
        assert signed.signature == b"sig"
        assert signed.payload == {"x": 1}
        assert envelope.signature is None

    def test_to_wire_shape(self):
        wire = Envelope("a", "b", MessageType.GET_VOTE, {"x": 1}, b"s").to_wire()
        assert set(wire) == {"content", "signature"}

    def test_message_types_cover_protocol_phases(self):
        names = {mt.value for mt in MessageType}
        for expected in (
            "begin_transaction",
            "read",
            "write",
            "end_transaction",
            "get_vote",
            "challenge",
            "decision",
            "prepare",
            "commit_decision",
            "audit_log_request",
            "audit_vo_request",
        ):
            assert expected in names


class TestEnvelopeRoundTrips:
    """Seeded-random payloads survive signing, re-wrapping, and wire encoding."""

    @pytest.mark.parametrize("scheme_name", ["hash", "schnorr"])
    @pytest.mark.parametrize("seed", [0, 2020])
    def test_sign_verify_round_trip_over_random_payloads(
        self, random_payload, scheme_name, seed
    ):
        rng = random.Random(seed)
        scheme = make_signing_scheme(scheme_name)
        keypair = keypair_for("s0", seed=99)
        rounds = 6 if scheme_name == "schnorr" else 25  # schnorr is slow
        for i in range(rounds):
            envelope = Envelope(
                "s0", "s1", rng.choice(list(MessageType)), random_payload(rng)
            )
            signature = scheme.sign(keypair, envelope.signed_content())
            signed = envelope.with_signature(signature)
            assert signed.payload == envelope.payload
            assert scheme.verify(keypair.public, signed.signed_content(), signed.signature)

    @pytest.mark.parametrize("seed", [1, 7, 2020])
    def test_signed_content_is_canonically_stable(self, random_payload, seed):
        rng = random.Random(seed)
        for _ in range(30):
            payload = random_payload(rng)
            first = Envelope("a", "b", MessageType.READ, payload)
            second = Envelope("a", "b", MessageType.READ, payload)
            assert canonical_encode(first.signed_content()) == canonical_encode(
                second.signed_content()
            )

    @pytest.mark.parametrize("seed", [3])
    def test_wire_form_carries_payload_and_signature(self, random_payload, seed):
        rng = random.Random(seed)
        for _ in range(20):
            payload = random_payload(rng)
            wire = Envelope("a", "b", MessageType.GET_VOTE, payload, b"sig").to_wire()
            assert wire["content"]["payload"] == payload
            assert wire["signature"] == b"sig"
