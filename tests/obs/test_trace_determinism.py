"""Trace determinism over real runs: same seed, same fingerprint.

Every test here builds two *fresh* deployments with identical seeds under
:class:`~repro.sim.context.FixedCompute` (measured compute would leak wall
clock into the virtual schedule) and asserts the exported traces are
byte-identical -- including runs that crash servers, fail over the
coordinator, and run the fault campaign.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.core.scaled import ScaledFidesSystem
from repro.faultsim.plan import FaultPlan
from repro.faultsim.policy import PlannedFaultPolicy
from repro.net.latency import ConstantLatency
from repro.obs import Observability
from repro.server.faults import CrashFault
from repro.sim.context import FixedCompute
from repro.workload.ycsb import YcsbWorkload


def _config(num_servers: int = 3, txns_per_block: int = 2) -> SystemConfig:
    return SystemConfig(
        num_servers=num_servers,
        items_per_shard=40,
        txns_per_block=txns_per_block,
        ops_per_txn=2,
        multi_versioned=False,
        message_signing="hash",
        seed=7,
    )


def _workload(system, count: int):
    workload = YcsbWorkload(
        item_ids=system.shard_map.all_items(),
        ops_per_txn=2,
        conflict_free_window=2,
        seed=3,
    )
    return workload.generate(count)


def _traced_classic_run() -> tuple:
    obs = Observability(tracing=True)
    system = FidesSystem(
        _config(),
        latency=ConstantLatency(0.0002),
        compute_model=FixedCompute(0.001),
        obs=obs,
    )
    system.run_workload(_workload(system, 6))
    return obs, system


def _traced_scaled_run() -> tuple:
    obs = Observability(tracing=True)
    system = ScaledFidesSystem(
        _config(num_servers=4),
        latency=ConstantLatency(0.0002),
        compute_model=FixedCompute(0.001),
        obs=obs,
    )
    system.run_workload(_workload(system, 6), num_clients=2)
    return obs, system


def _traced_failover_run() -> tuple:
    obs = Observability(tracing=True)
    system = FidesSystem(
        _config(),
        latency=ConstantLatency(0.0002),
        compute_model=FixedCompute(0.001),
        obs=obs,
    )
    system.run_workload(_workload(system, 2))
    system.inject_fault("s0", CrashFault(phase="vote"))
    system.run_workload(_workload(system, 2))
    system.recover_server("s0")
    system.fail_over()
    system.run_workload(_workload(system, 2))
    return obs, system


class TestSameSeedSameTrace:
    def test_classic_run_fingerprints_are_identical(self):
        first, _ = _traced_classic_run()
        second, _ = _traced_classic_run()
        assert first.tracer.span_count() > 0
        assert first.tracer.fingerprint() == second.tracer.fingerprint()
        assert [s.to_wire() for s in first.tracer.spans] != []

    def test_classic_jsonl_exports_are_byte_identical(self, tmp_path):
        first, _ = _traced_classic_run()
        second, _ = _traced_classic_run()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        first.tracer.export_jsonl(a)
        second.tracer.export_jsonl(b)
        assert a.read_bytes() == b.read_bytes()

    def test_scaled_run_fingerprints_are_identical(self):
        first, _ = _traced_scaled_run()
        second, _ = _traced_scaled_run()
        assert first.tracer.fingerprint() == second.tracer.fingerprint()
        # The scaled deployment hands round spans through the ordering
        # service: the delivery windows must be part of the trace.
        assert first.tracer.span_count("delivery") > 0

    def test_crash_and_failover_run_fingerprints_are_identical(self):
        first, _ = _traced_failover_run()
        second, _ = _traced_failover_run()
        assert first.tracer.fingerprint() == second.tracer.fingerprint()
        names = [s.name for s in first.tracer.spans]
        assert any(name.startswith("view-change:") for name in names)


class TestTraceQuality:
    def test_classic_run_invariants_hold(self):
        obs, _ = _traced_classic_run()
        assert obs.tracer.check_invariants() == []

    def test_scaled_run_invariants_hold(self):
        obs, _ = _traced_scaled_run()
        assert obs.tracer.check_invariants() == []

    def test_failover_run_invariants_hold(self):
        obs, _ = _traced_failover_run()
        assert obs.tracer.check_invariants() == []

    def test_spans_cover_the_makespan(self):
        obs, system = _traced_classic_run()
        assert obs.tracer.coverage(system.sim.makespan) >= 0.95

    def test_scaled_spans_cover_the_makespan(self):
        obs, system = _traced_scaled_run()
        assert obs.tracer.coverage(system.sim.makespan) >= 0.95

    def test_detection_instants_recorded_for_crash(self):
        obs, _ = _traced_failover_run()
        detections = [s for s in obs.tracer.spans if s.category == "fault-detect"]
        assert detections, "crashed cohort must surface as a detection instant"
        assert obs.metrics.counter_value("faults.detected_unreachable") >= 1.0


class TestMetricsFromRuns:
    def test_round_and_crypto_counters_populate(self):
        obs, system = _traced_classic_run()
        blocks = obs.metrics.counter_value("rounds.committed")
        assert blocks > 0
        assert obs.metrics.counter_value("net.messages") > 0
        assert obs.metrics.counter_value("net.bytes_total") > 0
        assert obs.metrics.counter_value("crypto.envelope_sign.ops") > 0
        assert obs.metrics.counter_value("storage.mht_hashes") > 0
        per_type = obs.attribution()["subsystems"]["net_bytes_per_type"]
        assert per_type, "per-message-type byte accounting must be populated"
        assert sum(per_type.values()) == obs.metrics.counter_value("net.bytes_total")

    def test_fault_injection_instants_and_counter(self):
        obs = Observability(tracing=True)
        system = FidesSystem(
            _config(),
            latency=ConstantLatency(0.0002),
            compute_model=FixedCompute(0.001),
            obs=obs,
        )
        system.inject_fault(
            "s1",
            PlannedFaultPolicy(
                [
                    FaultPlan(fault="corrupt-commitment", target="s1")
                ]
            ),
        )
        system.run_workload(_workload(system, 2))
        assert obs.metrics.counter_value("faults.injected") >= 1.0
        injected = [s for s in obs.tracer.spans if s.category == "fault-inject"]
        assert injected and injected[0].name.startswith("inject:")

    def test_metrics_survive_crash_recovery_reattach(self):
        obs, system = _traced_failover_run()
        assert obs.metrics.counter_value("recovery.recoveries") >= 1.0
        assert obs.metrics.counter_value("viewchange.count") >= 1.0
        assert obs.metrics.counter_value("recovery.wal_appends") > 0
