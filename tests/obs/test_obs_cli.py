"""The ``python -m repro.obs`` trace toolbox CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.trace import Tracer


@pytest.fixture
def trace_paths(tmp_path):
    """One small trace exported as both JSONL and Chrome JSON."""
    tracer = Tracer(enabled=True)
    round_id = tracer.open_span("round-1", "round", "s0", 0.0, txns=["t1"])
    tracer.add_span("get_vote", "phase", "s0", 0.0, 0.4, parent=round_id)
    tracer.close_span(round_id, 1.0, status="committed")
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    tracer.export_jsonl(jsonl)
    tracer.export_chrome(chrome)
    return tracer, jsonl, chrome


class TestSummarizeAndFingerprint:
    def test_summarize_reports_counts_and_attribution(self, trace_paths, capsys):
        _, jsonl, _ = trace_paths
        assert main(["summarize", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "get_vote" in out
        assert "fingerprint:" in out

    def test_fingerprint_matches_the_tracer(self, trace_paths, capsys):
        tracer, jsonl, _ = trace_paths
        assert main(["fingerprint", str(jsonl)]) == 0
        assert capsys.readouterr().out.strip() == tracer.fingerprint()


class TestValidate:
    def test_clean_trace_exits_zero(self, trace_paths, capsys):
        _, jsonl, chrome = trace_paths
        assert main(["validate", str(jsonl)]) == 0
        assert main(["validate", str(chrome)]) == 0
        assert "invariants hold" in capsys.readouterr().out

    def test_violating_trace_exits_one(self, tmp_path, capsys):
        tracer = Tracer(enabled=True)
        tracer.open_span("round-1", "round", "s0", 0.0)  # never closed
        path = tmp_path / "bad.jsonl"
        tracer.export_jsonl(path)
        assert main(["validate", str(path)]) == 1
        assert "never closed" in capsys.readouterr().err


class TestConvert:
    def test_jsonl_to_chrome_and_back_preserves_the_trace(
        self, trace_paths, tmp_path, capsys
    ):
        tracer, jsonl, _ = trace_paths
        chrome = tmp_path / "converted.json"
        back = tmp_path / "back.jsonl"
        assert main(["convert", str(jsonl), str(chrome), "--to", "chrome"]) == 0
        assert "traceEvents" in json.loads(chrome.read_text())
        assert main(["convert", str(chrome), str(back), "--to", "jsonl"]) == 0
        reloaded = Tracer.load_jsonl(back)
        assert reloaded.span_count() == tracer.span_count()
        assert [s.name for s in reloaded.spans] == [s.name for s in tracer.spans]


class TestDiff:
    def test_identical_traces_match(self, trace_paths, tmp_path, capsys):
        tracer, jsonl, _ = trace_paths
        copy = tmp_path / "copy.jsonl"
        tracer.export_jsonl(copy)
        assert main(["diff", str(jsonl), str(copy)]) == 0
        assert "fingerprints match" in capsys.readouterr().out

    def test_differing_traces_exit_one(self, trace_paths, tmp_path, capsys):
        _, jsonl, _ = trace_paths
        other = Tracer(enabled=True)
        other.add_span("get_vote", "phase", "s0", 0.0, 0.9)
        other_path = tmp_path / "other.jsonl"
        other.export_jsonl(other_path)
        assert main(["diff", str(jsonl), str(other_path)]) == 1
        assert "DIFFER" in capsys.readouterr().out
