"""Unit tests for the span tracer: recording, invariants, exports."""

from __future__ import annotations

from repro.obs.trace import Span, Tracer, spans_from_chrome


def _well_formed_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    round_id = tracer.open_span("round-1", "round", "s0", 0.0, txns=["t1", "t2"])
    tracer.add_span("get_vote", "phase", "s0", 0.0, 0.4, parent=round_id)
    tracer.add_span("rpc:GET_VOTE", "rpc", "s1", 0.0, 0.3, parent=round_id)
    tracer.instant("inject:crash", "fault-inject", "s2", 0.2)
    tracer.close_span(round_id, 1.0, status="committed")
    return tracer


class TestDisabledTracerIsInert:
    def test_every_recorder_is_a_no_op(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin_process("bench") == 0
        assert tracer.open_span("r", "round", "s0", 0.0) is None
        assert tracer.add_span("p", "phase", "s0", 0.0, 1.0) is None
        assert tracer.instant("i", "event", "s0", 0.5) is None
        tracer.close_span(None, 1.0)
        assert tracer.spans == []

    def test_close_of_unknown_span_is_ignored(self):
        tracer = Tracer(enabled=True)
        tracer.close_span(999, 1.0)
        assert tracer.spans == []


class TestRecording:
    def test_open_close_sets_window_and_status(self):
        tracer = Tracer(enabled=True)
        span_id = tracer.open_span("round-0", "round", "s0", 0.25)
        tracer.close_span(span_id, 0.75, status="committed", blocks=1)
        (span,) = tracer.spans
        assert (span.start, span.end) == (0.25, 0.75)
        assert span.status == "committed"
        assert span.attrs["blocks"] == 1

    def test_round_close_fans_out_txn_children(self):
        tracer = _well_formed_tracer()
        children = [s for s in tracer.spans if s.category == "txn"]
        assert [s.name for s in children] == ["txn:t1", "txn:t2"]
        round_span = tracer.spans[0]
        for child in children:
            assert child.parent == round_span.span_id
            assert (child.start, child.end) == (round_span.start, round_span.end)
            assert child.status == "committed"

    def test_instants_are_zero_width(self):
        tracer = _well_formed_tracer()
        (instant,) = [s for s in tracer.spans if s.kind == "instant"]
        assert instant.start == instant.end == 0.2

    def test_begin_process_partitions_spans(self):
        tracer = Tracer(enabled=True)
        first = tracer.begin_process("run-a")
        tracer.add_span("p", "phase", "s0", 0.0, 1.0)
        second = tracer.begin_process("run-b")
        tracer.add_span("p", "phase", "s0", 0.0, 1.0)
        assert first != second
        assert [s.pid for s in tracer.spans] == [first, second]


class TestInvariants:
    def test_well_formed_trace_has_no_violations(self):
        assert _well_formed_tracer().check_invariants() == []

    def test_unclosed_span_is_flagged(self):
        tracer = Tracer(enabled=True)
        tracer.open_span("round-0", "round", "s0", 0.0)
        problems = tracer.check_invariants()
        assert len(problems) == 1
        assert "never closed" in problems[0]

    def test_child_escaping_parent_window_is_flagged(self):
        tracer = Tracer(enabled=True)
        parent = tracer.add_span("round-0", "round", "s0", 0.0, 1.0)
        tracer.add_span("get_vote", "phase", "s0", 0.5, 1.5, parent=parent)
        problems = tracer.check_invariants()
        assert len(problems) == 1
        assert "escapes parent" in problems[0]

    def test_unknown_parent_is_flagged(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("get_vote", "phase", "s0", 0.0, 1.0, parent=42)
        problems = tracer.check_invariants()
        assert len(problems) == 1
        assert "unknown parent" in problems[0]

    def test_backwards_window_is_flagged(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("get_vote", "phase", "s0", 1.0, 0.5)
        problems = tracer.check_invariants()
        assert len(problems) == 1
        assert "ends before it starts" in problems[0]


class TestAnalysis:
    def test_coverage_of_union_of_windows(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("a", "round", "s0", 0.0, 0.4)
        tracer.add_span("b", "round", "s0", 0.2, 0.6)  # overlap is not double-counted
        assert abs(tracer.coverage(1.0) - 0.6) < 1e-12
        assert tracer.coverage(0.0) == 1.0

    def test_makespan_is_latest_span_end(self):
        tracer = Tracer(enabled=True)
        assert tracer.makespan() is None
        tracer.add_span("a", "round", "s0", 0.0, 0.4)
        tracer.add_span("b", "round", "s0", 0.2, 0.6)
        tracer.instant("inject:crash", "fault-inject", "s0", 9.0)  # instants excluded
        assert tracer.makespan() == 0.6

    def test_phase_attribution_sums_phase_and_delivery_spans_only(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("round-0", "round", "s0", 0.0, 1.0)
        tracer.add_span("get_vote", "phase", "s0", 0.0, 0.3)
        tracer.add_span("get_vote", "phase", "s0", 0.5, 0.7)
        tracer.add_span("order", "delivery", "ordsvc", 0.7, 1.0)
        attribution = tracer.phase_attribution()
        assert set(attribution) == {"get_vote", "order"}
        assert abs(attribution["get_vote"] - 0.5) < 1e-12
        assert abs(attribution["order"] - 0.3) < 1e-12

    def test_span_count_by_category(self):
        tracer = _well_formed_tracer()
        assert tracer.span_count("phase") == 1
        assert tracer.span_count("txn") == 2
        assert tracer.span_count() == len(tracer.spans)


class TestFingerprint:
    def test_identical_traces_agree(self):
        assert _well_formed_tracer().fingerprint() == _well_formed_tracer().fingerprint()

    def test_structural_change_alters_the_fingerprint(self):
        changed = _well_formed_tracer()
        changed.add_span("extra", "phase", "s0", 0.0, 0.1)
        assert changed.fingerprint() != _well_formed_tracer().fingerprint()

    def test_attrs_are_excluded_from_the_fingerprint(self):
        noisy = Tracer(enabled=True)
        quiet = Tracer(enabled=True)
        noisy.add_span("get_vote", "phase", "s0", 0.0, 0.5, mht_wall_s=0.123)
        quiet.add_span("get_vote", "phase", "s0", 0.0, 0.5, mht_wall_s=0.456)
        assert noisy.fingerprint() == quiet.fingerprint()


class TestExports:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        tracer = _well_formed_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        loaded = Tracer.load_jsonl(path)
        assert loaded.fingerprint() == tracer.fingerprint()
        assert [s.to_wire() for s in loaded.spans] == [
            s.to_wire() for s in tracer.spans
        ]
        assert loaded.check_invariants() == []

    def test_span_wire_round_trip(self):
        span = Span(
            span_id=3,
            parent=1,
            kind="span",
            name="challenge",
            category="phase",
            resource="s1",
            pid=2,
            start=0.125,
            end=0.25,
            status="committed",
            attrs={"view": 1},
        )
        assert Span.from_wire(span.to_wire()) == span

    def test_chrome_export_preserves_structure(self):
        tracer = _well_formed_tracer()
        tracer.processes.append("run-a")
        trace = tracer.chrome_trace()
        reloaded = Tracer.from_records(spans_from_chrome(trace))
        assert reloaded.span_count() == tracer.span_count()
        assert [s.name for s in reloaded.spans] == [s.name for s in tracer.spans]
        assert [s.parent for s in reloaded.spans] == [s.parent for s in tracer.spans]
        assert [s.status for s in reloaded.spans] == [s.status for s in tracer.spans]
        assert reloaded.check_invariants() == []

    def test_chrome_trace_names_processes_and_threads(self):
        tracer = _well_formed_tracer()
        trace = tracer.chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {"name": "repro"} in [e["args"] for e in meta]
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"s0", "s1", "s2"} <= thread_names
