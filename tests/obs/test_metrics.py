"""Unit tests for the metrics registry and the Observability bundle."""

from __future__ import annotations

from repro.obs import Observability
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.counter("net.messages")
        metrics.counter("net.messages", 3.0)
        assert metrics.counter_value("net.messages") == 4.0
        assert metrics.counter_value("never.recorded") == 0.0

    def test_gauge_overwrites(self):
        metrics = MetricsRegistry()
        metrics.gauge("ordserv.stream_length", 2.0)
        metrics.gauge("ordserv.stream_length", 5.0)
        assert metrics.snapshot()["gauges"]["ordserv.stream_length"] == 5.0

    def test_counters_matching_prefix(self):
        metrics = MetricsRegistry()
        metrics.counter("crypto.envelope_sign.ops", 2.0)
        metrics.counter("crypto.envelope_sign.s", 0.25)
        metrics.counter("net.messages")
        matched = metrics.counters_matching("crypto.")
        assert set(matched) == {"crypto.envelope_sign.ops", "crypto.envelope_sign.s"}


class TestHistograms:
    def test_observe_tracks_count_sum_min_max_mean(self):
        histogram = Histogram()
        for value in (0.002, 0.5, 0.004):
            histogram.observe(value)
        assert histogram.count == 3
        assert abs(histogram.total - 0.506) < 1e-12
        assert histogram.minimum == 0.002
        assert histogram.maximum == 0.5
        assert abs(histogram.mean - 0.506 / 3) < 1e-12

    def test_empty_histogram_has_no_mean(self):
        assert Histogram().mean is None

    def test_values_land_in_power_of_four_buckets(self):
        histogram = Histogram()
        histogram.observe(0.5e-6)  # below the first bound
        histogram.observe(10.0)  # above the last bound -> overflow bucket
        assert histogram.buckets[0] == 1
        assert histogram.buckets[-1] == 1
        assert len(histogram.buckets) == len(DEFAULT_BUCKETS) + 1

    def test_equality_compares_contents(self):
        one, two = Histogram(), Histogram()
        one.observe(0.01)
        two.observe(0.01)
        assert one == two
        two.observe(0.02)
        assert one != two

    def test_wire_form_is_json_ready(self):
        histogram = Histogram()
        histogram.observe(0.01)
        wire = histogram.to_wire()
        assert wire["count"] == 1
        assert wire["sum"] == 0.01
        assert wire["bounds"] == list(DEFAULT_BUCKETS)
        assert sum(wire["buckets"]) == 1

    def test_registry_observe_creates_and_reuses(self):
        metrics = MetricsRegistry()
        metrics.observe("storage.mht_sweep_hashes", 6.0)
        metrics.observe("storage.mht_sweep_hashes", 8.0)
        assert metrics.histogram("storage.mht_sweep_hashes").count == 2
        assert metrics.histogram("never.observed") is None

    def test_snapshot_contains_all_three_families(self):
        metrics = MetricsRegistry()
        metrics.counter("a.count")
        metrics.gauge("b.level", 1.0)
        metrics.observe("c.duration", 0.1)
        snapshot = metrics.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["histograms"]["c.duration"]["count"] == 1


class TestObservabilityBundle:
    def test_tracing_defaults_off_and_can_be_enabled(self):
        obs = Observability()
        assert not obs.tracing
        assert obs.enable_tracing() is obs
        assert obs.tracing

    def test_attribution_block_shape(self):
        obs = Observability(tracing=True)
        obs.metrics.counter("crypto.envelope_sign.s", 0.25)
        obs.metrics.counter("crypto.envelope_sign.ops", 5.0)
        obs.metrics.counter("net.bytes_total", 1024.0)
        obs.tracer.add_span("get_vote", "phase", "s0", 0.0, 0.5)
        block = obs.attribution(makespan=1.0)
        assert block["phases_s"] == {"get_vote": 0.5}
        # Only the ``.s`` counters count as wall time, never the op counts.
        assert block["subsystems"]["crypto_wall_s"] == 0.25
        assert block["subsystems"]["net_bytes_total"] == 1024.0
        assert block["makespan_s"] == 1.0
        assert 0.0 <= block["coverage"] <= 1.0
        assert block["fingerprint"] == obs.tracer.fingerprint()

    def test_attribution_without_tracing_omits_trace_fields(self):
        block = Observability().attribution()
        assert "fingerprint" not in block
        assert "coverage" not in block
        assert "metrics" in block
