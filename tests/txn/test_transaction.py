"""Tests for transactions and read/write sets."""

from __future__ import annotations


from repro.common.config import SystemConfig
from repro.common.timestamps import Timestamp
from repro.storage.shard import build_uniform_partition
from repro.txn.operations import ReadOp, WriteOp
from repro.txn.transaction import (
    ReadSetEntry,
    Transaction,
    WriteSetEntry,
    partition_by_server,
)


def make_txn(reads=("a",), writes=("b",), counter=5):
    return Transaction(
        txn_id="t1",
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(i, 0, Timestamp.zero(), Timestamp.zero()) for i in reads],
        write_set=[WriteSetEntry(i, 1) for i in writes],
    )


class TestOperations:
    def test_read_op_flags(self):
        op = ReadOp("x")
        assert op.is_read and not op.is_write

    def test_write_op_flags(self):
        op = WriteOp("x", 3)
        assert op.is_write and not op.is_read
        assert op.to_wire()["value"] == 3


class TestTransaction:
    def test_item_views(self):
        txn = make_txn(reads=("a", "b"), writes=("b", "c"))
        assert txn.items_read() == {"a", "b"}
        assert txn.items_written() == {"b", "c"}
        assert txn.items_accessed() == {"a", "b", "c"}

    def test_writes_as_dict(self):
        txn = make_txn(writes=("x",))
        assert txn.writes_as_dict() == {"x": 1}

    def test_entry_lookup(self):
        txn = make_txn(reads=("a",), writes=("b",))
        assert txn.read_entry("a").item_id == "a"
        assert txn.read_entry("zz") is None
        assert txn.write_entry("b").new_value == 1
        assert txn.write_entry("zz") is None

    def test_read_only(self):
        assert make_txn(writes=()).is_read_only()
        assert not make_txn().is_read_only()

    def test_sets_are_immutable_tuples(self):
        txn = make_txn()
        assert isinstance(txn.read_set, tuple)
        assert isinstance(txn.write_set, tuple)

    def test_encoded_is_cached_and_content_sensitive(self):
        txn = make_txn()
        assert txn.encoded() == txn.encoded()
        other = make_txn(writes=("z",))
        assert txn.encoded() != other.encoded()

    def test_to_wire_contains_table1_information(self):
        wire = make_txn().to_wire()
        assert wire["commit_ts"] == (5, "c0")
        assert wire["read_set"][0]["item_id"] == "a"
        assert wire["write_set"][0]["new_value"] == 1


class TestConflicts:
    def test_write_write_conflict(self):
        assert make_txn(writes=("x",)).conflicts_with(make_txn(writes=("x",)))

    def test_read_write_conflict(self):
        assert make_txn(reads=("x",), writes=()).conflicts_with(make_txn(writes=("x",)))
        assert make_txn(writes=("x",)).conflicts_with(make_txn(reads=("x",), writes=()))

    def test_disjoint_transactions_do_not_conflict(self):
        assert not make_txn(reads=("a",), writes=("b",)).conflicts_with(
            make_txn(reads=("c",), writes=("d",))
        )

    def test_read_read_is_not_a_conflict(self):
        assert not make_txn(reads=("x",), writes=()).conflicts_with(
            make_txn(reads=("x",), writes=())
        )


class TestPartitionByServer:
    def test_split_matches_shard_map(self):
        config = SystemConfig(num_servers=2, items_per_shard=3)
        _, shard_map = build_uniform_partition(config)
        txn = Transaction(
            txn_id="t1",
            client_id="c0",
            commit_ts=Timestamp(1, "c0"),
            read_set=[ReadSetEntry("item-00000000", 0, Timestamp.zero(), Timestamp.zero())],
            write_set=[WriteSetEntry("item-00000004", 9)],
        )
        split = partition_by_server(txn, shard_map)
        assert set(split) == {"s0", "s1"}
        assert split["s0"]["reads"][0].item_id == "item-00000000"
        assert split["s1"]["writes"][0].item_id == "item-00000004"
