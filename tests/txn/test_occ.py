"""Tests for timestamp-ordering concurrency control (Section 4.3.1, Lemma 3)."""

from __future__ import annotations


from repro.common.timestamps import Timestamp
from repro.storage.datastore import DataStore
from repro.txn.occ import ConflictKind, OccValidator, classify_conflicts
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def make_store():
    return DataStore({"x": 0, "y": 0})


def txn_reading(item, value, rts, wts, commit_counter, writes=()):
    return Transaction(
        txn_id="t",
        client_id="c0",
        commit_ts=Timestamp(commit_counter, "c0"),
        read_set=[ReadSetEntry(item, value, rts, wts)],
        write_set=[WriteSetEntry(w, 1) for w in writes],
    )


class TestOccValidator:
    def test_fresh_transaction_commits(self):
        store = make_store()
        txn = txn_reading("x", 0, Timestamp.zero(), Timestamp.zero(), 5, writes=("x",))
        outcome = OccValidator(store).validate(txn)
        assert outcome.commit
        assert outcome.reason() == "ok"

    def test_read_of_stale_version_aborts(self):
        store = make_store()
        store.apply_commit(Timestamp(10, "c1"), {"x": 99})
        # The transaction read x before the ts-10 write and now tries to
        # commit at ts-12: the value it read is stale.
        txn = txn_reading("x", 0, Timestamp.zero(), Timestamp.zero(), 12, writes=())
        outcome = OccValidator(store).validate(txn)
        assert outcome.abort
        assert outcome.conflicts[0].kind is ConflictKind.STALE_READ

    def test_commit_timestamp_below_existing_write_aborts(self):
        store = make_store()
        store.apply_commit(Timestamp(10, "c1"), {"x": 99})
        txn = txn_reading("x", 99, Timestamp(10, "c1"), Timestamp(10, "c1"), 7, writes=())
        outcome = OccValidator(store).validate(txn)
        assert outcome.abort
        assert outcome.conflicts[0].kind is ConflictKind.READ_WRITE

    def test_write_below_existing_write_aborts(self):
        store = make_store()
        store.apply_commit(Timestamp(10, "c1"), {"y": 1})
        txn = Transaction(
            txn_id="t",
            client_id="c0",
            commit_ts=Timestamp(8, "c0"),
            read_set=[],
            write_set=[WriteSetEntry("y", 2)],
        )
        outcome = OccValidator(store).validate(txn)
        assert outcome.abort
        assert any(c.kind is ConflictKind.WRITE_WRITE for c in outcome.conflicts)

    def test_write_below_existing_read_aborts(self):
        store = make_store()
        store.record("y").record_read(Timestamp(10, "c1"))
        txn = Transaction(
            txn_id="t",
            client_id="c0",
            commit_ts=Timestamp(8, "c0"),
            read_set=[],
            write_set=[WriteSetEntry("y", 2)],
        )
        outcome = OccValidator(store).validate(txn)
        assert outcome.abort
        assert any(c.kind is ConflictKind.WRITE_READ for c in outcome.conflicts)

    def test_items_not_stored_locally_are_ignored(self):
        store = make_store()
        txn = txn_reading("foreign-item", 0, Timestamp.zero(), Timestamp.zero(), 5)
        assert OccValidator(store).validate(txn).commit

    def test_conflict_description_mentions_item(self):
        store = make_store()
        store.apply_commit(Timestamp(10, "c1"), {"x": 99})
        txn = txn_reading("x", 99, Timestamp(10, "c1"), Timestamp(10, "c1"), 7)
        outcome = OccValidator(store).validate(txn)
        assert "x" in outcome.reason()


class TestClassifyConflicts:
    def test_clean_transaction_has_no_conflicts(self):
        txn = txn_reading("x", 0, Timestamp(1, "a"), Timestamp(1, "a"), 5, writes=("x",))
        assert classify_conflicts(txn) == []

    def test_rw_conflict_detected(self):
        txn = txn_reading("x", 0, Timestamp(1, "a"), Timestamp(9, "a"), 5)
        kinds = {c.kind for c in classify_conflicts(txn)}
        assert ConflictKind.READ_WRITE in kinds

    def test_ww_and_wr_conflicts_detected(self):
        txn = Transaction(
            txn_id="t",
            client_id="c0",
            commit_ts=Timestamp(5, "c0"),
            read_set=[],
            write_set=[WriteSetEntry("x", 1, rts=Timestamp(9, "a"), wts=Timestamp(8, "a"))],
        )
        kinds = {c.kind for c in classify_conflicts(txn)}
        assert kinds == {ConflictKind.WRITE_WRITE, ConflictKind.WRITE_READ}

    def test_conflict_carries_timestamps(self):
        txn = txn_reading("x", 0, Timestamp(1, "a"), Timestamp(9, "a"), 5)
        conflict = classify_conflicts(txn)[0]
        assert conflict.txn_ts == Timestamp(5, "c0")
        assert conflict.existing_ts == Timestamp(9, "a")
