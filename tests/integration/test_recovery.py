"""Recoverability: multi-versioned datastores can roll back to a sanitised version.

Section 4.2.1: "If a failure occurs, the data can be reset to the last
sanitized version and the application can resume execution from there."
"""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.txn.operations import ReadOp, WriteOp


class TestRecovery:
    def test_rollback_to_last_clean_version_after_corruption(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        first = small_system.run_transaction([ReadOp(item), WriteOp(item, 100)])
        second = small_system.run_transaction([ReadOp(item), WriteOp(item, 200)])
        assert first.committed and second.committed

        # The server corrupts the latest version; the audit pinpoints it.
        small_system.server("s1").store.corrupt(item, -1)
        report = small_system.audit()
        corruption = report.violations_of(ViolationType.DATASTORE_CORRUPTION)
        assert corruption
        bad_height = corruption[0].block_height

        # Roll back to the version committed by the block before the corruption.
        clean_block = small_system.server("s0").log[bad_height - 1]
        clean_ts = clean_block.max_commit_ts
        small_system.server("s1").store.rollback_to(clean_ts)
        assert small_system.server("s1").store.read(item).value == 100

    def test_execution_resumes_after_rollback(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 100)])
        small_system.run_transaction([ReadOp(item), WriteOp(item, 200)])
        small_system.server("s1").store.corrupt(item, -1)
        # Reset to the earliest committed version and keep going.
        clean_ts = small_system.server("s0").log[0].max_commit_ts
        small_system.server("s1").store.rollback_to(clean_ts)
        outcome = small_system.run_transaction([ReadOp(item), WriteOp(item, 300)], client_index=1)
        assert outcome.committed
        assert small_system.server("s1").store.read(item).value == 300
