"""Integration of the Section 4.6 scale-out path: per-group TFCommit + OrdServ.

The paper sketches (Figure 9) how transactions touching disjoint groups of
servers can be terminated by per-group coordinators, with an ordering service
merging the per-group blocks into the single replicated log.  This test wires
those pieces together: two groups run TFCommit rounds independently, publish
their blocks to the ordering service, and every server's log ends up with the
same dependency-respecting chain.
"""

from __future__ import annotations


from repro.common.timestamps import Timestamp
from repro.core.grouping import group_for_transaction
from repro.core.ordserv import OrderingService
from repro.crypto.cosi import CoSiWitness, cosi_verify, run_cosi_round
from repro.crypto.keys import keypair_for
from repro.ledger.block import BlockDecision, make_partial_block
from repro.ledger.log import TransactionLog
from repro.storage.shard import ShardMap
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


SERVERS = ["s0", "s1", "s2", "s3"]
SHARD_MAP = ShardMap(
    {
        "a0": "s0",
        "a1": "s1",
        "b0": "s2",
        "b1": "s3",
        "x": "s1",
    }
)
KEYPAIRS = {sid: keypair_for(sid, seed=77) for sid in SERVERS}
PUBLIC_KEYS = {sid: kp.public for sid, kp in KEYPAIRS.items()}


def make_txn(txn_id, items, counter):
    zero = Timestamp.zero()
    return Transaction(
        txn_id=txn_id,
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(i, 0, zero, zero) for i in items],
        write_set=[WriteSetEntry(i, counter) for i in items],
    )


def group_commit(txn):
    """Run a miniature per-group TFCommit: the group members co-sign the block."""
    group = group_for_transaction(txn, SHARD_MAP)
    block = make_partial_block(0, [txn], b"\x00" * 32).with_decision(
        BlockDecision.COMMIT, {sid: b"\x01" * 32 for sid in group.members}
    )
    witnesses = [CoSiWitness(sid, KEYPAIRS[sid]) for sid in sorted(group.members)]
    cosign = run_cosi_round(block.body_digest(), witnesses)
    return block.with_cosign(cosign), group


class TestScaledTfcommit:
    def test_disjoint_groups_merge_into_one_consistent_log(self):
        service = OrderingService()
        logs = {sid: TransactionLog() for sid in SERVERS}
        for sid in SERVERS:
            service.subscribe(lambda ob, log=logs[sid]: log.append(ob.block, verify_link=False))

        txn_a = make_txn("ta", ["a0", "a1"], 1)  # group {s0, s1}
        txn_b = make_txn("tb", ["b0", "b1"], 2)  # group {s2, s3}
        for txn in (txn_a, txn_b):
            block, group = group_commit(txn)
            service.publish(block, group)
        service.flush()

        chains = {sid: tuple(b.block_hash() for b in log) for sid, log in logs.items()}
        assert len(set(chains.values())) == 1
        assert all(len(log) == 2 for log in logs.values())
        assert service.verify_dependency_order()

    def test_overlapping_groups_preserve_dependency_order(self):
        service = OrderingService(reorder_window=2)
        txn_first = make_txn("t-first", ["x"], 1)  # group {s1}
        txn_second = make_txn("t-second", ["x", "b0"], 2)  # group {s1, s2}, depends on t-first
        for txn in (txn_first, txn_second):
            block, group = group_commit(txn)
            service.publish(block, group)
        service.flush()
        ordered_ids = [ob.block.transactions[0].txn_id for ob in service.ordered_blocks]
        assert ordered_ids == ["t-first", "t-second"]
        assert service.verify_dependency_order()

    def test_per_group_cosigns_verify_with_group_keys_only(self):
        txn = make_txn("ta", ["a0", "a1"], 3)
        block, group = group_commit(txn)
        group_keys = {sid: PUBLIC_KEYS[sid] for sid in group.members}
        assert cosi_verify(block.cosign, block.body_digest(), group_keys)
        # Servers outside the group never signed it.
        assert set(block.cosign.signer_ids) == set(group.members)
