"""End-to-end integration tests: workload -> commit -> audit across protocols."""

from __future__ import annotations


from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.net.latency import ConstantLatency
from repro.server.faults import DatastoreCorruptionFault, StaleReadFault
from repro.txn.operations import ReadOp, WriteOp
from repro.workload.ycsb import YcsbWorkload


def build_system(num_servers=4, items=50, batch=5, signing="hash", protocol="tfcommit"):
    config = SystemConfig(
        num_servers=num_servers,
        items_per_shard=items,
        txns_per_block=batch,
        ops_per_txn=3,
        message_signing=signing,
        seed=17,
    )
    return FidesSystem(config, protocol=protocol, latency=ConstantLatency(0.0002))


class TestEndToEnd:
    def test_workload_commit_audit_roundtrip(self):
        system = build_system()
        workload = YcsbWorkload(
            item_ids=system.shard_map.all_items(),
            ops_per_txn=3,
            conflict_free_window=5,
            seed=18,
        )
        result = system.run_workload(workload.generate(20))
        assert result.committed == 20
        assert set(system.log_heights().values()) == {4}
        report = system.audit()
        assert report.ok, report.summary()
        assert report.transactions_audited == 20

    def test_state_is_consistent_with_log_replay(self):
        system = build_system(batch=3)
        workload = YcsbWorkload(
            item_ids=system.shard_map.all_items(),
            ops_per_txn=3,
            conflict_free_window=3,
            seed=19,
        )
        system.run_workload(workload.generate(12))
        # Replay every committed write from the log and compare against the
        # actual datastores: they must agree item for item.
        expected = {}
        for _, txn in system.server("s0").log.committed_transactions():
            for entry in txn.write_set:
                expected[entry.item_id] = entry.new_value
        for item_id, value in expected.items():
            server = system.server(system.shard_map.server_for(item_id))
            assert server.store.read(item_id).value == value

    def test_multiple_clients_interleave(self):
        system = build_system(batch=1)
        items = system.shard_map.all_items()
        for index in range(6):
            outcome = system.run_transaction(
                [ReadOp(items[index]), WriteOp(items[index], index)], client_index=index % 3
            )
            assert outcome.committed
        assert system.audit().ok

    def test_schnorr_message_signing_end_to_end(self):
        system = build_system(num_servers=3, items=30, batch=1, signing="schnorr")
        item = system.shard_map.all_items()[0]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 5)]).committed
        assert system.audit().ok

    def test_single_versioned_cluster(self):
        config = SystemConfig(
            num_servers=3,
            items_per_shard=30,
            txns_per_block=1,
            ops_per_txn=2,
            multi_versioned=False,
            message_signing="hash",
        )
        system = FidesSystem(config, latency=ConstantLatency(0.0002))
        item = system.shard_map.all_items()[0]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 5)]).committed
        report = system.audit()
        assert report.ok, report.summary()

    def test_combined_faults_all_detected(self):
        """Several independent faults injected at once are all attributed correctly."""
        system = build_system(num_servers=4, batch=1)
        items_s1 = system.shard_map.items_of("s1")
        items_s2 = system.shard_map.items_of("s2")
        assert system.run_transaction([ReadOp(items_s1[0]), WriteOp(items_s1[0], 10)]).committed
        assert system.run_transaction([ReadOp(items_s2[0]), WriteOp(items_s2[0], 20)]).committed

        system.inject_fault("s1", StaleReadFault(target_item=items_s1[0], wrong_value=0))
        system.inject_fault(
            "s2", DatastoreCorruptionFault(corruptions={items_s2[0]: -5})
        )
        assert system.run_transaction(
            [ReadOp(items_s1[0]), WriteOp(items_s1[0], 11)], client_index=1
        ).committed
        assert system.run_transaction(
            [ReadOp(items_s2[0]), WriteOp(items_s2[0], 21)], client_index=2
        ).committed
        # s3 truncates its log on top of everything else.
        system.server("s3").log.truncate(1)

        report = system.audit()
        assert not report.ok
        assert {"s1", "s2", "s3"} <= set(report.culprit_servers())
        assert "s0" not in report.culprit_servers()


class TestProtocolParity:
    def test_tfcommit_and_2pc_reach_the_same_final_state(self):
        specs = YcsbWorkload(
            item_ids=[f"item-{i:08d}" for i in range(120)],
            ops_per_txn=3,
            conflict_free_window=4,
            seed=23,
        ).generate(12)
        states = {}
        for protocol in ("tfcommit", "2pc"):
            system = build_system(num_servers=3, items=40, batch=4, protocol=protocol)
            result = system.run_workload(specs)
            assert result.committed == 12
            snapshot = {}
            for server in system.servers.values():
                snapshot.update(server.snapshot())
            states[protocol] = snapshot
        assert states["tfcommit"] == states["2pc"]
