"""Tests for the system configuration object."""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError


class TestSystemConfig:
    def test_defaults_match_paper_setup(self):
        config = SystemConfig()
        assert config.num_servers == 5
        assert config.items_per_shard == 10_000
        assert config.txns_per_block == 100
        assert config.ops_per_txn == 5

    def test_server_ids(self):
        assert SystemConfig(num_servers=3).server_ids == ["s0", "s1", "s2"]

    def test_total_items(self):
        assert SystemConfig(num_servers=4, items_per_shard=10).total_items == 40

    def test_with_updates_returns_new_config(self):
        config = SystemConfig()
        other = config.with_updates(num_servers=9, txns_per_block=1)
        assert other.num_servers == 9
        assert other.txns_per_block == 1
        assert config.num_servers == 5

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_servers", 0),
            ("items_per_shard", 0),
            ("txns_per_block", 0),
            ("ops_per_txn", 0),
            ("message_signing", "rsa"),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SystemConfig(**{field: value})
