"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.common import errors


def test_all_errors_derive_from_fides_error():
    for name in ("ConfigurationError", "SignatureError", "ValidationError",
                 "ProtocolError", "StorageError", "AuditError"):
        assert issubclass(getattr(errors, name), errors.FidesError)


def test_transaction_aborted_carries_context():
    exc = errors.TransactionAborted("t-1", reason="rw-conflict")
    assert exc.txn_id == "t-1"
    assert exc.reason == "rw-conflict"
    assert "t-1" in str(exc)
    assert isinstance(exc, errors.FidesError)


def test_catching_base_catches_all():
    with pytest.raises(errors.FidesError):
        raise errors.StorageError("boom")
