"""Tests for Lamport-style commit timestamps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timestamps import Timestamp, TimestampGenerator


class TestTimestamp:
    def test_total_order_by_counter_then_client(self):
        assert Timestamp(1, "a") < Timestamp(2, "a")
        assert Timestamp(2, "a") < Timestamp(2, "b")
        assert not Timestamp(2, "b") < Timestamp(2, "a")

    def test_equality_and_hash(self):
        assert Timestamp(3, "c") == Timestamp(3, "c")
        assert hash(Timestamp(3, "c")) == hash(Timestamp(3, "c"))
        assert Timestamp(3, "c") != Timestamp(3, "d")

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            Timestamp(-1, "a")

    def test_advance_moves_past_observed(self):
        ts = Timestamp(5, "a")
        advanced = ts.advance(Timestamp(10, "b"))
        assert advanced.counter == 11
        assert advanced.client_id == "a"

    def test_advance_without_observation(self):
        assert Timestamp(5, "a").advance().counter == 6

    def test_str_contains_counter(self):
        assert "7" in str(Timestamp(7, "x"))

    def test_zero(self):
        assert Timestamp.zero("z") == Timestamp(0, "z")


class TestTimestampGenerator:
    def test_next_is_strictly_increasing(self):
        gen = TimestampGenerator("c1")
        stamps = [gen.next() for _ in range(10)]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_observe_jumps_ahead(self):
        gen = TimestampGenerator("c1")
        gen.next()
        gen.observe(Timestamp(100, "other"))
        assert gen.next().counter == 101

    def test_observe_never_moves_backwards(self):
        gen = TimestampGenerator("c1")
        gen.observe(Timestamp(50, "x"))
        gen.observe(Timestamp(10, "y"))
        assert gen.next().counter == 51

    def test_two_clients_never_collide(self):
        gen_a, gen_b = TimestampGenerator("a"), TimestampGenerator("b")
        stamps = {gen_a.next() for _ in range(20)} | {gen_b.next() for _ in range(20)}
        assert len(stamps) == 40

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=30))
    def test_generator_exceeds_everything_observed(self, observations):
        gen = TimestampGenerator("c")
        for counter in observations:
            gen.observe(Timestamp(counter, "other"))
        fresh = gen.next()
        assert all(fresh > Timestamp(counter, "other") for counter in observations)
