"""Tests for the canonical byte encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.encoding import canonical_decode, canonical_encode


class TestCanonicalEncodeBasics:
    def test_none_true_false_are_distinct(self):
        assert canonical_encode(None) != canonical_encode(False)
        assert canonical_encode(True) != canonical_encode(False)

    def test_int_and_str_with_same_repr_differ(self):
        assert canonical_encode(42) != canonical_encode("42")

    def test_bytes_and_str_differ(self):
        assert canonical_encode(b"abc") != canonical_encode("abc")

    def test_float_and_int_differ(self):
        assert canonical_encode(1.0) != canonical_encode(1)

    def test_dict_order_does_not_matter(self):
        first = canonical_encode({"a": 1, "b": 2, "c": [3, 4]})
        second = canonical_encode({"c": [3, 4], "b": 2, "a": 1})
        assert first == second

    def test_nested_structures(self):
        value = {"k": [1, "two", {"three": 3.0}], "empty": [], "n": None}
        assert canonical_encode(value) == canonical_encode(dict(value))

    def test_list_vs_tuple_equal(self):
        assert canonical_encode([1, 2, 3]) == canonical_encode((1, 2, 3))

    def test_length_prefix_prevents_concatenation_ambiguity(self):
        assert canonical_encode(["ab", "c"]) != canonical_encode(["a", "bc"])

    def test_unsupported_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            canonical_encode(Opaque())

    def test_to_wire_objects_are_encoded(self):
        class Wired:
            def to_wire(self):
                return {"x": 1}

        assert canonical_encode(Wired()) == canonical_encode({"x": 1})


class TestSeededRandomPayloads:
    """Seeded-random payloads (shared generator): deterministic for a seed."""

    @pytest.mark.parametrize("seed", [0, 1, 2020])
    def test_randomized_payloads_encode_deterministically(self, random_payload, seed):
        import random

        payloads = [random_payload(random.Random(seed + i)) for i in range(40)]
        first = [canonical_encode(p) for p in payloads]
        second = [canonical_encode(p) for p in payloads]
        assert first == second

    @pytest.mark.parametrize("seed", [7, 2020])
    def test_randomized_payloads_rarely_collide(self, random_payload, seed):
        import random

        payloads = [random_payload(random.Random(seed * 1000 + i)) for i in range(60)]
        by_encoding = {}
        for payload in payloads:
            by_encoding.setdefault(canonical_encode(payload), []).append(payload)
        for group in by_encoding.values():
            head = group[0]
            assert all(item == head for item in group)

    @pytest.mark.parametrize("seed", [5])
    def test_dict_shuffling_never_changes_encoding(self, random_payload, seed):
        import random

        rng = random.Random(seed)
        for _ in range(30):
            mapping = {
                f"key-{rng.randint(0, 100)}": random_payload(rng) for _ in range(6)
            }
            items = list(mapping.items())
            rng.shuffle(items)
            assert canonical_encode(mapping) == canonical_encode(dict(items))


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestCanonicalEncodeProperties:
    @settings(max_examples=60, deadline=None)
    @given(_values)
    def test_encoding_is_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @settings(max_examples=60, deadline=None)
    @given(_values, _values)
    def test_distinct_scalars_lists_rarely_collide(self, left, right):
        # canonical_encode must be injective on the supported value domain
        # (ignoring list/tuple equivalence); a collision would let a malicious
        # server forge two different blocks with the same digest.
        if left != right:
            assert canonical_encode(left) != canonical_encode(right)

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
    def test_dict_insertion_order_irrelevant(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert canonical_encode(mapping) == canonical_encode(reordered)


def _normalise(value):
    """Tuples decode as lists; floats only survive if finite and exact."""
    if isinstance(value, tuple):
        return [_normalise(item) for item in value]
    if isinstance(value, list):
        return [_normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: _normalise(item) for key, item in value.items()}
    return value


class TestCanonicalDecode:
    """The decoder is the exact inverse (WAL files depend on this)."""

    @settings(max_examples=80, deadline=None)
    @given(_values)
    def test_round_trip(self, value):
        assert canonical_decode(canonical_encode(value)) == _normalise(value)

    def test_round_trips_floats(self):
        for value in (0.0, -1.5, 3.141592653589793, 1e300):
            assert canonical_decode(canonical_encode(value)) == value

    def test_rejects_trailing_bytes(self):
        with pytest.raises(ValueError):
            canonical_decode(canonical_encode(1) + b"x")

    def test_rejects_truncation(self):
        encoded = canonical_encode({"key": [1, 2, 3]})
        for cut in range(1, len(encoded)):
            with pytest.raises(ValueError):
                canonical_decode(encoded[:cut])

    def test_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            canonical_decode(b"Z\x00\x00\x00\x00")

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            canonical_decode(b"")
