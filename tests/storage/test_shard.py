"""Tests for shards and the shard map."""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import StorageError
from repro.storage.datastore import DataStore
from repro.storage.shard import Shard, ShardMap, build_uniform_partition


class TestShardMap:
    def test_uniform_partition_covers_all_items(self):
        config = SystemConfig(num_servers=3, items_per_shard=10)
        per_server, shard_map = build_uniform_partition(config)
        assert len(shard_map) == 30
        assert sorted(per_server) == ["s0", "s1", "s2"]
        assert all(len(items) == 10 for items in per_server.values())

    def test_partition_ranges_are_contiguous(self):
        config = SystemConfig(num_servers=2, items_per_shard=3)
        per_server, shard_map = build_uniform_partition(config)
        assert sorted(per_server["s0"]) == ["item-00000000", "item-00000001", "item-00000002"]
        assert shard_map.server_for("item-00000004") == "s1"

    def test_items_of_round_trips(self):
        config = SystemConfig(num_servers=2, items_per_shard=4)
        per_server, shard_map = build_uniform_partition(config)
        for server_id, items in per_server.items():
            assert sorted(shard_map.items_of(server_id)) == sorted(items)

    def test_servers_for_multiple_items(self):
        config = SystemConfig(num_servers=3, items_per_shard=2)
        _, shard_map = build_uniform_partition(config)
        servers = shard_map.servers_for(["item-00000000", "item-00000005"])
        assert servers == ["s0", "s2"]

    def test_unknown_item_raises(self):
        _, shard_map = build_uniform_partition(SystemConfig(num_servers=1, items_per_shard=1))
        with pytest.raises(StorageError):
            shard_map.server_for("missing")

    def test_all_servers_sorted(self):
        _, shard_map = build_uniform_partition(SystemConfig(num_servers=3, items_per_shard=1))
        assert shard_map.all_servers() == ["s0", "s1", "s2"]


class TestShard:
    def test_shard_wraps_store(self):
        store = DataStore({"a": 1, "b": 2})
        shard = Shard(shard_id="shard-0", server_id="s0", store=store)
        assert len(shard) == 2
        assert "a" in shard and "z" not in shard
