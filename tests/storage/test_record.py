"""Tests for versioned records."""

from __future__ import annotations

import pytest

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.storage.record import RecordVersion, VersionedRecord


def make_record():
    zero = Timestamp.zero()
    return VersionedRecord("x", [RecordVersion(value=0, wts=zero, rts=zero)])


class TestVersionedRecord:
    def test_latest_reflects_last_append(self):
        record = make_record()
        record.append_version(10, Timestamp(5, "c"))
        assert record.value == 10
        assert record.wts == Timestamp(5, "c")

    def test_multi_versioned_keeps_history(self):
        record = make_record()
        record.append_version(10, Timestamp(5, "c"))
        record.append_version(20, Timestamp(9, "c"))
        assert record.version_count() == 3
        assert record.version_at(Timestamp(5, "c")).value == 10
        assert record.version_at(Timestamp(20, "c")).value == 20

    def test_single_versioned_discards_history(self):
        record = make_record()
        record.append_version(10, Timestamp(5, "c"), multi_versioned=False)
        record.append_version(20, Timestamp(9, "c"), multi_versioned=False)
        assert record.version_count() == 1
        assert record.value == 20

    def test_record_read_advances_rts_monotonically(self):
        record = make_record()
        record.record_read(Timestamp(7, "c"))
        assert record.rts == Timestamp(7, "c")
        record.record_read(Timestamp(3, "c"))
        assert record.rts == Timestamp(7, "c")

    def test_version_at_before_first_raises(self):
        record = VersionedRecord(
            "x", [RecordVersion(value=1, wts=Timestamp(5, "c"), rts=Timestamp(5, "c"))]
        )
        with pytest.raises(StorageError):
            record.version_at(Timestamp(1, "c"))

    def test_rollback_removes_newer_versions(self):
        record = make_record()
        record.append_version(10, Timestamp(5, "c"))
        record.append_version(20, Timestamp(9, "c"))
        removed = record.rollback_to(Timestamp(5, "c"))
        assert removed == 1
        assert record.value == 10

    def test_rollback_cannot_empty_record(self):
        record = VersionedRecord(
            "x", [RecordVersion(value=1, wts=Timestamp(5, "c"), rts=Timestamp(5, "c"))]
        )
        with pytest.raises(StorageError):
            record.rollback_to(Timestamp(1, "c"))

    def test_empty_record_latest_raises(self):
        with pytest.raises(StorageError):
            _ = VersionedRecord("x").latest
