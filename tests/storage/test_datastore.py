"""Tests for the per-shard datastore."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.storage.datastore import DataStore


def make_store(count: int = 8, multi: bool = True):
    return DataStore({f"item-{i}": 0 for i in range(count)}, multi_versioned=multi)


class TestDataStoreReads:
    def test_initial_read_has_zero_timestamps(self):
        store = make_store()
        result = store.read("item-3")
        assert result.value == 0
        assert result.rts == Timestamp.zero()
        assert result.wts == Timestamp.zero()

    def test_unknown_item_raises(self):
        with pytest.raises(StorageError):
            make_store().read("missing")

    def test_len_and_contains(self):
        store = make_store(5)
        assert len(store) == 5
        assert "item-0" in store and "item-9" not in store


class TestDataStoreCommits:
    def test_apply_commit_updates_values_and_timestamps(self):
        store = make_store()
        ts = Timestamp(5, "c")
        store.apply_commit(ts, {"item-1": 11}, reads=["item-2"])
        assert store.read("item-1").value == 11
        assert store.read("item-1").wts == ts
        assert store.read("item-2").rts == ts
        assert store.read("item-2").value == 0

    def test_apply_commit_unknown_item_rejected(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.apply_commit(Timestamp(1, "c"), {"missing": 1})

    def test_commit_returns_mht_work(self):
        store = make_store(16)
        work = store.apply_commit(Timestamp(1, "c"), {"item-1": 1, "item-2": 2})
        assert work > 0
        assert store.mht_node_updates == work

    def test_multi_versioned_history_readable(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-1": 22})
        assert store.read_version("item-1", Timestamp(5, "c")).value == 11
        assert store.read_version("item-1", Timestamp(9, "c")).value == 22

    def test_single_versioned_store_rejects_history_proofs(self):
        store = make_store(multi=False)
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        with pytest.raises(StorageError):
            store.verification_object_at("item-1", Timestamp(5, "c"))

    def test_rollback_restores_old_values(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-1": 22})
        store.rollback_to(Timestamp(5, "c"))
        assert store.read("item-1").value == 11


class TestDataStoreMerkleIntegration:
    def test_merkle_root_tracks_commits(self):
        store = make_store()
        before = store.merkle_root()
        store.apply_commit(Timestamp(1, "c"), {"item-4": 44})
        assert store.merkle_root() != before

    def test_merkle_root_matches_snapshot_rebuild(self):
        store = make_store()
        store.apply_commit(Timestamp(1, "c"), {"item-4": 44, "item-5": 55})
        assert store.merkle_root() == MerkleTree.from_items(store.snapshot()).root

    def test_speculative_root_does_not_mutate(self):
        store = make_store()
        baseline = store.merkle_root()
        root, work = store.speculative_root({"item-2": 99})
        assert root != baseline
        assert work > 0
        assert store.merkle_root() == baseline
        assert store.read("item-2").value == 0

    def test_speculative_root_matches_actual_commit(self):
        store = make_store()
        speculative, _ = store.speculative_root({"item-2": 99})
        store.apply_commit(Timestamp(1, "c"), {"item-2": 99})
        assert store.merkle_root() == speculative

    def test_speculative_root_unknown_item(self):
        with pytest.raises(StorageError):
            make_store().speculative_root({"missing": 1})

    def test_verification_object_current(self):
        store = make_store()
        store.apply_commit(Timestamp(1, "c"), {"item-2": 99})
        proof = store.verification_object("item-2")
        assert verify_inclusion("item-2", 99, proof, store.merkle_root())

    def test_verification_object_at_historical_version(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-2": 22})
        proof, root = store.verification_object_at("item-2", Timestamp(5, "c"))
        assert verify_inclusion("item-2", 11, proof, root)
        assert not verify_inclusion("item-2", 22, proof, root)

    def test_corrupt_breaks_authentication(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        committed_root = store.merkle_root()
        store.corrupt("item-2", 666)
        proof = store.verification_object("item-2")
        # The corrupted value cannot authenticate against the root computed
        # when the correct value was committed (Lemma 2's core argument).
        assert not verify_inclusion("item-2", 666, proof, committed_root)

    @settings(max_examples=20, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from([f"item-{i}" for i in range(8)]),
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=4,
        )
    )
    def test_speculative_and_real_roots_agree(self, writes):
        store = make_store()
        speculative, _ = store.speculative_root(writes)
        store.apply_commit(Timestamp(1, "c"), writes)
        assert store.merkle_root() == speculative
