"""Tests for the per-shard datastore."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.storage.datastore import DataStore


def make_store(count: int = 8, multi: bool = True):
    return DataStore({f"item-{i}": 0 for i in range(count)}, multi_versioned=multi)


class TestDataStoreReads:
    def test_initial_read_has_zero_timestamps(self):
        store = make_store()
        result = store.read("item-3")
        assert result.value == 0
        assert result.rts == Timestamp.zero()
        assert result.wts == Timestamp.zero()

    def test_unknown_item_raises(self):
        with pytest.raises(StorageError):
            make_store().read("missing")

    def test_len_and_contains(self):
        store = make_store(5)
        assert len(store) == 5
        assert "item-0" in store and "item-9" not in store


class TestDataStoreCommits:
    def test_apply_commit_updates_values_and_timestamps(self):
        store = make_store()
        ts = Timestamp(5, "c")
        store.apply_commit(ts, {"item-1": 11}, reads=["item-2"])
        assert store.read("item-1").value == 11
        assert store.read("item-1").wts == ts
        assert store.read("item-2").rts == ts
        assert store.read("item-2").value == 0

    def test_apply_commit_unknown_item_rejected(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.apply_commit(Timestamp(1, "c"), {"missing": 1})

    def test_commit_returns_mht_work(self):
        store = make_store(16)
        work = store.apply_commit(Timestamp(1, "c"), {"item-1": 1, "item-2": 2})
        assert work > 0
        assert store.mht_node_updates == work

    def test_multi_versioned_history_readable(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-1": 22})
        assert store.read_version("item-1", Timestamp(5, "c")).value == 11
        assert store.read_version("item-1", Timestamp(9, "c")).value == 22

    def test_single_versioned_store_rejects_history_proofs(self):
        store = make_store(multi=False)
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        with pytest.raises(StorageError):
            store.verification_object_at("item-1", Timestamp(5, "c"))

    def test_rollback_restores_old_values(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-1": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-1": 22})
        store.rollback_to(Timestamp(5, "c"))
        assert store.read("item-1").value == 11


class TestBatchedApply:
    def test_apply_batch_matches_sequential_commits(self):
        batched = make_store(16)
        sequential = make_store(16)
        commits = [
            (Timestamp(1, "c"), {"item-1": 10, "item-2": 20}, ["item-3"]),
            (Timestamp(2, "c"), {"item-2": 21, "item-5": 50}, []),
            (Timestamp(3, "c"), {"item-9": 90}, ["item-1"]),
        ]
        batched.apply_batch(commits)
        for commit_ts, writes, reads in commits:
            sequential.apply_commit(commit_ts, writes, reads)
        assert batched.snapshot() == sequential.snapshot()
        assert batched.merkle_root() == sequential.merkle_root()
        for item in ("item-1", "item-2", "item-3"):
            assert batched.read(item).rts == sequential.read(item).rts
            assert batched.read(item).wts == sequential.read(item).wts

    def test_apply_batch_orders_by_commit_timestamp(self):
        store = make_store(8)
        # Handed in out of order: the ts-2 write must win over the ts-1 write.
        store.apply_batch(
            [
                (Timestamp(2, "c"), {"item-0": 200}, []),
                (Timestamp(1, "c"), {"item-0": 100}, []),
            ]
        )
        assert store.read("item-0").value == 200
        assert store.read("item-0").wts == Timestamp(2, "c")

    def test_apply_batch_does_fewer_hashes_than_sequential(self):
        batched = make_store(64)
        sequential = make_store(64)
        commits = [
            (Timestamp(i + 1, "c"), {f"item-{i}": i, f"item-{i + 8}": i}, [])
            for i in range(8)
        ]
        batched_work = batched.apply_batch(commits)
        sequential_work = sum(
            sequential.apply_commit(ts, writes, reads) for ts, writes, reads in commits
        )
        assert batched_work < sequential_work
        assert batched.merkle_root() == sequential.merkle_root()

    def test_apply_batch_rejects_unknown_items_before_mutating(self):
        store = make_store(4)
        root = store.merkle_root()
        with pytest.raises(StorageError):
            store.apply_batch(
                [
                    (Timestamp(1, "c"), {"item-0": 1}, []),
                    (Timestamp(2, "c"), {"missing": 2}, []),
                ]
            )
        assert store.merkle_root() == root
        assert store.read("item-0").value == 0

    def test_historical_tree_cache_reused_and_invalidated(self):
        store = make_store(8)
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-2": 22, "item-3": 33})
        proof_a, root_a = store.verification_object_at("item-2", Timestamp(5, "c"))
        proof_b, root_b = store.verification_object_at("item-3", Timestamp(5, "c"))
        assert root_a == root_b  # served from the same cached historical tree
        assert verify_inclusion("item-2", 11, proof_a, root_a)
        assert verify_inclusion("item-3", 0, proof_b, root_b)
        # A new commit invalidates the cache but not the historical answer.
        store.apply_commit(Timestamp(12, "c"), {"item-4": 44})
        proof_c, root_c = store.verification_object_at("item-2", Timestamp(5, "c"))
        assert root_c == root_a
        assert verify_inclusion("item-2", 11, proof_c, root_c)

    def test_historical_tree_reflects_injected_corruption(self):
        # Lemma 2: a corrupted store must fail authentication even when the
        # audit asks for a historical version served via the cached tree.
        store = make_store(8)
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        _, honest_root = store.verification_object_at("item-2", Timestamp(5, "c"))
        store.corrupt("item-2", 666)
        proof, root = store.verification_object_at("item-2", Timestamp(5, "c"))
        assert root != honest_root
        assert not verify_inclusion("item-2", 666, proof, honest_root)


class TestDataStoreMerkleIntegration:
    def test_merkle_root_tracks_commits(self):
        store = make_store()
        before = store.merkle_root()
        store.apply_commit(Timestamp(1, "c"), {"item-4": 44})
        assert store.merkle_root() != before

    def test_merkle_root_matches_snapshot_rebuild(self):
        store = make_store()
        store.apply_commit(Timestamp(1, "c"), {"item-4": 44, "item-5": 55})
        assert store.merkle_root() == MerkleTree.from_items(store.snapshot()).root

    def test_speculative_root_does_not_mutate(self):
        store = make_store()
        baseline = store.merkle_root()
        root, work = store.speculative_root({"item-2": 99})
        assert root != baseline
        assert work > 0
        assert store.merkle_root() == baseline
        assert store.read("item-2").value == 0

    def test_speculative_root_matches_actual_commit(self):
        store = make_store()
        speculative, _ = store.speculative_root({"item-2": 99})
        store.apply_commit(Timestamp(1, "c"), {"item-2": 99})
        assert store.merkle_root() == speculative

    def test_speculative_root_unknown_item(self):
        with pytest.raises(StorageError):
            make_store().speculative_root({"missing": 1})

    def test_verification_object_current(self):
        store = make_store()
        store.apply_commit(Timestamp(1, "c"), {"item-2": 99})
        proof = store.verification_object("item-2")
        assert verify_inclusion("item-2", 99, proof, store.merkle_root())

    def test_verification_object_at_historical_version(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        store.apply_commit(Timestamp(9, "c"), {"item-2": 22})
        proof, root = store.verification_object_at("item-2", Timestamp(5, "c"))
        assert verify_inclusion("item-2", 11, proof, root)
        assert not verify_inclusion("item-2", 22, proof, root)

    def test_corrupt_breaks_authentication(self):
        store = make_store()
        store.apply_commit(Timestamp(5, "c"), {"item-2": 11})
        committed_root = store.merkle_root()
        store.corrupt("item-2", 666)
        proof = store.verification_object("item-2")
        # The corrupted value cannot authenticate against the root computed
        # when the correct value was committed (Lemma 2's core argument).
        assert not verify_inclusion("item-2", 666, proof, committed_root)

    @settings(max_examples=20, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from([f"item-{i}" for i in range(8)]),
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=4,
        )
    )
    def test_speculative_and_real_roots_agree(self, writes):
        store = make_store()
        speculative, _ = store.speculative_root(writes)
        store.apply_commit(Timestamp(1, "c"), writes)
        assert store.merkle_root() == speculative
