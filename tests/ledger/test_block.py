"""Tests for blocks -- including the Table 1 field inventory."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CoSiWitness, run_cosi_round
from repro.crypto.hashing import EMPTY_HASH
from repro.crypto.keys import keypair_for
from repro.ledger.block import Block, BlockDecision, genesis_previous_hash, make_partial_block
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def make_txn(txn_id="t1", counter=5, item="x", value=10):
    ts = Timestamp(counter, "c0")
    return Transaction(
        txn_id=txn_id,
        client_id="c0",
        commit_ts=ts,
        read_set=[ReadSetEntry(item, 0, Timestamp.zero(), Timestamp.zero())],
        write_set=[WriteSetEntry(item, value)],
    )


def make_block(decision=BlockDecision.COMMIT, cosigned=True, height=0):
    block = make_partial_block(height, [make_txn()], genesis_previous_hash())
    block = block.with_decision(decision, {"s0": b"\x01" * 32})
    if cosigned:
        witnesses = [CoSiWitness(f"s{i}", keypair_for(f"s{i}")) for i in range(3)]
        block = block.with_cosign(run_cosi_round(block.body_digest(), witnesses))
    return block


class TestTable1Fields:
    """Every field of Table 1 must be present in a block."""

    def test_txn_id_is_the_commit_timestamp(self):
        block = make_block()
        assert block.txn_ids == (str(Timestamp(5, "c0")),)
        assert block.commit_timestamps == (Timestamp(5, "c0"),)

    def test_read_set_entries(self):
        entry = make_block().read_set[0]
        assert entry.item_id == "x"
        assert entry.value == 0
        assert entry.rts == Timestamp.zero()
        assert entry.wts == Timestamp.zero()

    def test_write_set_entries_carry_new_and_old_values(self):
        entry = make_block().write_set[0]
        assert entry.item_id == "x"
        assert entry.new_value == 10
        assert hasattr(entry, "old_value")
        assert hasattr(entry, "rts") and hasattr(entry, "wts")

    def test_mht_roots_of_involved_shards(self):
        block = make_block()
        assert block.roots == {"s0": b"\x01" * 32}
        assert block.involved_servers() == ("s0",)

    def test_decision_field(self):
        assert make_block(BlockDecision.COMMIT).is_commit
        assert not make_block(BlockDecision.ABORT).is_commit

    def test_hash_of_previous_block(self):
        assert make_block().previous_hash == genesis_previous_hash() == EMPTY_HASH

    def test_collective_signature_field(self):
        assert make_block(cosigned=True).cosign is not None
        assert make_block(cosigned=False).cosign is None


class TestBlockHashing:
    def test_body_digest_excludes_cosign(self):
        unsigned = make_block(cosigned=False)
        signed = make_block(cosigned=True)
        assert unsigned.body_digest() == signed.body_digest()

    def test_block_hash_includes_cosign(self):
        unsigned = make_block(cosigned=False)
        signed = make_block(cosigned=True)
        assert unsigned.block_hash() != signed.block_hash()

    def test_digest_changes_with_decision(self):
        commit = make_block(BlockDecision.COMMIT, cosigned=False)
        abort = make_block(BlockDecision.ABORT, cosigned=False)
        assert commit.body_digest() != abort.body_digest()

    def test_digest_changes_with_transactions(self):
        base = make_partial_block(0, [make_txn("t1")], genesis_previous_hash())
        other = make_partial_block(0, [make_txn("t2", value=11)], genesis_previous_hash())
        assert base.body_digest() != other.body_digest()

    def test_digest_changes_with_previous_hash(self):
        base = make_partial_block(0, [make_txn()], genesis_previous_hash())
        other = make_partial_block(0, [make_txn()], b"\x07" * 32)
        assert base.body_digest() != other.body_digest()

    def test_digest_is_cached_and_stable(self):
        block = make_block(cosigned=False)
        assert block.body_digest() == block.body_digest()


class TestBlockStructure:
    def test_negative_height_rejected(self):
        with pytest.raises(ValidationError):
            Block(
                height=-1,
                transactions=(),
                roots={},
                decision=BlockDecision.ABORT,
                previous_hash=EMPTY_HASH,
            )

    def test_multiple_transactions_per_block(self):
        txns = [make_txn(f"t{i}", counter=5 + i, item=f"x{i}") for i in range(3)]
        block = make_partial_block(0, txns, genesis_previous_hash())
        assert len(block.transactions) == 3
        assert len(block.read_set) == 3
        assert block.max_commit_ts == Timestamp(7, "c0")

    def test_partial_block_defaults_to_abort_without_roots(self):
        block = make_partial_block(0, [make_txn()], genesis_previous_hash())
        assert block.decision is BlockDecision.ABORT
        assert block.roots == {}

    def test_empty_block_max_ts(self):
        block = make_partial_block(0, [], genesis_previous_hash())
        assert block.max_commit_ts == Timestamp.zero()

    def test_to_wire_roundtrip_shape(self):
        wire = make_block().to_wire()
        assert set(wire) == {"body", "cosign"}
        assert wire["body"]["decision"] == "commit"
