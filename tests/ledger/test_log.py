"""Tests for the tamper-proof transaction log (Lemmas 6 and 7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CoSiWitness, run_cosi_round
from repro.crypto.keys import keypair_for
from repro.ledger.block import BlockDecision, make_partial_block
from repro.ledger.log import TransactionLog, select_correct_log
from repro.txn.transaction import Transaction, WriteSetEntry

SERVER_IDS = ["s0", "s1", "s2"]
KEYPAIRS = {sid: keypair_for(sid, seed=42) for sid in SERVER_IDS}
PUBLIC_KEYS = {sid: kp.public for sid, kp in KEYPAIRS.items()}


def make_txn(index: int) -> Transaction:
    return Transaction(
        txn_id=f"t{index}",
        client_id="c0",
        commit_ts=Timestamp(index + 1, "c0"),
        read_set=[],
        write_set=[WriteSetEntry(f"item-{index}", index)],
    )


def cosign_block(block):
    witnesses = [CoSiWitness(sid, KEYPAIRS[sid]) for sid in SERVER_IDS]
    return block.with_cosign(run_cosi_round(block.body_digest(), witnesses))


def build_log(length: int = 4) -> TransactionLog:
    log = TransactionLog()
    for index in range(length):
        block = make_partial_block(log.height, [make_txn(index)], log.head_hash)
        block = block.with_decision(BlockDecision.COMMIT, {"s0": bytes([index]) * 32})
        log.append(cosign_block(block))
    return log


class TestHonestLog:
    def test_append_and_iterate(self):
        log = build_log(3)
        assert len(log) == 3
        assert [block.height for block in log] == [0, 1, 2]

    def test_verify_accepts_honest_log(self):
        result = build_log(4).verify(PUBLIC_KEYS)
        assert result.valid
        assert result.valid_prefix_length == 4

    def test_head_hash_chains(self):
        log = build_log(2)
        assert log[1].previous_hash == log[0].block_hash()

    def test_committed_transactions_iteration(self):
        log = build_log(3)
        entries = list(log.committed_transactions())
        assert [txn.txn_id for _, txn in entries] == ["t0", "t1", "t2"]

    def test_append_rejects_wrong_height(self):
        log = build_log(2)
        stray = make_partial_block(5, [make_txn(9)], log.head_hash)
        stray = cosign_block(stray.with_decision(BlockDecision.COMMIT, {}))
        with pytest.raises(ValidationError):
            log.append(stray)

    def test_append_rejects_broken_hash_pointer(self):
        log = build_log(2)
        stray = make_partial_block(2, [make_txn(9)], b"\x00" * 32)
        stray = cosign_block(stray.with_decision(BlockDecision.COMMIT, {}))
        with pytest.raises(ValidationError):
            log.append(stray)

    def test_append_rejects_unsigned_block(self):
        log = build_log(1)
        unsigned = make_partial_block(1, [make_txn(9)], log.head_hash).with_decision(
            BlockDecision.COMMIT, {}
        )
        with pytest.raises(ValidationError):
            log.append(unsigned)

    def test_copy_is_independent(self):
        log = build_log(3)
        copy = log.copy()
        copy.truncate(1)
        assert len(log) == 3 and len(copy) == 1

    def test_prefix_relation(self):
        log = build_log(4)
        shorter = log.copy()
        shorter.truncate(2)
        assert shorter.is_prefix_of(log)
        assert not log.is_prefix_of(shorter)


class TestTamperedLogs:
    def test_modified_block_detected(self):
        log = build_log(4)
        forged = make_partial_block(1, [make_txn(99)], log[0].block_hash())
        forged = forged.with_decision(BlockDecision.COMMIT, {"s0": b"\x09" * 32})
        forged = forged.with_cosign(log[1].cosign)  # reuse the old signature
        log.tamper_replace(1, forged)
        result = log.verify(PUBLIC_KEYS)
        assert not result.valid
        assert result.first_invalid_height == 1
        assert "signature" in result.reason

    def test_reordered_blocks_detected(self):
        log = build_log(4)
        log.tamper_reorder(1, 2)
        result = log.verify(PUBLIC_KEYS)
        assert not result.valid
        assert result.first_invalid_height == 1

    def test_truncated_log_still_verifies_but_is_shorter(self):
        # Lemma 7: a truncated log is internally consistent; only comparing
        # against the other copies reveals the missing tail.
        log = build_log(4)
        log.truncate(2)
        result = log.verify(PUBLIC_KEYS)
        assert result.valid
        assert result.length == 2

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValidationError):
            build_log(2).truncate(-1)


class TestSelectCorrectLog:
    def test_longest_valid_copy_wins(self):
        full = build_log(5)
        short = full.copy()
        short.truncate(3)
        tampered = full.copy()
        tampered.tamper_reorder(0, 1)
        logs = {"s0": short, "s1": full, "s2": tampered}
        chosen_server, chosen_log, results = select_correct_log(logs, PUBLIC_KEYS)
        assert chosen_server == "s1"
        assert len(chosen_log) == 5
        assert not results["s2"].valid and results["s0"].valid

    def test_no_valid_copy_raises(self):
        log = build_log(2)
        log.tamper_reorder(0, 1)
        with pytest.raises(ValidationError):
            select_correct_log({"s0": log}, PUBLIC_KEYS)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=4))
    def test_any_honest_prefix_is_selected_over_shorter_ones(self, keep):
        full = build_log(4)
        short = full.copy()
        short.truncate(keep)
        chosen_server, chosen_log, _ = select_correct_log(
            {"s0": short, "s1": full}, PUBLIC_KEYS
        )
        assert chosen_server == "s1"
        assert len(chosen_log) == 4
