"""Tests for auditable log checkpointing (Section 3.3 optimisation)."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.ledger.checkpoint import (
    apply_checkpoint,
    build_checkpoint,
    cosign_checkpoint,
    verify_checkpoint,
    verify_log_against_checkpoint,
)
from repro.txn.operations import ReadOp, WriteOp


@pytest.fixture
def system_with_history(small_system, workload_factory):
    workload = workload_factory(small_system, ops_per_txn=2, seed=81)
    result = small_system.run_workload(workload.generate(6))
    assert result.committed == 6
    return small_system


def make_signed_checkpoint(system):
    log = system.server("s0").log
    shard_roots = {sid: system.server(sid).store.merkle_root() for sid in system.server_ids}
    checkpoint = build_checkpoint(log, shard_roots)
    keypairs = {sid: system.server(sid).keypair for sid in system.server_ids}
    return cosign_checkpoint(checkpoint, keypairs)


class TestCheckpointConstruction:
    def test_summary_covers_full_prefix(self, system_with_history):
        checkpoint = make_signed_checkpoint(system_with_history)
        assert checkpoint.height == 5
        assert checkpoint.transactions_covered == 6
        assert set(checkpoint.shard_roots) == set(system_with_history.server_ids)
        assert checkpoint.head_hash == system_with_history.server("s0").log.head_hash

    def test_cosign_verifies_with_all_server_keys(self, system_with_history):
        checkpoint = make_signed_checkpoint(system_with_history)
        public_keys = system_with_history.network.public_key_directory()
        assert verify_checkpoint(checkpoint, public_keys)

    def test_unsigned_checkpoint_does_not_verify(self, system_with_history):
        log = system_with_history.server("s0").log
        roots = {sid: b"\x00" * 32 for sid in system_with_history.server_ids}
        unsigned = build_checkpoint(log, roots)
        assert not verify_checkpoint(
            unsigned, system_with_history.network.public_key_directory()
        )

    def test_empty_log_cannot_be_checkpointed(self, small_system):
        from repro.ledger.log import TransactionLog

        with pytest.raises(ValidationError):
            build_checkpoint(TransactionLog(), {})

    def test_digest_binds_roots(self, system_with_history):
        checkpoint = make_signed_checkpoint(system_with_history)
        altered = type(checkpoint)(
            height=checkpoint.height,
            head_hash=checkpoint.head_hash,
            shard_roots={sid: b"\x00" * 32 for sid in checkpoint.shard_roots},
            latest_commit_ts=checkpoint.latest_commit_ts,
            transactions_covered=checkpoint.transactions_covered,
            cosign=checkpoint.cosign,
        )
        assert not verify_checkpoint(
            altered, system_with_history.network.public_key_directory()
        )


class TestCheckpointApplication:
    def test_prefix_dropped_and_chain_still_verifies(self, system_with_history):
        system = system_with_history
        checkpoint = make_signed_checkpoint(system)
        # Commit two more transactions after the checkpoint was taken.
        item = system.shard_map.items_of("s1")[1]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 1)]).committed
        assert system.run_transaction([ReadOp(item), WriteOp(item, 2)]).committed

        log = system.server("s1").log
        removed = apply_checkpoint(log, checkpoint)
        assert removed == 6
        assert len(log) == 2
        public_keys = system.network.public_key_directory()
        assert verify_log_against_checkpoint(log, checkpoint, public_keys)

    def test_unsigned_checkpoint_rejected(self, system_with_history):
        system = system_with_history
        log = system.server("s0").log
        roots = {sid: system.server(sid).store.merkle_root() for sid in system.server_ids}
        unsigned = build_checkpoint(log, roots)
        with pytest.raises(ValidationError):
            apply_checkpoint(log, unsigned)

    def test_checkpoint_from_foreign_history_rejected(self, system_with_history, small_config):
        from repro.core.fides import FidesSystem
        from repro.net.latency import ConstantLatency

        other = FidesSystem(small_config.with_updates(seed=99), latency=ConstantLatency(0.0002))
        item = other.shard_map.all_items()[0]
        other.run_transaction([WriteOp(item, 1)])
        foreign_checkpoint = make_signed_checkpoint(other)
        with pytest.raises(ValidationError):
            apply_checkpoint(system_with_history.server("s0").log, foreign_checkpoint)

    def test_tampered_suffix_detected_against_checkpoint(self, system_with_history):
        system = system_with_history
        checkpoint = make_signed_checkpoint(system)
        item = system.shard_map.items_of("s1")[1]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 1)]).committed
        assert system.run_transaction([ReadOp(item), WriteOp(item, 2)]).committed
        log = system.server("s2").log
        apply_checkpoint(log, checkpoint)
        public_keys = system.network.public_key_directory()
        assert verify_log_against_checkpoint(log, checkpoint, public_keys)
        # Dropping the first retained block breaks the chain onto the checkpoint.
        log.drop_prefix(1)
        assert not verify_log_against_checkpoint(log, checkpoint, public_keys)
        # An empty suffix, by contrast, is perfectly valid.
        log.drop_prefix(10)
        assert verify_log_against_checkpoint(log, checkpoint, public_keys)


class TestGroupBlockSuffix:
    def test_suffix_with_doctored_group_signer_set_rejected(self, system_with_history):
        """A group block signed by fewer servers than its recorded group must
        fail checkpoint-based verification, exactly as it fails full log
        verification (the chaining-vs-cosign split's defense)."""
        from dataclasses import replace as dc_replace

        from repro.crypto.cosi import CoSiWitness, run_cosi_round
        from repro.ledger.block import Block

        system = system_with_history
        checkpoint = make_signed_checkpoint(system)
        item = system.shard_map.items_of("s1")[1]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 1)]).committed
        log = system.server("s2").log
        apply_checkpoint(log, checkpoint)
        public_keys = system.network.public_key_directory()
        assert verify_log_against_checkpoint(log, checkpoint, public_keys)

        # Forge a "group" version of the retained block, claiming the full
        # server set but co-signed by s0 alone over the group body digest.
        honest = log[0]
        forged = Block(
            height=honest.height,
            transactions=honest.transactions,
            roots=honest.roots,
            decision=honest.decision,
            previous_hash=honest.previous_hash,
            group=tuple(system.server_ids),
        )
        lone_witness = CoSiWitness("s0", system.server("s0").keypair)
        forged = forged.with_cosign(
            run_cosi_round(forged.group_body_digest(), [lone_witness])
        )
        forged = dc_replace(forged, previous_hash=checkpoint.head_hash)
        log.tamper_replace(0, forged)
        assert not verify_log_against_checkpoint(log, checkpoint, public_keys)


class TestDropPrefix:
    def test_drop_prefix_bounds(self, system_with_history):
        log = system_with_history.server("s0").log.copy()
        assert log.drop_prefix(0) == 0
        assert log.drop_prefix(100) == 6
        with pytest.raises(ValidationError):
            log.drop_prefix(-1)

    def test_drop_prefix_preserves_global_heights_and_head(self, system_with_history):
        log = system_with_history.server("s0").log.copy()
        head_before = log.head_hash
        height_before = log.height
        log.drop_prefix(3)
        assert log.base_height == 3
        assert log.height == height_before
        assert log.head_hash == head_before
        assert log.block_at_height(2) is None
        assert log.block_at_height(3).height == 3


class TestLiveSystemKeepsOperatingAfterCheckpoint:
    """Regression (scaled deployment support): installing a checkpoint must
    not disturb the commit protocol -- heights stay global, chaining intact,
    repeated checkpoints compose, and the auditor accepts the truncated
    logs."""

    def test_commits_continue_and_repeat_checkpoints_compose(
        self, system_with_history, workload_factory
    ):
        system = system_with_history
        first = system.create_checkpoint()
        assert all(
            server.log.base_height == first.height + 1
            for server in system.servers.values()
        )
        workload = workload_factory(system, seed=67)
        assert system.run_workload(workload.generate(4)).committed == 4
        # Second checkpoint over the already-truncated log: transaction
        # accounting accumulates across the boundary.
        second = system.create_checkpoint()
        assert second.height == first.height + 4
        assert second.transactions_covered == first.transactions_covered + 4
        assert system.run_workload(workload.generate(2)).committed == 2
        report = system.audit()
        assert report.ok, report.summary()

    def test_auditor_accepts_all_truncated_logs_and_still_detects_tampering(
        self, system_with_history, workload_factory
    ):
        from repro.audit.violations import ViolationType

        system = system_with_history
        system.create_checkpoint()
        workload = workload_factory(system, seed=68)
        assert system.run_workload(workload.generate(3)).committed == 3
        assert system.audit().ok
        # Tail-truncating a checkpointed copy is still caught (Lemma 7 does
        # not weaken across the checkpoint boundary).
        system.server("s2").log.truncate(1)
        report = system.audit()
        assert not report.ok
        assert report.violations_of(ViolationType.LOG_INCOMPLETE)
        assert report.culprit_servers() == ("s2",)

    def test_checkpoint_covering_group_blocks_survives_auditor_verification(
        self, make_scaled_system, workload_factory
    ):
        """The satellite regression: a checkpoint whose boundary block is a
        dynamic-group block (group co-sign over the chain-free group body
        digest) must verify end to end after truncation."""
        system = make_scaled_system(num_servers=4, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=2, window=2, seed=41)
        assert system.run_workload(workload.generate(8)).committed == 8
        checkpoint = system.create_checkpoint()
        boundary = checkpoint.height
        assert system.run_workload(workload.generate(4)).committed == 4
        log = system.server("s1").log
        assert log.base_height == boundary + 1
        # Every retained block is a group block; the suffix still verifies
        # against the checkpoint (co-sign over group body digest + signer
        # set == recorded group).
        assert all(block.group is not None for block in log)
        public_keys = system.network.public_key_directory()
        assert verify_log_against_checkpoint(log.copy(), checkpoint, public_keys)
        report = system.audit()
        assert report.ok, report.summary()

    def test_stale_checkpoint_application_is_a_noop(self, system_with_history):
        system = system_with_history
        first = system.create_checkpoint()
        # Re-applying the same (or an older) checkpoint drops nothing.
        assert apply_checkpoint(system.server("s0").log, first) == 0
