"""Integration tests for pipelined round execution on the event timeline."""

from __future__ import annotations

from repro.bench.harness import run_pipelined_experiment
from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.net.latency import lan_latency
from repro.sim import FixedCompute
from repro.txn.operations import WriteOp
from repro.workload.ycsb import TransactionSpec


class TestPipelinedExperiment:
    def test_depth_one_speedup_is_exactly_one(self):
        result = run_pipelined_experiment("anchor", pipeline_depth=1, num_requests=16)
        assert result.speedup == 1.0
        assert result.pipelined_time_s == result.sequential_time_s

    def test_depth_two_beats_sequential_classic(self):
        result = run_pipelined_experiment("classic", pipeline_depth=2, num_requests=24)
        assert result.committed_txns == 24
        assert result.speedup > 1.05
        assert result.auditor_clean

    def test_depth_two_beats_sequential_scaled(self):
        result = run_pipelined_experiment(
            "scaled", pipeline_depth=2, group_size=2, num_requests=24
        )
        assert result.committed_txns == 24
        assert result.speedup > 1.05
        assert result.auditor_clean

    def test_results_are_deterministic(self):
        a = run_pipelined_experiment("rep", pipeline_depth=2, num_requests=16)
        b = run_pipelined_experiment("rep", pipeline_depth=2, num_requests=16)
        assert a.pipelined_tps == b.pipelined_tps
        assert a.sequential_tps == b.sequential_tps


class TestPipelinedSemantics:
    def build(self, depth: int) -> FidesSystem:
        config = SystemConfig(
            num_servers=3,
            items_per_shard=60,
            txns_per_block=2,
            ops_per_txn=2,
            multi_versioned=False,
            message_signing="hash",
            pipeline_depth=depth,
            seed=11,
        )
        return FidesSystem(
            config=config,
            latency=lan_latency(seed=11),
            compute_model=FixedCompute(0.001),
        )

    def conflict_free_specs(self, system: FidesSystem, count: int):
        items = system.shard_map.all_items()
        return [
            TransactionSpec(txn_index=i, operations=(WriteOp(items[i], i),))
            for i in range(count)
        ]

    def conflicting_specs(self, system: FidesSystem, count: int):
        item = system.shard_map.all_items()[0]
        return [
            TransactionSpec(txn_index=i, operations=(WriteOp(item, i),))
            for i in range(count)
        ]

    def test_pipelined_run_commits_identically_to_sequential(self):
        sequential, pipelined = self.build(1), self.build(3)
        specs = self.conflict_free_specs(sequential, 8)
        seq_out = sequential.run_workload(specs)
        pip_out = pipelined.run_workload(self.conflict_free_specs(pipelined, 8))
        assert seq_out.committed == pip_out.committed == 8
        assert sequential.log_heights() == pipelined.log_heights()
        for a, b in zip(seq_out.block_results, pip_out.block_results):
            assert a.block.block_hash() == b.block.block_hash()
        assert pipelined.sim.makespan < sequential.sim.makespan
        assert pipelined.audit().ok

    def test_conflicting_blocks_do_not_pipeline(self):
        # Every consecutive block writes the same item, so the conflict rule
        # must serialize them: depth buys nothing.
        sequential, pipelined = self.build(1), self.build(3)
        seq_out = sequential.run_workload(self.conflicting_specs(sequential, 6))
        pip_out = pipelined.run_workload(self.conflicting_specs(pipelined, 6))
        assert seq_out.committed == pip_out.committed
        assert pipelined.sim.makespan == sequential.sim.makespan

    def test_reorder_window_still_gates_conflicting_group_rounds(self):
        """A pending conflicting block gates the next round even when the
        ordering service holds blocks in a reorder window: the conflict
        implies overlapping groups, so ``flush_conflicting`` lands it before
        the dependent round begins, and the delivery frontier then applies."""
        from repro.core.scaled import ScaledFidesSystem
        from repro.net.latency import lan_latency

        config = SystemConfig(
            num_servers=3,
            items_per_shard=20,
            txns_per_block=1,
            ops_per_txn=2,
            multi_versioned=False,
            message_signing="hash",
            pipeline_depth=4,
            seed=13,
        )
        system = ScaledFidesSystem(
            config,
            latency=lan_latency(seed=13),
            reorder_window=1,
            compute_model=FixedCompute(0.001),
        )
        shared = system.shard_map.items_of("s1")[0]
        specs = [
            # Group {s0, s1} (coordinator s0) writes the shared s1 item...
            TransactionSpec(
                txn_index=0,
                operations=(WriteOp(system.shard_map.items_of("s0")[0], 1), WriteOp(shared, 2)),
            ),
            # ...and group {s1, s2} (coordinator s1) writes it right after.
            TransactionSpec(
                txn_index=1,
                operations=(WriteOp(shared, 3), WriteOp(system.shard_map.items_of("s2")[0], 4)),
            ),
        ]
        outcome = system.run_workload(specs)
        assert outcome.committed == 2
        first = system.sim.scheduler.tasks_of("s0")[0]
        second = system.sim.scheduler.tasks_of("s1")[0]
        # The dependent round starts no earlier than the conflicting block's
        # ordered delivery (task end = delivery end in the scaled flow).
        assert first.done_at is not None
        assert second.started_at >= first.done_at
        assert system.audit().ok

    def test_decided_at_reaches_client_outcomes(self):
        system = self.build(2)
        outcome = system.run_workload(self.conflict_free_specs(system, 4))
        decided = [o.decided_at for o in outcome.outcomes if o.committed]
        assert decided and all(t is not None and t > 0 for t in decided)
        # Decision stamps are block-end times on the shared timeline, so they
        # never exceed the run's makespan.
        assert max(decided) <= system.sim.makespan
