"""End-to-end crash recovery inside the scaled multi-coordinator deployment.

The acceptance scenario of the recovery subsystem: in a
:class:`ScaledFidesSystem` run, a group member crashes mid-round, the round
fails and releases its state, other groups keep committing (the ordered
stream keeps flowing while the crashed server misses deliveries), the server
recovers from its latest checkpoint via peer catch-up -- rejecting one
tampered state response along the way -- rejoins, and the workload
completes with all servers holding identical, auditor-clean logs.
"""

from __future__ import annotations


from repro.server.faults import CrashFault, FaultPolicy


class TamperCatchupFault(FaultPolicy):
    """Malicious catch-up peer: flips one write value in the served range."""

    name = "tamper-catchup"
    tampered = False

    def tamper_state_response(self, blocks):
        if not blocks:
            return blocks
        doctored = [dict(block) for block in blocks]
        body = dict(doctored[0]["body"])
        transactions = [dict(txn) for txn in body["transactions"]]
        for index, txn in enumerate(transactions):
            if txn["write_set"]:
                write_set = [dict(entry) for entry in txn["write_set"]]
                write_set[0]["new_value"] = 424_242
                txn = dict(txn)
                txn["write_set"] = write_set
                transactions[index] = txn
                self.tampered = True
                break
        body["transactions"] = transactions
        doctored[0] = dict(doctored[0])
        doctored[0]["body"] = body
        return doctored


class TestScaledCrashRecoveryEndToEnd:
    def test_full_scenario(self, make_scaled_system, workload_factory):
        system = make_scaled_system(num_servers=4, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=2, window=2, seed=13)

        # Phase 1: healthy traffic, then a checkpoint truncates every log.
        first = system.run_workload(workload.generate(8))
        assert first.committed == 8
        checkpoint = system.create_checkpoint()
        assert all(
            server.log.base_height == checkpoint.height + 1
            for server in system.servers.values()
        )

        # Phase 2: a group member crashes mid-round (vote phase).
        system.inject_fault("s3", CrashFault(phase="vote"))
        second = system.run_workload(workload.generate(10))
        assert "s3" in system.crashed_servers()
        assert second.failed > 0
        # Phase 2b: with s3 down, groups that do not contain it keep
        # committing -- this is the catch-up gap recovery must fill.
        gap = system.run_workload(workload.generate(10))
        assert gap.committed > 0
        # The failed round observed s3 as unreachable, never as malicious.
        unreachable_refusals = [
            refusal
            for coordinator in system._coordinators()
            for result in coordinator.results
            for refusal in result.refusals
            if refusal.get("unreachable")
        ]
        assert any(r.get("server_id") == "s3" for r in unreachable_refusals)
        # Failed rounds released their cohort state (ROUND_FAILED worked).
        for server_id in ("s0", "s1", "s2"):
            assert system.servers[server_id].commitment.pending_round_count() == 0

        # Phase 3: recovery from the latest checkpoint via peer catch-up,
        # with the first consulted peer serving tampered blocks.
        tamperer = TamperCatchupFault()
        system.inject_fault("s1", tamperer)
        result = system.recover_server("s3", peer_order=["s1", "s0", "s2"])
        assert tamperer.tampered, "the tampered response was never exercised"
        assert result.rejected_peers == ("s1",)
        assert result.served_by == "s0"
        assert result.from_checkpoint_height == checkpoint.height
        assert result.fetched_blocks > 0
        assert not system.crashed_servers()
        system.inject_fault("s1", FaultPolicy())  # back to honest

        # Phase 4: the rejoined server participates in new rounds.  (A
        # workload-level OCC abort is possible -- the generator's
        # conflict-free window does not span run_workload calls -- but
        # nothing may *fail*: every server is reachable again.)
        third = system.run_workload(workload.generate(8))
        assert third.failed == 0
        assert third.committed >= 6

        # All servers hold identical logs...
        heights = {server.log.height for server in system.servers.values()}
        heads = {server.log.head_hash for server in system.servers.values()}
        assert len(heights) == 1 and len(heads) == 1
        # ... every server (including the recovered one) appended blocks past
        # the crash point...
        assert system.servers["s3"].log.height > result.restored_blocks
        # ... and the auditor -- checkpoint-aware -- finds nothing to report.
        report = system.audit()
        assert report.ok, report.summary()
        assert report.reference_log_length == system.servers["s0"].log.height

    def test_crashed_server_misses_ordered_deliveries_not_the_stream(
        self, make_scaled_system, workload_factory
    ):
        """While a server is down the ordered stream keeps flowing; its gap
        is exactly the deliveries it missed, which catch-up then fills."""
        system = make_scaled_system(num_servers=4, txns_per_block=2)
        workload = workload_factory(system, ops_per_txn=2, window=2, seed=21)
        assert system.run_workload(workload.generate(6)).committed == 6
        system.crash_server("s3")
        before = len(system.delivery_failures)
        result = system.run_workload(workload.generate(6))
        assert result.committed > 0
        missed = [
            failure
            for failure in system.delivery_failures[before:]
            if failure.get("unreachable") and failure.get("server_id") == "s3"
        ]
        assert len(missed) > 0
        recovery = system.recover_server("s3")
        assert recovery.fetched_blocks == len(missed)
        assert system.servers["s3"].log.height == system.servers["s0"].log.height
        assert system.audit().ok
