"""Coordinator failover end to end: crash paths, the view change, recovery.

The view-change protocol (DESIGN.md section 10) turns a dead or Byzantine
coordinator from a permanent liveness loss into a bounded one: surviving
cohorts keep the rounds the coordinator left armed, the next-smallest live
member solicits frontier certificates and stalled rounds, and re-proposes
them at the new view.  These suites drive the whole story through the public
deployment API -- classic and scaled TFCommit plus the trusted 2PC baseline
-- and pin the crash-path bugfixes that ride along: the synthesised
unreachable response in 2PC's tally, the equivocation exchange surviving a
mid-challenge cohort crash, and the round-timeout charge for silent peers.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.tfcommit import ROUND_TIMEOUT_S
from repro.core.viewchange import (
    already_committed,
    elect_successor,
    verify_certificate,
)
from repro.server.faults import CrashFault, EquivocatingCoordinatorFault
from repro.txn.operations import ReadOp, WriteOp


def _assert_no_round_state(system):
    for server_id, server in system.servers.items():
        assert server.commitment.pending_round_count() == 0, server_id


def _strand_round(system, item, value=9):
    """Crash the coordinator mid-vote, stranding one armed round on cohorts."""
    system.inject_fault("s0", CrashFault(phase="vote"))
    outcome = system.run_transaction([WriteOp(item, value)])
    assert outcome.status == "failed"
    assert "s0" in system.crashed_servers()
    return outcome


class TestClassicFailover:
    def test_coordinator_crash_strands_the_round_on_cohorts(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        _strand_round(small_system, item)
        result = small_system.coordinator.results[-1]
        assert result.status == "failed"
        assert any(
            r.get("unreachable") and r.get("server_id") == "s0"
            for r in result.refusals
        )
        # No ROUND_FAILED went out on the dead coordinator's behalf: the
        # armed round state is exactly what the view change collects.
        for cohort in ("s1", "s2"):
            assert small_system.servers[cohort].commitment.pending_round_count() == 1

    def test_view_change_reproposes_the_stalled_round(self, small_system):
        item_a = small_system.shard_map.items_of("s1")[0]
        item_b = small_system.shard_map.items_of("s2")[0]
        assert small_system.run_transaction([WriteOp(item_a, 1)]).committed
        _strand_round(small_system, item_b, value=9)
        assert small_system.recover_server("s0").caught_up

        outcome = small_system.fail_over(reason="round timer expired")
        assert outcome.deposed == "s0"
        assert outcome.successor == "s1"
        assert outcome.new_view == 1
        # Both surviving cohorts certified the pre-crash frontier.
        assert sorted(outcome.certificates) == ["s1", "s2"]
        assert outcome.rejected_certificates == []
        assert outcome.frontier_height == 1
        assert len(outcome.stalled_rounds) == 1

        # The re-proposal committed the stranded write on every server
        # (including the recovered, now-deposed, s0) and released all state.
        assert small_system.log_heights() == {"s0": 2, "s1": 2, "s2": 2}
        assert small_system.server("s2").store.read(item_b).value == 9
        _assert_no_round_state(small_system)
        report = small_system.audit()
        assert report.ok, report.summary()

    def test_cluster_commits_under_the_successor(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        _strand_round(small_system, item)
        assert small_system.recover_server("s0").caught_up
        small_system.fail_over()

        assert small_system.coordinator_id == "s1"
        assert small_system.deposed_servers() == frozenset({"s0"})
        post = small_system.run_transaction([ReadOp(item), WriteOp(item, 10)])
        assert post.committed
        # The new block was proposed -- and co-signed -- at the new view.
        assert small_system.coordinator.results[-1].block.view == 1
        assert small_system.server("s1").store.read(item).value == 10

    def test_deposed_coordinator_is_refused_by_the_view_gate(self, small_system):
        small_system.fail_over()  # a healthy coordinator can still be deposed
        assert small_system.view_changes[-1].stalled_rounds == []

        # Route a client back to the deposed coordinator: its view-0 proposal
        # must be refused by every cohort that installed the new view, so two
        # coordinators can never drive rounds concurrently.
        small_system.coordinator_id = "s0"
        item = small_system.shard_map.items_of("s1")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        zombie = small_system._retired_coordinators[-1]
        result = zombie.results[-1]
        assert result.status == "failed"
        assert any(
            "below this cohort's current view" in r.get("reason", "")
            for r in result.refusals
        )
        assert all(height == 0 for height in small_system.log_heights().values())

    def test_failover_of_a_non_coordinator_is_rejected(self, small_system):
        with pytest.raises(ConfigurationError):
            small_system.fail_over("s1")

    def test_second_failover_elects_the_next_smallest_member(self, small_system):
        small_system.fail_over()
        outcome = small_system.fail_over()
        assert outcome.deposed == "s1"
        assert outcome.successor == "s2"
        assert outcome.new_view == 2
        item = small_system.shard_map.items_of("s0")[0]
        assert small_system.run_transaction([WriteOp(item, 3)]).committed
        assert small_system.coordinator.results[-1].block.view == 2


class TestScaledFailover:
    def test_group_leader_crash_is_failed_over(self, make_scaled_system):
        system = make_scaled_system(txns_per_block=1)
        item_a = system.shard_map.items_of("s0")[0]
        item_b = system.shard_map.items_of("s1")[0]
        item_c = system.shard_map.items_of("s2")[0]
        item_d = system.shard_map.items_of("s3")[0]
        assert system.run_transaction([WriteOp(item_a, 1), WriteOp(item_b, 2)]).committed

        system.inject_fault("s0", CrashFault(phase="vote"))
        stalled = system.run_transaction([WriteOp(item_a, 3), WriteOp(item_b, 4)])
        assert stalled.status == "failed"
        assert "s0" in system.crashed_servers()
        # A group disjoint from the dead leader keeps committing: the outage
        # is confined to the groups s0 led.
        assert system.run_transaction([WriteOp(item_c, 5), WriteOp(item_d, 6)]).committed

        assert system.recover_server("s0").caught_up
        outcome = system.fail_over("s0")
        assert outcome.successor == "s1"
        assert outcome.new_view == 1
        assert len(outcome.stalled_rounds) == 1
        assert "s0" in system.deposed_servers()

        # The re-proposed round committed through the re-formed group and the
        # ordered stream delivered it everywhere, the recovered s0 included.
        assert system.server("s1").store.read(item_b).value == 4
        assert len(set(system.log_heights().values())) == 1

        post = system.run_transaction([WriteOp(item_a, 7), WriteOp(item_b, 8)])
        assert post.committed
        assert system.server("s1").store.read(item_b).value == 8
        _assert_no_round_state(system)
        report = system.audit()
        assert report.ok, report.summary()

    def test_scaled_failover_requires_naming_the_leader(self, make_scaled_system):
        with pytest.raises(ConfigurationError):
            make_scaled_system().fail_over()


class TestTwoPhaseCommitCrashPaths:
    def test_cohort_crash_during_prepare_fails_the_round_cleanly(self, twopc_system):
        # Regression: a crashed cohort's synthesised response carries no vote
        # fields, and the tally used to KeyError on ``vote["involved"]``
        # instead of failing the round like TFCommit's phase-1 check.
        twopc_system.inject_fault("s2", CrashFault(phase="vote"))
        item = twopc_system.shard_map.items_of("s1")[0]
        outcome = twopc_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        result = twopc_system.coordinator.results[-1]
        assert any(
            r.get("unreachable") and r.get("server_id") == "s2"
            for r in result.refusals
        )
        # The live coordinator told the surviving cohorts to release their
        # prepared state; nothing was committed anywhere (a crashed server
        # has no log to inspect: its volatile state died with it).
        for cohort in ("s0", "s1"):
            assert twopc_system.servers[cohort].commitment.pending_round_count() == 0
            assert twopc_system.servers[cohort].log.height == 0

    def test_coordinator_crash_is_failed_over_in_trusted_mode(self, twopc_system):
        item = twopc_system.shard_map.items_of("s1")[0]
        _strand_round(twopc_system, item)
        # 2PC cohorts arm the same round timer as TFCommit's vote phase.
        for cohort in ("s1", "s2"):
            assert twopc_system.servers[cohort].commitment.pending_round_count() == 1

        assert twopc_system.recover_server("s0").caught_up
        outcome = twopc_system.fail_over()
        assert outcome.successor == "s1"
        # 2PC blocks carry no collective signature, so certificates are
        # strict-decoded but not co-sign-verified (trusted-infrastructure
        # baseline) -- they must still all decode.
        assert sorted(outcome.certificates) == ["s1", "s2"]
        assert outcome.rejected_certificates == []
        assert len(outcome.stalled_rounds) == 1

        assert all(height == 1 for height in twopc_system.log_heights().values())
        assert twopc_system.server("s1").store.read(item).value == 9
        assert twopc_system.run_transaction([WriteOp(item, 10)]).committed
        _assert_no_round_state(twopc_system)


class TestCrashDuringEquivocation:
    def test_cohort_crash_mid_equivocation_is_a_refusal_not_a_crash(self, small_system):
        # Regression: the split-payload challenge used to bypass
        # timed_exchange, so a cohort crashing while handling its challenge
        # raised UnreachableError straight through the coordinator instead of
        # becoming a synthesised refusal.
        small_system.inject_fault("s0", EquivocatingCoordinatorFault())
        small_system.inject_fault("s2", CrashFault(phase="challenge"))
        item = small_system.shard_map.items_of("s1")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        assert "s2" in small_system.crashed_servers()
        result = small_system.coordinator.results[-1]
        assert any(
            r.get("unreachable") and r.get("server_id") == "s2"
            for r in result.refusals
        )
        # Atomicity held, and the surviving cohort released its round state.
        for live in ("s0", "s1"):
            assert small_system.servers[live].log.height == 0
        assert small_system.servers["s1"].commitment.pending_round_count() == 0

    def test_equivocating_coordinator_is_deposed_and_cluster_recovers(self, small_system):
        small_system.inject_fault("s0", EquivocatingCoordinatorFault())
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"

        # The failed round released its state, so the view change finds
        # nothing to re-propose -- deposing here is about fencing, not replay.
        outcome = small_system.fail_over(reason="equivocation detected")
        assert outcome.successor == "s1"
        assert outcome.stalled_rounds == []

        # s0 keeps its fault policy, but the equivocation hook only fires on
        # the coordinator role it no longer holds: the cluster commits again.
        post = small_system.run_transaction([ReadOp(item), WriteOp(item, 10)])
        assert post.committed
        assert small_system.coordinator.results[-1].block.view == 1
        assert small_system.server("s1").store.read(item).value == 10


class TestUnreachableTimeoutAccounting:
    """Regression: a silent peer used to charge a phantom RTT to the phase.

    No reply ever travels from a dead server, so the sender waits out the
    round timer; charging ``outbound + 0 + inbound`` modelled a round trip no
    machine experienced and made crashed-cohort rounds look *faster* than
    healthy ones.
    """

    def test_tfcommit_get_vote_charges_the_round_timeout(self, small_system):
        small_system.crash_server("s2")
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        timing = small_system.coordinator.results[-1].timing
        assert timing.phases["get_vote"] == pytest.approx(ROUND_TIMEOUT_S)
        # The wait is pure network idle time: it counts toward network time,
        # and no compute is attributed to the dead peer.
        assert timing.network_time >= ROUND_TIMEOUT_S

    def test_twopc_prepare_charges_the_round_timeout(self, twopc_system):
        twopc_system.crash_server("s2")
        item = twopc_system.shard_map.items_of("s1")[0]
        assert twopc_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        timing = twopc_system.coordinator.results[-1].timing
        assert timing.phases["prepare"] == pytest.approx(ROUND_TIMEOUT_S)


class TestViewChangeUnits:
    def test_elect_successor_picks_the_next_smallest_live_member(self):
        assert elect_successor(["s2", "s0", "s1"], ["s0"]) == "s1"
        assert elect_successor(["s0", "s1", "s2"], ["s0", "s1"]) == "s2"

    def test_elect_successor_with_no_candidates_raises(self):
        with pytest.raises(ProtocolError):
            elect_successor(["s0", "s1"], ["s0", "s1"])

    def test_certificates_must_be_backed_by_a_cosigned_head(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).committed
        log = small_system.server("s1").log
        public_keys = small_system.network.public_key_directory()
        honest = {
            "server_id": "s1",
            "view": 0,
            "height": log.height,
            "head_hash": log.head_hash,
            "head": log.last_block().to_wire(),
        }
        cert = verify_certificate(honest, public_keys, "s1")
        assert cert is not None and cert.height == 1

        # A claimed frontier whose co-signed head does not hash to it is a
        # lie the successor discards.
        assert verify_certificate(dict(honest, head_hash=b"\x00" * 32), public_keys, "s1") is None
        # A non-empty frontier with no head proves nothing.
        assert verify_certificate(dict(honest, head=None), public_keys, "s1") is None
        # A certificate relayed under the wrong cohort id is discarded too.
        assert verify_certificate(honest, public_keys, "s2") is None

    def test_already_committed_guards_reproposals(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).committed
        log = small_system.server("s1").log
        # A stalled-round report for a block whose decision did land is a
        # ghost: the successor must not run the round again.
        assert already_committed(log, log.last_block())
