"""End-to-end tests of the TFCommit protocol on an honest cluster."""

from __future__ import annotations


from repro.crypto.cosi import cosi_verify
from repro.txn.operations import ReadOp, WriteOp


class TestHonestCommit:
    def test_single_transaction_commits_everywhere(self, small_system):
        # Touch one item per shard so every server is involved.
        per_server_items = [small_system.shard_map.items_of(sid)[0] for sid in small_system.server_ids]
        ops = [WriteOp(item, 11) for item in per_server_items]
        outcome = small_system.run_transaction(ops)
        assert outcome.committed
        for server_id in small_system.server_ids:
            server = small_system.server(server_id)
            assert len(server.log) == 1
            local_item = small_system.shard_map.items_of(server_id)[0]
            assert server.store.read(local_item).value == 11

    def test_block_carries_valid_cosign_from_all_servers(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item, 5)])
        block = small_system.server("s0").log[0]
        assert block.cosign is not None
        assert set(block.cosign.signer_ids) == set(small_system.server_ids)
        assert cosi_verify(
            block.cosign, block.body_digest(), small_system.network.public_key_directory()
        )

    def test_logs_are_identical_across_servers(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=5)
        result = small_system.run_workload(workload.generate(6))
        assert result.committed == 6
        hashes = {
            server_id: tuple(block.block_hash() for block in server.log)
            for server_id, server in small_system.servers.items()
        }
        assert len(set(hashes.values())) == 1

    def test_block_records_roots_of_involved_servers(self, small_system):
        item_s1 = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([ReadOp(item_s1), WriteOp(item_s1, 3)])
        block = small_system.server("s0").log[0]
        assert "s1" in block.roots
        # Only s1 stores the touched item, so only s1's root is required.
        assert set(block.roots) == {"s1"}

    def test_datastore_root_matches_cosigned_root_after_commit(self, small_system):
        item_s1 = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([WriteOp(item_s1, 3)])
        block = small_system.server("s0").log[0]
        assert small_system.server("s1").store.merkle_root() == block.roots["s1"]

    def test_timing_breakdown_has_all_phases(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item, 5)])
        timing = small_system.coordinator.results[-1].timing
        assert {"get_vote", "challenge", "decision", "aggregate"} <= set(timing.phases)
        assert timing.total > 0
        assert timing.num_txns == 1

    def test_read_only_transaction_commits(self, small_system):
        item = small_system.shard_map.all_items()[0]
        outcome = small_system.run_transaction([ReadOp(item)])
        assert outcome.committed


class TestAbortPath:
    def test_conflicting_transaction_aborts_and_is_logged(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 1)])

        # Build a stale transaction: read before the first commit, commit after.
        client = small_system.client(1)
        session = client.begin()
        client.read(session, item)
        small_system.run_transaction([ReadOp(item), WriteOp(item, 2)], client_index=0)
        outcome = client.commit(session)
        assert outcome.status == "aborted"
        # The abort is co-signed and appended to the log like any block.
        abort_blocks = [b for b in small_system.server("s0").log if not b.is_commit]
        assert len(abort_blocks) == 1
        assert abort_blocks[0].cosign is not None

    def test_aborted_transaction_does_not_change_data(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 1)])
        client = small_system.client(1)
        session = client.begin()
        client.read(session, item)
        small_system.run_transaction([ReadOp(item), WriteOp(item, 2)])
        client.write(session, item, 999)
        outcome = client.commit(session)
        assert outcome.status == "aborted"
        assert small_system.server("s0").store.read(item).value == 2

    def test_stale_commit_timestamp_is_ignored(self, small_system):
        from repro.common.timestamps import Timestamp
        from repro.net.message import Envelope, MessageType
        from repro.txn.transaction import Transaction, WriteSetEntry

        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 1)])
        # Hand-craft an end_transaction with a timestamp below the last commit.
        stale_txn = Transaction(
            txn_id="stale",
            client_id="c0",
            commit_ts=Timestamp(0, "c0"),
            read_set=[],
            write_set=[WriteSetEntry(item, 123)],
        )
        envelope = small_system.network.sign_envelope(
            Envelope("c0", "s0", MessageType.END_TRANSACTION, {"transaction": stale_txn})
        )
        response = small_system.network.send(
            "c0", "s0", MessageType.END_TRANSACTION, envelope.payload, presigned=envelope
        )
        assert response["results"]["stale"]["status"] == "failed"
        assert small_system.server("s0").store.read(item).value == 1
