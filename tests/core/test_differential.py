"""Differential testing: TFCommit and the 2PC baseline must agree.

TFCommit adds collective signing and Merkle commitments *on top of* the same
OCC validation and batching as the trusted 2PC baseline (Section 6.1): under
honest execution the cryptography must not change any transactional outcome.
The same multi-client workload driven through both coordinators must commit
and abort the same transactions and leave every shard in the same final
state.
"""

from __future__ import annotations

import pytest

from repro.workload.ycsb import YcsbWorkload


def drive(system, num_requests, num_clients, conflict_free_window=0, seed=5):
    workload = YcsbWorkload(
        item_ids=system.shard_map.all_items(),
        ops_per_txn=2,
        conflict_free_window=conflict_free_window,
        seed=seed,
    )
    return system.run_workload(workload.generate(num_requests), num_clients=num_clients)


def outcome_map(result):
    return {outcome.txn_id: outcome.status for outcome in result.outcomes}


def final_state(system):
    return {server_id: server.snapshot() for server_id, server in system.servers.items()}


class TestProtocolDifferential:
    @pytest.mark.parametrize("num_clients", [1, 3])
    def test_conflict_free_workload_matches(self, make_system, num_clients):
        tf = make_system(protocol="tfcommit")
        two_pc = make_system(protocol="2pc")
        result_tf = drive(tf, 12, num_clients, conflict_free_window=4)
        result_2pc = drive(two_pc, 12, num_clients, conflict_free_window=4)
        assert outcome_map(result_tf) == outcome_map(result_2pc)
        assert result_tf.committed == 12
        assert final_state(tf) == final_state(two_pc)

    def test_conflict_heavy_workload_matches(self, make_system):
        """Aborts and stale retries must fall identically under both protocols."""
        tf = make_system(protocol="tfcommit", items_per_shard=4)
        two_pc = make_system(protocol="2pc", items_per_shard=4)
        result_tf = drive(tf, 16, 4, seed=13)
        result_2pc = drive(two_pc, 16, 4, seed=13)
        assert outcome_map(result_tf) == outcome_map(result_2pc)
        assert result_tf.committed == result_2pc.committed
        assert result_tf.aborted == result_2pc.aborted
        assert final_state(tf) == final_state(two_pc)

    def test_logs_agree_on_decisions(self, make_system):
        tf = make_system(protocol="tfcommit")
        two_pc = make_system(protocol="2pc")
        drive(tf, 8, 2, conflict_free_window=4)
        drive(two_pc, 8, 2, conflict_free_window=4)
        decisions_tf = [block.decision for block in tf.server("s0").log]
        decisions_2pc = [block.decision for block in two_pc.server("s0").log]
        assert decisions_tf == decisions_2pc
        # Same transactions in the same blocks, in the same order.
        txns_tf = [[t.txn_id for t in block.transactions] for block in tf.server("s0").log]
        txns_2pc = [[t.txn_id for t in block.transactions] for block in two_pc.server("s0").log]
        assert txns_tf == txns_2pc
