"""The ``Sequencer`` API and the sharded ordering service (DESIGN.md §13).

Three layers of coverage:

- :class:`OrderingShardMap` unit semantics (contiguous server cuts, clamping,
  unknown-server rejection);
- :class:`ShardedOrderingService` driven directly with hand-built co-signed
  blocks -- lane buffering, epoch merges, anchor sealing, per-shard flush
  semantics, and a random-interleaving property sweep;
- the full scaled deployment running over ``sharded_sequencer`` -- identical
  replicated logs, clean anchor-verifying audits, coordinator failover, and
  the bit-identical regression pinning ``single_sequencer`` to the classic
  ``OrderingService`` behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.common.timestamps import Timestamp
from repro.core.grouping import ServerGroup
from repro.core.ordserv import OrderingService
from repro.core.sequencing import (
    OrderingShardMap,
    Sequencer,
    ShardedOrderingService,
    sharded_sequencer,
    single_sequencer,
)
from repro.ledger.block import BlockDecision, make_partial_block
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry
from repro.workload.ycsb import PartitionedWorkload


# -- direct-drive helpers --------------------------------------------------------------

SERVERS = tuple(f"s{i}" for i in range(4))
ITEMS = {sid: [f"{sid}-item-{j}" for j in range(4)] for sid in SERVERS}


def make_map(num_shards: int = 2, servers=SERVERS) -> OrderingShardMap:
    return OrderingShardMap.for_servers(servers, num_shards)


def publish(service, counter: int, members, items=None):
    """Hand the service one co-signed block touching ``members``' items."""
    members = sorted(members)
    items = items or [ITEMS[sid][counter % len(ITEMS[sid])] for sid in members]
    zero = Timestamp.zero()
    txn = Transaction(
        txn_id=f"t{counter}",
        client_id="c0",
        commit_ts=Timestamp(counter + 1, "c0"),
        read_set=[ReadSetEntry(item, 0, zero, zero) for item in items],
        write_set=[WriteSetEntry(item, counter) for item in items],
    )
    block = make_partial_block(0, [txn], b"\x00" * 32).with_decision(
        BlockDecision.COMMIT, {sid: b"\x01" * 32 for sid in members}
    )
    group = ServerGroup(members=frozenset(members), coordinator=min(members))
    return service.publish(block, group), block, group


def stream_is_gapless_chain(service) -> bool:
    previous = None
    for ordered in service.ordered_blocks:
        if ordered.global_height != (0 if previous is None else previous.global_height + 1):
            return False
        if previous is not None and ordered.block.previous_hash != previous.block.block_hash():
            return False
        previous = ordered
    return True


def anchors_chain_and_cover(service) -> bool:
    anchors = service.epoch_anchors
    expected_start = 0
    previous_hash = None
    for anchor in anchors:
        if anchor.start_height != expected_start:
            return False
        if previous_hash is not None and anchor.previous != previous_hash:
            return False
        expected_start = anchor.end_height
        previous_hash = anchor.anchor_hash()
    return not anchors or anchors[-1].end_height <= service.stream_length


class TestOrderingShardMap:
    def test_contiguous_cut_over_sorted_servers(self):
        shard_map = make_map(2)
        assert [shard_map.shard_of(sid) for sid in SERVERS] == [0, 0, 1, 1]
        assert shard_map.num_shards == 2

    def test_shards_of_dedups_and_sorts(self):
        shard_map = make_map(2)
        assert shard_map.shards_of(["s3", "s0", "s1"]) == (0, 1)
        assert shard_map.shards_of(["s0", "s1"]) == (0,)

    def test_shard_count_clamps_to_server_count(self):
        assert make_map(99).num_shards == len(SERVERS)
        assert make_map(0).num_shards == 1
        assert make_map(-3).num_shards == 1

    def test_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            make_map(2).shard_of("s99")

    def test_empty_server_set_rejected(self):
        with pytest.raises(ConfigurationError):
            OrderingShardMap.for_servers([], 2)


class TestShardedServiceLanes:
    def test_single_shard_blocks_float_until_flush(self):
        service = ShardedOrderingService(make_map(2))
        publish(service, 0, ["s0"])
        publish(service, 1, ["s2"])
        assert service.pending_count == 2
        assert service.stream_length == 0
        service.flush()
        assert service.pending_count == 0
        assert service.stream_length == 2
        # The trailing flush seals exactly one epoch covering the stream.
        assert len(service.epoch_anchors) == 1
        assert service.epoch_anchors[0].end_height == 2

    def test_cross_shard_block_merges_lanes_and_seals_an_anchor(self):
        service = ShardedOrderingService(make_map(2))
        publish(service, 0, ["s0"])
        publish(service, 1, ["s2"])
        publish(service, 2, ["s1", "s3"])  # spans both shards
        assert service.pending_count == 0
        assert service.stream_length == 3
        # The cross-shard block lands last: both lanes drained first.
        assert service.ordered_blocks[-1].shards == (0, 1)
        [anchor] = service.epoch_anchors
        assert (anchor.start_height, anchor.end_height) == (0, 3)
        assert stream_is_gapless_chain(service)
        assert service.verify_shard_chains()

    def test_publish_is_idempotent_per_round_identity(self):
        service = ShardedOrderingService(make_map(2))
        ok, block, group = publish(service, 0, ["s0"])
        assert ok
        assert service.seen(block, group)
        assert not service.publish(block, group)
        assert service.pending_count == 1

    def test_capacity_drain_lands_prefix_without_an_anchor(self):
        service = ShardedOrderingService(make_map(2), epoch_max_blocks=2)
        publish(service, 0, ["s0"])
        publish(service, 1, ["s1"])
        # The lane hit capacity: blocks landed, but no merge happened, so
        # no epoch anchor was sealed (anchors mark merges, not pressure).
        assert service.pending_count == 0
        assert service.stream_length == 2
        assert service.epoch_anchors == []

    def test_flush_conflicting_drains_only_the_overlapping_lane_prefix(self):
        service = ShardedOrderingService(make_map(2))
        publish(service, 0, ["s0"])  # lane 0, before the overlap
        publish(service, 1, ["s1"])  # lane 0, the overlap
        publish(service, 2, ["s0"])  # lane 0, after the overlap: keeps floating
        publish(service, 3, ["s2"])  # lane 1: untouched
        conflicting = ServerGroup(members=frozenset({"s1"}), coordinator="s1")
        service.flush_conflicting(conflicting)
        # Prefix through the last overlapping block landed, in lane order.
        assert service.stream_length == 2
        assert [o.block.transactions[0].txn_id for o in service.ordered_blocks] == ["t0", "t1"]
        # The post-overlap block and the other lane still float, unanchored.
        assert service.pending_count == 2
        assert service.epoch_anchors == []

    def test_flush_conflicting_ignores_groups_of_other_shards(self):
        service = ShardedOrderingService(make_map(2))
        publish(service, 0, ["s0"])
        other_shard = ServerGroup(members=frozenset({"s3"}), coordinator="s3")
        service.flush_conflicting(other_shard)
        assert service.pending_count == 1
        assert service.stream_length == 0


class TestShardedServiceProperty:
    """Random publish interleavings across shard layouts: the finalized
    stream must always be a gapless dependency-respecting hash chain whose
    per-shard chains and epoch anchors replay from the stream itself."""

    @staticmethod
    def _random_run(rng: random.Random, num_shards: int):
        service = ShardedOrderingService(
            make_map(num_shards), epoch_max_blocks=rng.choice([1, 2, 4, 32])
        )
        for counter in range(rng.randint(5, 14)):
            members = rng.sample(SERVERS, rng.randint(1, 3))
            publish(service, counter, members)
            if rng.random() < 0.15:
                lucky = rng.choice(SERVERS)
                service.flush_conflicting(
                    ServerGroup(members=frozenset({lucky}), coordinator=lucky)
                )
        service.flush()
        return service

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_random_interleavings_keep_every_invariant(self, num_shards):
        rng = random.Random(7000 + num_shards)
        for _ in range(12):
            service = self._random_run(rng, num_shards)
            assert service.verify_dependency_order()
            assert service.verify_shard_chains()
            assert stream_is_gapless_chain(service)
            assert anchors_chain_and_cover(service)
            assert service.pending_count == 0


# -- full-deployment coverage ----------------------------------------------------------


def partitioned_specs(system, count: int, locality: float = 1.0, seed: int = 3):
    server_ids = list(system.config.server_ids)
    partitions = []
    for start in range(0, len(server_ids), 2):
        items = []
        for server_id in server_ids[start : start + 2]:
            items.extend(system.shard_map.items_of(server_id))
        partitions.append(items)
    workload = PartitionedWorkload(
        partitions=partitions,
        ops_per_txn=2,
        locality=locality,
        conflict_free_window=count,
        seed=seed,
    )
    return workload.generate(count)


class TestShardedDeployment:
    def test_sequencer_protocol_is_satisfied_by_both_implementations(self):
        assert isinstance(OrderingService(), Sequencer)
        assert isinstance(ShardedOrderingService(make_map(2)), Sequencer)

    def test_commits_replicate_one_global_log(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, sequencer=sharded_sequencer(2))
        result = system.run_workload(
            partitioned_specs(system, 12, locality=0.8), num_clients=2
        )
        assert result.committed == 12
        chains = {
            server_id: tuple(block.block_hash() for block in server.log)
            for server_id, server in system.servers.items()
        }
        assert len(set(chains.values())) == 1
        assert system.ordering.verify_dependency_order()
        assert system.ordering.verify_shard_chains()

    def test_audit_verifies_the_anchor_chain(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, sequencer=sharded_sequencer(2))
        system.run_workload(partitioned_specs(system, 10, locality=0.7), num_clients=2)
        assert len(system.ordering.epoch_anchors) >= 1
        report = system.audit()
        assert report.ok

    def test_fail_over_with_a_sharded_sequencer(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, sequencer=sharded_sequencer(2))
        system.run_workload(partitioned_specs(system, 6), num_clients=2)
        leaders = sorted(system.active_group_coordinators)
        outcome = system.fail_over(leaders[0], reason="test")
        assert outcome.new_view >= 1
        # The deployment keeps committing after the view change, and the
        # stream stays dependency-ordered across the failover flush.
        result = system.run_workload(partitioned_specs(system, 6, seed=5), num_clients=2)
        assert result.committed == 6
        assert system.ordering.verify_dependency_order()
        assert system.audit().ok


class TestSingleSequencerRegression:
    """``sequencer=single_sequencer(w)`` must reproduce the default
    (reorder-window) deployment bit for bit on the same seed."""

    @staticmethod
    def _trace(system, count=10):
        """The deterministic part of a run: outcomes, stream, replica logs.

        (Virtual end-time is excluded: the default compute model charges
        *measured* wall time, which is not seed-reproducible.)
        """
        result = system.run_workload(
            partitioned_specs(system, count, locality=0.8), num_clients=2
        )
        return (
            result.committed,
            tuple(o.block.block_hash() for o in system.ordering.ordered_blocks),
            {
                server_id: tuple(block.block_hash() for block in server.log)
                for server_id, server in system.servers.items()
            },
        )

    @pytest.mark.parametrize("window", [0, 2])
    def test_same_seed_traces_are_bit_identical(self, make_scaled_system, window):
        default = make_scaled_system(num_servers=4, reorder_window=window)
        injected = make_scaled_system(
            num_servers=4, sequencer=single_sequencer(window)
        )
        assert self._trace(default) == self._trace(injected)
        assert isinstance(injected.ordering, OrderingService)
