"""Tests for the multi-client concurrent workload engine.

The paper's evaluation (Section 6) drives every experiment with many
concurrent clients; ``FidesSystem.run_workload(num_clients=...)`` round-robins
transaction specs across distinct client sessions, each with its own Lamport
clock and its own queued-outcome resolution.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.workload.ycsb import YcsbWorkload


def conflict_free_specs(workload_factory, system, count: int, seed: int = 2):
    """Conflict-free specs via the shared workload_factory fixture."""
    return workload_factory(system, ops_per_txn=2, window=4, seed=seed).generate(count)


class TestMultiClientWorkload:
    def test_rejects_zero_clients(self, make_system, workload_factory):
        system = make_system()
        with pytest.raises(ConfigurationError):
            system.run_workload([], num_clients=0)

    def test_multi_client_commits_match_single_client(self, make_system, workload_factory):
        single = make_system()
        multi = make_system()
        specs = conflict_free_specs(workload_factory, single, 12)
        baseline = single.run_workload(specs)
        result = multi.run_workload(conflict_free_specs(workload_factory, multi, 12), num_clients=4)
        assert result.committed == baseline.committed == 12
        assert result.aborted == baseline.aborted == 0

    def test_transactions_round_robin_across_sessions(self, make_system, workload_factory):
        system = make_system()
        result = system.run_workload(conflict_free_specs(workload_factory, system, 8), num_clients=4)
        issuing_clients = {outcome.txn_id.split("-txn-")[0] for outcome in result.outcomes}
        assert issuing_clients == {"c0", "c1", "c2", "c3"}
        assert result.committed_by_client == {"c0": 2, "c1": 2, "c2": 2, "c3": 2}

    def test_per_client_timestamps_are_independent(self, make_system, workload_factory):
        system = make_system()
        system.run_workload(conflict_free_specs(workload_factory, system, 8), num_clients=4)
        # Round-robin over 4 clients: each issued 2 transactions, so each
        # client clock advanced independently rather than once per request.
        for index in range(4):
            assert system.client(index).clock.current().counter <= 4

    def test_more_clients_than_block_slots_still_commits_everything(self, make_system, workload_factory):
        # With more clients than block slots a client's clock can fall behind
        # the committed frontier; the engine retries stale-failed commits
        # with a refreshed clock instead of dropping them.
        system = make_system()  # txns_per_block=4
        result = system.run_workload(conflict_free_specs(workload_factory, system, 16), num_clients=8)
        assert result.committed == 16
        assert result.failed == 0

    def test_multi_client_run_is_deterministic(self, make_system, workload_factory):
        first = make_system()
        second = make_system()
        result_a = first.run_workload(conflict_free_specs(workload_factory, first, 12), num_clients=3)
        result_b = second.run_workload(conflict_free_specs(workload_factory, second, 12), num_clients=3)
        ids_a = [outcome.txn_id for outcome in result_a.outcomes]
        ids_b = [outcome.txn_id for outcome in result_b.outcomes]
        assert ids_a == ids_b
        blocks_a = [block.block_hash() for block in first.server("s0").log]
        blocks_b = [block.block_hash() for block in second.server("s0").log]
        assert blocks_a == blocks_b
        assert len(blocks_a) == 3

    def test_logs_identical_across_servers_under_multi_client(self, make_system, workload_factory):
        system = make_system()
        result = system.run_workload(conflict_free_specs(workload_factory, system, 12), num_clients=4)
        assert result.committed == 12
        hashes = {
            server_id: tuple(block.block_hash() for block in server.log)
            for server_id, server in system.servers.items()
        }
        assert len(set(hashes.values())) == 1

    def test_execution_state_released_after_blocks_commit(self, make_system, workload_factory):
        system = make_system()
        system.run_workload(conflict_free_specs(workload_factory, system, 12), num_clients=4)
        for server in system.servers.values():
            assert server.execution.active_transactions() == []

    def test_conflict_heavy_run_resolves_every_outcome(self, make_system, workload_factory):
        # Without a conflict-free window, batches split, blocks abort, and
        # commit timestamps go stale mid-run; every spec must still resolve
        # to exactly one terminal outcome and no execution state may leak
        # (stale-failed transactions never enter a block, so the engine
        # releases their buffered state itself).
        system = make_system()
        workload = YcsbWorkload(
            item_ids=system.shard_map.all_items()[:6], ops_per_txn=2, seed=3
        )
        result = system.run_workload(workload.generate(20), num_clients=4)
        assert len(result.outcomes) == 20
        assert result.committed + result.aborted + result.failed == 20
        for server in system.servers.values():
            assert server.execution.active_transactions() == []

    def test_empty_spec_list_drains_preexisting_pending(self, make_system, workload_factory):
        # Regression: a transaction queued outside run_workload must still be
        # flushed by a subsequent run_workload([]) call.
        from repro.txn.operations import WriteOp

        system = make_system()
        item = system.shard_map.all_items()[0]
        outcome = system.run_transaction([WriteOp(item, 7)])
        assert outcome.pending
        assert system.coordinator.pending_count == 1
        system.run_workload([])
        assert system.coordinator.pending_count == 0
        assert system.server("s0").log.height == 1

    def test_audit_clean_after_multi_client_run(self, make_system, workload_factory):
        system = make_system()
        system.run_workload(conflict_free_specs(workload_factory, system, 8), num_clients=4)
        report = system.audit()
        assert report.ok


class TestWorkloadAccounting:
    def test_second_run_workload_does_not_double_count_blocks(
        self, make_system, workload_factory
    ):
        """Regression: ``result.block_results`` used to copy the coordinator's
        *cumulative* history, so a second ``run_workload`` double-counted the
        first run's blocks in throughput/latency metrics."""
        system = make_system()
        first = system.run_workload(conflict_free_specs(workload_factory, system, 8, seed=2))
        second = system.run_workload(conflict_free_specs(workload_factory, system, 8, seed=5))
        assert len(first.block_results) == 2  # 8 txns / 4 per block
        assert len(second.block_results) == 2
        assert len(system.coordinator.results) == 4
        # The second run's metrics must cover only its own transactions.
        assert sum(r.timing.num_txns for r in second.block_results) == 8


class TestNeverFlushedRelease:
    def test_never_flushed_transactions_release_execution_state(
        self, make_system, workload_factory
    ):
        """Regression: the "never flushed" terminal path recorded a failure
        but, unlike the stale path, never released the transaction's buffered
        execution state on the servers."""
        system = make_system()
        real_flush = system.coordinator.flush

        def dropping_flush():
            # A (crashing or malicious) coordinator that silently discards
            # one queued transaction: it never enters a block, so no decision
            # broadcast will ever release its buffered execution state.
            if system.coordinator._pending:
                system.coordinator._pending.pop(0)
            return real_flush()

        system.coordinator.flush = dropping_flush
        specs = conflict_free_specs(workload_factory, system, 3)
        result = system.run_workload(specs)
        never_flushed = [o for o in result.outcomes if o.reason == "never flushed"]
        assert never_flushed
        assert len(result.outcomes) == 3
        for server in system.servers.values():
            assert server.execution.active_transactions() == []
