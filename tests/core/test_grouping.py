"""Tests for dynamic server groups (Section 4.6)."""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.core.grouping import (
    ServerGroup,
    dependency_between,
    group_for_batch,
    group_for_transaction,
)
from repro.storage.shard import build_uniform_partition
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


@pytest.fixture
def shard_map():
    _, shard_map = build_uniform_partition(SystemConfig(num_servers=4, items_per_shard=5))
    return shard_map


def make_txn(reads=(), writes=(), counter=1, txn_id="t"):
    zero = Timestamp.zero()
    return Transaction(
        txn_id=txn_id,
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(i, 0, zero, zero) for i in reads],
        write_set=[WriteSetEntry(i, 1) for i in writes],
    )


class TestServerGroup:
    def test_group_covers_accessed_servers_only(self, shard_map):
        txn = make_txn(reads=["item-00000000"], writes=["item-00000006"])
        group = group_for_transaction(txn, shard_map)
        assert group.members == frozenset({"s0", "s1"})
        assert group.coordinator == "s0"

    def test_coordinator_must_be_member(self):
        with pytest.raises(ValidationError):
            ServerGroup(members=frozenset({"s1"}), coordinator="s9")

    def test_empty_transaction_rejected(self, shard_map):
        with pytest.raises(ValidationError):
            group_for_transaction(make_txn(), shard_map)

    def test_group_for_batch_unions_members(self, shard_map):
        txns = [
            make_txn(writes=["item-00000000"], txn_id="a"),
            make_txn(writes=["item-00000015"], txn_id="b"),
        ]
        group = group_for_batch(txns, shard_map)
        assert group.members == frozenset({"s0", "s3"})

    def test_overlap(self):
        g1 = ServerGroup(frozenset({"s0", "s1"}), "s0")
        g2 = ServerGroup(frozenset({"s1", "s2"}), "s1")
        g3 = ServerGroup(frozenset({"s3"}), "s3")
        assert g1.overlaps(g2)
        assert not g1.overlaps(g3)


class TestDependencies:
    def test_write_read_dependency_detected(self):
        earlier = [make_txn(writes=["x"], counter=1)]
        later = [make_txn(reads=["x"], counter=2)]
        assert dependency_between(earlier, later)

    def test_read_write_dependency_detected(self):
        earlier = [make_txn(reads=["x"], counter=1)]
        later = [make_txn(writes=["x"], counter=2)]
        assert dependency_between(earlier, later)

    def test_disjoint_batches_independent(self):
        earlier = [make_txn(writes=["x"], counter=1)]
        later = [make_txn(writes=["y"], counter=2)]
        assert not dependency_between(earlier, later)

    def test_read_read_is_independent(self):
        earlier = [make_txn(reads=["x"], counter=1)]
        later = [make_txn(reads=["x"], counter=2)]
        assert not dependency_between(earlier, later)
