"""Tests for multi-transaction blocks and the batch builder (Section 4.6)."""

from __future__ import annotations

import pytest

from repro.common.timestamps import Timestamp
from repro.core.tfcommit import BatchBuilder
from repro.common.errors import ProtocolError
from repro.net.message import Envelope, MessageType
from repro.txn.transaction import Transaction, WriteSetEntry


def make_txn(txn_id: str, item: str, counter: int) -> Transaction:
    return Transaction(
        txn_id=txn_id,
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[],
        write_set=[WriteSetEntry(item, counter)],
    )


class TestBatchBuilder:
    def test_takes_up_to_block_size(self):
        builder = BatchBuilder(txns_per_block=2)
        pending = [(make_txn(f"t{i}", f"x{i}", i + 1), None) for i in range(5)]
        batch, stale = builder.take_batch(pending)
        assert [txn.txn_id for txn, _ in batch] == ["t0", "t1"]
        assert stale == []
        assert len(pending) == 3

    def test_conflicting_transactions_split_across_batches(self):
        builder = BatchBuilder(txns_per_block=3)
        pending = [
            (make_txn("t0", "same-item", 1), None),
            (make_txn("t1", "same-item", 2), None),
            (make_txn("t2", "other-item", 3), None),
        ]
        batch, stale = builder.take_batch(pending)
        assert [txn.txn_id for txn, _ in batch] == ["t0", "t2"]
        assert stale == []
        assert [txn.txn_id for txn, _ in pending] == ["t1"]

    def test_stale_transactions_filtered_out(self):
        builder = BatchBuilder(txns_per_block=3)
        pending = [
            (make_txn("t0", "x0", 1), None),
            (make_txn("t1", "x1", 5), None),
            (make_txn("t2", "x2", 3), None),
        ]
        batch, stale = builder.take_batch(pending, latest_committed_ts=Timestamp(3, "c9"))
        assert [txn.txn_id for txn, _ in batch] == ["t1"]
        assert [txn.txn_id for txn, _ in stale] == ["t0", "t2"]
        assert pending == []

    def test_no_latest_ts_keeps_everything(self):
        builder = BatchBuilder(txns_per_block=5)
        pending = [(make_txn("t0", "x0", 1), None)]
        batch, stale = builder.take_batch(pending)
        assert len(batch) == 1 and stale == []

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ProtocolError):
            BatchBuilder(0)


class TestBatchedCommit:
    def test_full_batch_commits_in_one_block(self, batched_system, workload_factory):
        workload = workload_factory(batched_system, ops_per_txn=2, window=4, seed=2)
        result = batched_system.run_workload(workload.generate(4))
        assert result.committed == 4
        assert batched_system.server("s0").log.height == 1
        block = batched_system.server("s0").log[0]
        assert len(block.transactions) == 4

    def test_partial_batch_commits_on_flush(self, batched_system, workload_factory):
        workload = workload_factory(batched_system, ops_per_txn=2, window=4, seed=2)
        result = batched_system.run_workload(workload.generate(6))
        assert result.committed == 6
        heights = set(batched_system.log_heights().values())
        assert heights == {2}

    def test_batched_block_amortises_latency(self, batched_system, workload_factory):
        workload = workload_factory(batched_system, ops_per_txn=2, window=4, seed=2)
        batched_system.run_workload(workload.generate(4))
        timing = batched_system.coordinator.results[-1].timing
        assert timing.num_txns == 4
        assert timing.per_txn_latency * 4 == pytest.approx(timing.total)

    def test_flush_fails_transactions_made_stale_by_earlier_block(self, batched_system):
        # Two conflicting transactions where the later-queued one carries the
        # LOWER commit timestamp: the first block of the flush commits the
        # high-timestamp one, which makes the other stale mid-flush.
        coordinator = batched_system.coordinator
        batched_system.client(0)  # registers "c0" keys on the network
        item = batched_system.shard_map.all_items()[0]

        def enqueue(txn_id: str, counter: int):
            txn = Transaction(
                txn_id=txn_id,
                client_id="c0",
                commit_ts=Timestamp(counter, "c0"),
                read_set=[],
                write_set=[WriteSetEntry(item, counter)],
            )
            envelope = batched_system.network.sign_envelope(
                Envelope(
                    sender="c0",
                    recipient=coordinator.coordinator_id,
                    message_type=MessageType.END_TRANSACTION,
                    payload={"transaction": txn, "commit_ts": txn.commit_ts.as_tuple()},
                )
            )
            return coordinator.on_end_transaction(envelope)

        assert enqueue("t-high", 5)["status"] == "queued"
        assert enqueue("t-low", 1)["status"] == "queued"
        response = coordinator.flush()
        assert response["results"]["t-high"]["status"] == "committed"
        low = response["results"]["t-low"]
        assert low["status"] == "failed"
        assert low["reason"] == "stale commit timestamp"

    def test_transactions_within_block_do_not_conflict(self, batched_system, workload_factory):
        workload = workload_factory(batched_system, ops_per_txn=2, window=4, seed=2)
        batched_system.run_workload(workload.generate(8))
        for block in batched_system.server("s0").log:
            txns = block.transactions
            for i, earlier in enumerate(txns):
                for later in txns[i + 1 :]:
                    assert not earlier.conflicts_with(later)
