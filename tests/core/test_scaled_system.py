"""The scaled multi-coordinator deployment (Section 4.6, Figure 9).

Covers the acceptance story end to end: locality-partitioned workloads commit
through distinct dynamic-group coordinators, the ordering service merges the
per-group blocks into one dependency-respecting global log replicated on
every server, and the auditor verifies both the global hash chain and each
block's group co-sign -- which the chaining-vs-cosign identity split makes
possible (the ordering service re-chains blocks without invalidating the
group's collective signature).
"""

from __future__ import annotations

import random

import pytest

from repro.core.grouping import ServerGroup
from repro.core.ordserv import OrderingService
from repro.crypto.cosi import cosi_verify
from repro.ledger.block import Block, BlockDecision
from repro.txn.operations import ReadOp, WriteOp
from repro.workload.ycsb import PartitionedWorkload, TransactionSpec


def partitioned_specs(system, count: int, locality: float = 1.0, seed: int = 3):
    """Locality-partitioned workload over per-two-server item pools.

    The conflict-free window spans the whole run so every transaction can
    commit deterministically (items are never reused across transactions).
    """
    server_ids = list(system.config.server_ids)
    partitions = []
    for start in range(0, len(server_ids), 2):
        items = []
        for server_id in server_ids[start : start + 2]:
            items.extend(system.shard_map.items_of(server_id))
        partitions.append(items)
    workload = PartitionedWorkload(
        partitions=partitions,
        ops_per_txn=2,
        locality=locality,
        conflict_free_window=count,
        seed=seed,
    )
    return workload.generate(count)


def pair_spec(index, item_a, item_b, base=100):
    return TransactionSpec(
        txn_index=index,
        operations=(
            ReadOp(item_a),
            WriteOp(item_a, base + index),
            ReadOp(item_b),
            WriteOp(item_b, base + index + 50),
        ),
    )


class TestScaledDeployment:
    def test_commits_through_multiple_group_coordinators(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        result = system.run_workload(partitioned_specs(system, 12), num_clients=2)
        assert result.committed == 12
        # Locality-partitioned traffic terminates in >= 2 distinct groups,
        # each led by its own coordinator.
        assert len(system.active_group_coordinators) >= 2
        assert len(system.groups_used()) >= 2

    def test_every_server_holds_the_same_global_log(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        system.run_workload(partitioned_specs(system, 12), num_clients=2)
        chains = {
            server_id: tuple(block.block_hash() for block in server.log)
            for server_id, server in system.servers.items()
        }
        assert len(set(chains.values())) == 1
        assert all(len(server.log) > 0 for server in system.servers.values())
        assert system.ordering.verify_dependency_order()

    def test_log_copies_verify_chain_and_group_cosigns(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        system.run_workload(partitioned_specs(system, 8), num_clients=2)
        public_keys = system.network.public_key_directory()
        for server in system.servers.values():
            verdict = server.log.verify(public_keys)
            assert verdict.valid
        # Every block's co-sign verifies against the *group body digest*
        # even though the ordering service rewrote height/previous_hash.
        for ordered in system.ordering.ordered_blocks:
            block = ordered.block
            assert block.group is not None
            assert set(block.cosign.signer_ids) == set(block.group)
            assert cosi_verify(block.cosign, block.group_body_digest(), public_keys)
            assert block.height == ordered.global_height

    def test_audit_of_honest_scaled_run_is_clean(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        result = system.run_workload(partitioned_specs(system, 10, locality=0.7), num_clients=2)
        assert result.committed > 0
        report = system.audit()
        assert report.ok

    def test_per_version_corruption_probe_clean_on_honest_scaled_run(self, make_scaled_system):
        """Cross-group traffic interleaves commit timestamps relative to log
        order; the exhaustive per-version probe must not false-positive on
        intermediate group blocks (it audits each shard at its latest root)."""
        system = make_scaled_system(num_servers=4)
        system.run_workload(partitioned_specs(system, 10, locality=0.7), num_clients=2)
        auditor = system.auditor()
        reference = system.server("s0").log
        for server_id in system.server_ids:
            assert auditor.find_corruption_version(server_id, reference) is None

    def test_outcomes_report_the_global_block_height(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, txns_per_block=1)
        item_a = system.shard_map.items_of("s0")[0]
        item_b = system.shard_map.items_of("s2")[0]
        first = system.run_transaction([WriteOp(item_a, 1)])
        second = system.run_transaction([WriteOp(item_b, 2)])
        # Heights are the ordering service's global ones, not the group
        # coordinators' placeholders (both rounds were each group's first).
        assert first.block_height == 0
        assert second.block_height == 1
        heights = [block.height for block in system.server("s0").log]
        assert heights == [0, 1]

    def test_cross_group_transaction_widens_its_group(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, txns_per_block=1)
        first_partition = system.shard_map.items_of("s0")[0]
        second_partition = system.shard_map.items_of("s3")[0]
        outcome = system.run_transaction(
            [ReadOp(first_partition), WriteOp(second_partition, 5)]
        )
        assert outcome.committed
        assert ("s0", "s3") in system.groups_used()

    def test_applied_values_visible_on_owning_servers(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, txns_per_block=1)
        item_a = system.shard_map.items_of("s1")[0]
        item_b = system.shard_map.items_of("s2")[0]
        assert system.run_transaction([WriteOp(item_a, 7), WriteOp(item_b, 8)]).committed
        assert system.server("s1").store.read(item_a).value == 7
        assert system.server("s2").store.read(item_b).value == 8

    def test_no_execution_or_round_state_leaks(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        system.run_workload(partitioned_specs(system, 12, locality=0.8), num_clients=3)
        for server in system.servers.values():
            assert server.execution.active_transactions() == []
            assert server.commitment.pending_round_count() == 0

    def test_second_run_workload_reports_only_its_own_blocks(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        first = system.run_workload(partitioned_specs(system, 6, seed=3), num_clients=2)
        second = system.run_workload(partitioned_specs(system, 6, seed=9), num_clients=2)
        total_results = sum(
            len(coordinator.results) for coordinator in system._coordinators()
        )
        assert len(first.block_results) + len(second.block_results) == total_results
        assert second.committed == 6


class TestScaledWithReorderWindow:
    @pytest.mark.parametrize("window", [0, 1, 3])
    def test_streams_identical_and_dependency_ordered(self, make_scaled_system, window):
        system = make_scaled_system(num_servers=6, reorder_window=window)
        result = system.run_workload(
            partitioned_specs(system, 18, locality=0.75, seed=5), num_clients=3
        )
        # Aborts are legitimate (a reordered window can make reads stale),
        # but every outcome must be terminal and the logs must agree.
        assert result.committed + result.aborted + result.failed == 18
        assert result.committed > 0
        chains = {
            server_id: tuple(block.block_hash() for block in server.log)
            for server_id, server in system.servers.items()
        }
        assert len(set(chains.values())) == 1
        assert system.ordering.verify_dependency_order()
        assert system.audit().ok


class TestGroupCosignTamperDetection:
    def test_doctored_group_membership_fails_log_verification(self, make_scaled_system):
        system = make_scaled_system(num_servers=4, txns_per_block=1)
        item = system.shard_map.items_of("s0")[0]
        partner = system.shard_map.items_of("s1")[0]
        assert system.run_transaction([WriteOp(item, 1), WriteOp(partner, 2)]).committed
        victim = system.server("s2")
        block = victim.log[0]
        # Claim a smaller group than the servers that actually co-signed.
        doctored = Block(
            height=block.height,
            transactions=block.transactions,
            roots=block.roots,
            decision=block.decision,
            previous_hash=block.previous_hash,
            cosign=block.cosign,
            group=("s0",),
        )
        victim.log.tamper_replace(0, doctored)
        verdict = victim.log.verify(system.network.public_key_directory())
        assert not verdict.valid
        assert "signer set" in verdict.reason or "signature" in verdict.reason

    def test_auditor_flags_group_that_omits_involved_server(self, make_scaled_system):
        from repro.audit.report import AuditReport
        from repro.audit.violations import ViolationType

        system = make_scaled_system(num_servers=4, txns_per_block=1)
        item = system.shard_map.items_of("s0")[0]
        partner = system.shard_map.items_of("s1")[0]
        assert system.run_transaction([WriteOp(item, 1), WriteOp(partner, 2)]).committed
        block = system.server("s0").log[0]
        shrunk = Block(
            height=block.height,
            transactions=block.transactions,
            roots={"s0": block.roots["s0"]},
            decision=block.decision,
            previous_hash=block.previous_hash,
            cosign=block.cosign,
            group=("s0",),
        )
        report = AuditReport()
        system.auditor()._check_block_structure(shrunk, report)
        kinds = {violation.kind for violation in report.violations}
        assert ViolationType.MALFORMED_BLOCK in kinds


class TestFlushConflicting:
    @staticmethod
    def _publish(service, txn_id, items_by_server, counter):
        from repro.common.timestamps import Timestamp
        from repro.ledger.block import make_partial_block
        from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry

        zero = Timestamp.zero()
        members = sorted(items_by_server)
        items = [item for sid in members for item in items_by_server[sid]]
        txn = Transaction(
            txn_id=txn_id,
            client_id="c0",
            commit_ts=Timestamp(counter, "c0"),
            read_set=[ReadSetEntry(item, 0, zero, zero) for item in items],
            write_set=[WriteSetEntry(item, counter) for item in items],
        )
        block = make_partial_block(0, [txn], b"\x00" * 32).with_decision(
            BlockDecision.COMMIT, {sid: b"\x01" * 32 for sid in members}
        )
        group = ServerGroup(members=frozenset(members), coordinator=min(members))
        service.publish(block, group)
        return group

    def test_disjoint_blocks_keep_their_reordering_freedom(self):
        service = OrderingService(reorder_window=5)
        self._publish(service, "t-disjoint", {"s2": ["x2"], "s3": ["x3"]}, 1)
        overlapping = self._publish(service, "t-overlap", {"s0": ["x0"], "s1": ["x1"]}, 2)
        service.flush_conflicting(overlapping)
        # Only the overlapping block landed; the disjoint one stays pending.
        landed = [ob.block.transactions[0].txn_id for ob in service.ordered_blocks]
        assert landed == ["t-overlap"]
        service.flush()
        assert service.stream_length == 2

    def test_upstream_dependency_lands_with_the_conflicting_block(self):
        service = OrderingService(reorder_window=5)
        # t-up writes x1 on s1; t-mid reads/writes x1 too (depends on t-up)
        # and also spans s0, so it overlaps the new group {s0}.
        self._publish(service, "t-up", {"s1": ["x1"]}, 1)
        self._publish(service, "t-mid", {"s0": ["x0"], "s1": ["x1"]}, 2)
        probe = ServerGroup(members=frozenset(["s0"]), coordinator="s0")
        service.flush_conflicting(probe)
        landed = [ob.block.transactions[0].txn_id for ob in service.ordered_blocks]
        assert landed == ["t-up", "t-mid"]
        assert service.verify_dependency_order()


class TestDecisionPathGroupDefense:
    def test_decision_broadcast_rejects_subset_signed_group_block(self, make_scaled_system):
        """A forged group block co-signed by a lone server must be rejected on
        *every* delivery path: cosi_verify checks only the signers the
        signature lists, so the signer-set-equals-group check is the sole
        defense -- it must hold for DECISION messages too, not just the
        ordered stream."""
        from repro.crypto.cosi import CoSiWitness, run_cosi_round
        from repro.ledger.block import make_group_partial_block
        from repro.common.timestamps import Timestamp
        from repro.txn.transaction import Transaction, WriteSetEntry

        system = make_scaled_system(num_servers=4, txns_per_block=1)
        item = system.shard_map.items_of("s1")[0]
        txn = Transaction(
            txn_id="t-forged",
            client_id="c9",
            commit_ts=Timestamp(1, "c9"),
            read_set=[],
            write_set=[WriteSetEntry(item, 99)],
        )
        forged = make_group_partial_block([txn], group_members=system.server_ids)
        forged = forged.with_decision(
            BlockDecision.COMMIT, {sid: b"\x01" * 32 for sid in system.server_ids}
        )
        lone = CoSiWitness("s0", system.server("s0").keypair)
        forged = forged.with_cosign(run_cosi_round(forged.group_body_digest(), [lone]))

        victim = system.server("s1")
        public_keys = system.network.public_key_directory()
        for handler in (
            victim.commitment.handle_decision,
            victim.commitment.handle_ordered_block,
        ):
            response = handler(forged, public_keys)
            assert not response["ok"]
            assert "signer set" in response["reason"]
        assert len(victim.log) == 0
        assert victim.store.read(item).value == 0

    def test_abandoned_group_round_state_eventually_expires(self, make_scaled_system):
        """A group coordinator that dies between GET_VOTE and any terminal
        message leaves ('group', ...) round state on its cohorts; the
        defensive TTL expiry must reclaim it (the height-based rule cannot --
        group heights are placeholders)."""
        from repro.ledger.block import make_group_partial_block
        from repro.common.timestamps import Timestamp
        from repro.txn.transaction import Transaction, WriteSetEntry

        system = make_scaled_system(num_servers=4, txns_per_block=1)
        victim = system.server("s1")
        item = system.shard_map.items_of("s1")[0]
        txn = Transaction(
            txn_id="t-abandoned",
            client_id="c9",
            commit_ts=Timestamp(1, "c9"),
            read_set=[],
            write_set=[WriteSetEntry(item, 5)],
        )
        orphan = make_group_partial_block([txn], group_members=("s0", "s1"))
        victim.commitment.handle_get_vote(orphan)
        assert victim.commitment.pending_round_count() == 1
        # The coordinator goes silent; later traffic must reclaim the state.
        ttl = type(victim.commitment).ROUND_STATE_TTL
        other_item = system.shard_map.items_of("s1")[1]
        for index in range(ttl + 1):
            assert system.run_transaction(
                [ReadOp(other_item), WriteOp(other_item, index)]
            ).committed
        assert victim.commitment.pending_round_count() == 0

    def test_honest_run_records_no_delivery_failures(self, make_scaled_system):
        system = make_scaled_system(num_servers=4)
        result = system.run_workload(partitioned_specs(system, 8), num_clients=2)
        assert system.delivery_failures == []
        assert all(not r.refusals for r in result.block_results)


class TestOrderingServiceProperty:
    """Property-style sweep: random interleavings of overlapping/disjoint
    groups never violate dependency order, for any reorder window."""

    @staticmethod
    def _random_publish_run(rng: random.Random, window: int):
        from repro.common.timestamps import Timestamp
        from repro.ledger.block import make_partial_block
        from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry

        servers = [f"s{i}" for i in range(6)]
        items_by_server = {sid: [f"{sid}-item-{j}" for j in range(3)] for sid in servers}
        service = OrderingService(reorder_window=window)
        zero = Timestamp.zero()
        for counter in range(rng.randint(4, 10)):
            members = rng.sample(servers, rng.randint(1, 3))
            items = [rng.choice(items_by_server[sid]) for sid in members]
            txn = Transaction(
                txn_id=f"t{counter}",
                client_id="c0",
                commit_ts=Timestamp(counter + 1, "c0"),
                read_set=[ReadSetEntry(item, 0, zero, zero) for item in items],
                write_set=[WriteSetEntry(item, counter) for item in items],
            )
            block = make_partial_block(0, [txn], b"\x00" * 32).with_decision(
                BlockDecision.COMMIT, {sid: b"\x01" * 32 for sid in members}
            )
            group = ServerGroup(members=frozenset(members), coordinator=min(members))
            service.publish(block, group)
        service.flush()
        return service

    @pytest.mark.parametrize("window", [0, 1, 2, 5])
    def test_random_interleavings_respect_dependencies(self, window):
        rng = random.Random(1000 + window)
        for _ in range(12):
            service = self._random_publish_run(rng, window)
            assert service.verify_dependency_order()
            heights = [ordered.global_height for ordered in service.ordered_blocks]
            assert heights == list(range(len(heights)))
            previous = None
            for ordered in service.ordered_blocks:
                if previous is not None:
                    assert ordered.block.previous_hash == previous.block_hash()
                previous = ordered.block
