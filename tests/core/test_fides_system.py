"""Tests for the FidesSystem assembly facade."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.fides import FidesSystem
from repro.txn.operations import WriteOp


class TestFidesSystemConstruction:
    def test_unknown_protocol_rejected(self, small_config):
        with pytest.raises(ConfigurationError):
            FidesSystem(small_config, protocol="3pc")

    def test_builds_one_server_per_shard(self, small_system, small_config):
        assert len(small_system.servers) == small_config.num_servers
        for server_id in small_system.server_ids:
            assert len(small_system.server(server_id).store) == small_config.items_per_shard

    def test_coordinator_is_first_server(self, small_system):
        assert small_system.coordinator_id == "s0"
        assert small_system.server("s0").coordinator_role is small_system.coordinator

    def test_clients_are_cached_by_index(self, small_system):
        assert small_system.client(0) is small_system.client(0)
        assert small_system.client(0) is not small_system.client(1)

    def test_repr_mentions_protocol(self, small_system):
        assert "tfcommit" in repr(small_system)


class TestWorkloadExecution:
    def test_run_workload_commits_everything(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=1)
        result = small_system.run_workload(workload.generate(5))
        assert result.committed == 5
        assert result.aborted == 0
        assert len(result.block_results) == 5

    def test_collect_logs_returns_copies(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item, 1)])
        logs = small_system.collect_logs()
        logs["s0"].truncate(0)
        assert len(small_system.server("s0").log) == 1

    def test_audit_of_honest_run_is_clean(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=4)
        small_system.run_workload(workload.generate(4))
        report = small_system.audit()
        assert report.ok
        assert report.transactions_audited == 4

    def test_log_heights_view(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item, 1)])
        assert set(small_system.log_heights().values()) == {1}
