"""Tests for the 2PC baseline (Section 6.1)."""

from __future__ import annotations


from repro.txn.operations import ReadOp, WriteOp


class TestTwoPhaseCommit:
    def test_commit_applies_writes_on_all_involved_servers(self, twopc_system):
        per_server_items = [
            twopc_system.shard_map.items_of(sid)[0] for sid in twopc_system.server_ids
        ]
        outcome = twopc_system.run_transaction([WriteOp(item, 7) for item in per_server_items])
        assert outcome.committed
        for server_id, item in zip(twopc_system.server_ids, per_server_items):
            assert twopc_system.server(server_id).store.read(item).value == 7

    def test_blocks_have_no_cosign_or_roots(self, twopc_system):
        item = twopc_system.shard_map.all_items()[0]
        twopc_system.run_transaction([WriteOp(item, 7)])
        block = twopc_system.server("s0").log[0]
        assert block.cosign is None
        assert block.roots == {}

    def test_conflicting_transaction_aborts(self, twopc_system):
        item = twopc_system.shard_map.all_items()[0]
        twopc_system.run_transaction([ReadOp(item), WriteOp(item, 1)])
        client = twopc_system.client(1)
        session = client.begin()
        client.read(session, item)
        twopc_system.run_transaction([ReadOp(item), WriteOp(item, 2)])
        outcome = client.commit(session)
        assert outcome.status == "aborted"
        assert twopc_system.server("s0").store.read(item).value == 2

    def test_two_phases_only(self, twopc_system):
        item = twopc_system.shard_map.all_items()[0]
        twopc_system.run_transaction([WriteOp(item, 7)])
        timing = twopc_system.coordinator.results[-1].timing
        assert set(timing.phases) == {"prepare", "decision", "aggregate"}

    def test_logs_identical_across_servers(self, twopc_system, workload_factory):
        workload = workload_factory(twopc_system, ops_per_txn=2, seed=9)
        result = twopc_system.run_workload(workload.generate(5))
        assert result.committed == 5
        heights = set(twopc_system.log_heights().values())
        assert heights == {5}


class TestEmptyCohortGuards:
    def test_broadcast_phase_with_empty_cohort_list_costs_zero(self, twopc_system):
        """Regression: the three ``max()`` calls in ``_broadcast_phase`` need
        ``default=0.0`` guards (ported from TFCommit in PR 1) -- an empty
        cohort list used to raise ``ValueError: max() arg is an empty
        sequence``."""
        from repro.core.tfcommit import TimingBreakdown
        from repro.core.twopc import TwoPhaseCommitCoordinator
        from repro.ledger.block import make_partial_block
        from repro.net.message import MessageType

        coordinator = TwoPhaseCommitCoordinator(
            server=twopc_system.server("s0"),
            network=twopc_system.network,
            server_ids=[],
            txns_per_block=1,
        )
        timing = TimingBreakdown()
        block = make_partial_block(0, [], b"\x00" * 32)
        responses = coordinator._broadcast_phase(
            "prepare", MessageType.PREPARE, {"block": block}, timing
        )
        assert responses == {}
        assert timing.phases["prepare"] == 0.0
        assert timing.network_time == 0.0
        assert timing.compute_time == 0.0

    def test_commit_batch_with_empty_cohort_list_does_not_raise(self, twopc_system):
        from repro.core.twopc import TwoPhaseCommitCoordinator
        from repro.net.message import Envelope, MessageType
        from repro.txn.transaction import Transaction
        from repro.common.timestamps import Timestamp

        coordinator = TwoPhaseCommitCoordinator(
            server=twopc_system.server("s0"),
            network=twopc_system.network,
            server_ids=[],
            txns_per_block=1,
        )
        txn = Transaction(
            txn_id="t-empty",
            client_id="c0",
            commit_ts=Timestamp(1, "c0"),
            read_set=[],
            write_set=[],
        )
        envelope = Envelope(
            sender="c0",
            recipient="s0",
            message_type=MessageType.END_TRANSACTION,
            payload={"transaction": txn},
        )
        result = coordinator.commit_batch([(txn, envelope)])
        # No cohort voted, so nothing objected: the round completes instead
        # of crashing on an empty response set.
        assert result.status == "committed"


class TestProtocolComparison:
    def test_tfcommit_does_more_work_than_2pc(self, small_system, twopc_system):
        """The Figure 12 claim at unit-test scale: trust costs extra phases and crypto."""
        item_tf = small_system.shard_map.all_items()[0]
        item_2pc = twopc_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item_tf, 1)])
        twopc_system.run_transaction([WriteOp(item_2pc, 1)])
        tf_timing = small_system.coordinator.results[-1].timing
        twopc_timing = twopc_system.coordinator.results[-1].timing
        assert len(tf_timing.phases) > len(twopc_timing.phases)
        assert tf_timing.total > twopc_timing.total
