"""TFCommit under injected malicious behaviour (Section 5 scenarios at the protocol level)."""

from __future__ import annotations


from repro.server.faults import (
    BadCosiFault,
    EquivocatingCoordinatorFault,
    FakeRootFault,
)
from repro.txn.operations import ReadOp, WriteOp


class TestBadCosiValues:
    def test_bad_response_is_detected_and_culprit_identified(self, small_system):
        """Lemma 4: the coordinator pinpoints the server with bad crypto values."""
        small_system.inject_fault("s2", BadCosiFault(corrupt_resp=True))
        item = small_system.shard_map.items_of("s1")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        result = small_system.coordinator.results[-1]
        assert result.status == "failed"
        assert result.culprits == ["s2"]
        # Nothing was committed anywhere.
        assert all(height == 0 for height in small_system.log_heights().values())

    def test_bad_commitment_still_yields_failed_round(self, small_system):
        small_system.inject_fault("s1", BadCosiFault(corrupt_commit=True, corrupt_resp=False))
        item = small_system.shard_map.items_of("s2")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        result = small_system.coordinator.results[-1]
        assert "s1" in result.culprits


class TestFakeRoot:
    def test_benign_cohort_detects_fake_root(self, small_system):
        """Scenario 2: the coordinator records a wrong MHT root for a benign server."""
        small_system.inject_fault("s0", FakeRootFault(victim="s1"))
        item = small_system.shard_map.items_of("s1")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        result = small_system.coordinator.results[-1]
        assert result.refusals
        assert any("different root" in r.get("reason", "") for r in result.refusals)
        # The victim's datastore is untouched and nothing was logged.
        assert small_system.server("s1").store.read(item).value == 0
        assert all(height == 0 for height in small_system.log_heights().values())


class TestFailedRoundCleanup:
    """Regression: rounds that fail before a decision used to leak RoundState.

    ``CommitmentLayer._rounds`` only popped state in ``handle_decision``;
    rounds failing at the challenge phase (refusals, bad co-sign) never see a
    decision, so the coordinator now broadcasts an explicit abandonment and
    every cohort must end up with zero buffered rounds.
    """

    def _assert_no_round_state(self, system):
        for server_id, server in system.servers.items():
            assert server.commitment.pending_round_count() == 0, server_id

    def test_refusal_failed_round_releases_state_everywhere(self, small_system):
        small_system.inject_fault("s0", FakeRootFault(victim="s1"))
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        self._assert_no_round_state(small_system)

    def test_bad_cosign_failed_round_releases_state_everywhere(self, small_system):
        small_system.inject_fault("s2", BadCosiFault(corrupt_resp=True))
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        self._assert_no_round_state(small_system)

    def test_equivocation_failed_round_releases_state_everywhere(self, small_system):
        small_system.inject_fault("s0", EquivocatingCoordinatorFault())
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        self._assert_no_round_state(small_system)

    def test_successful_round_also_leaves_no_state(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).committed
        self._assert_no_round_state(small_system)


class TestEquivocatingCoordinator:
    def test_correct_cohorts_refuse_mismatched_challenge(self, small_system):
        """Lemma 5 / Figure 8, Case 1: the same challenge cannot cover two blocks."""
        small_system.inject_fault("s0", EquivocatingCoordinatorFault())
        item = small_system.shard_map.items_of("s1")[0]
        outcome = small_system.run_transaction([WriteOp(item, 9)])
        assert outcome.status == "failed"
        result = small_system.coordinator.results[-1]
        assert result.refusals
        assert any("does not correspond" in r.get("reason", "") for r in result.refusals)
        # Atomicity is preserved: no server applied the write or grew its log.
        assert all(height == 0 for height in small_system.log_heights().values())
        assert small_system.server("s1").store.read(item).value == 0

    def test_cluster_recovers_after_coordinator_becomes_honest(self, small_system):
        from repro.server.faults import HonestBehavior

        small_system.inject_fault("s0", EquivocatingCoordinatorFault())
        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([WriteOp(item, 9)]).status == "failed"
        small_system.inject_fault("s0", HonestBehavior())
        outcome = small_system.run_transaction([ReadOp(item), WriteOp(item, 10)])
        assert outcome.committed
        assert small_system.server("s1").store.read(item).value == 10
