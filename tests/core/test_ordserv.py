"""Tests for the block ordering service (Section 4.6, Figure 9)."""

from __future__ import annotations


from repro.common.timestamps import Timestamp
from repro.core.grouping import ServerGroup
from repro.core.ordserv import OrderingService
from repro.crypto.hashing import EMPTY_HASH
from repro.ledger.block import BlockDecision, make_partial_block
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def make_block(items, counter, decision=BlockDecision.COMMIT):
    zero = Timestamp.zero()
    txn = Transaction(
        txn_id=f"t-{counter}",
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(item, 0, zero, zero) for item in items],
        write_set=[WriteSetEntry(item, counter) for item in items],
    )
    block = make_partial_block(0, [txn], EMPTY_HASH)
    return block.with_decision(decision, {})


def group(*members):
    return ServerGroup(frozenset(members), min(members))


class TestOrderingService:
    def test_blocks_get_consecutive_heights_and_chained_hashes(self):
        service = OrderingService()
        service.publish(make_block(["a"], 1), group("s0"))
        service.publish(make_block(["b"], 2), group("s1"))
        service.flush()
        ordered = service.ordered_blocks
        assert [b.global_height for b in ordered] == [0, 1]
        assert ordered[0].block.previous_hash == EMPTY_HASH
        assert ordered[1].block.previous_hash == ordered[0].block_hash

    def test_subscribers_receive_stream_in_order(self):
        service = OrderingService()
        delivered = []
        service.subscribe(lambda ob: delivered.append(ob.global_height))
        service.publish(make_block(["a"], 1), group("s0"))
        service.publish(make_block(["b"], 2), group("s1"))
        service.flush()
        assert delivered == [0, 1]

    def test_dependent_blocks_keep_submission_order(self):
        service = OrderingService(reorder_window=2)
        service.publish(make_block(["x"], 1), group("s0", "s1"))
        service.publish(make_block(["x"], 2), group("s1", "s2"))
        service.flush()
        ordered = service.ordered_blocks
        assert [b.block.transactions[0].txn_id for b in ordered] == ["t-1", "t-2"]
        assert service.verify_dependency_order()

    def test_disjoint_blocks_may_be_reordered_safely(self):
        service = OrderingService(reorder_window=3)
        service.publish(make_block(["a"], 1), group("s0"))
        service.publish(make_block(["b"], 2), group("s1"))
        service.publish(make_block(["c"], 3), group("s2"))
        service.flush()
        assert service.stream_length == 3
        assert service.verify_dependency_order()

    def test_stream_is_a_valid_chain_for_every_subscriber_log(self):
        from repro.ledger.log import TransactionLog

        service = OrderingService()
        log = TransactionLog()
        service.subscribe(lambda ob: log.append(ob.block, verify_link=False))
        for counter in range(1, 5):
            service.publish(make_block([f"item-{counter}"], counter), group(f"s{counter % 2}"))
        service.flush()
        assert len(log) == 4
        for earlier, later in zip(log.blocks, log.blocks[1:]):
            assert later.previous_hash == earlier.block_hash()
