"""Tests for key-choice distributions."""

from __future__ import annotations

import collections

import pytest

from repro.workload.distributions import UniformKeys, ZipfianKeys

ITEMS = [f"item-{i}" for i in range(100)]


class TestUniformKeys:
    def test_samples_come_from_universe(self):
        dist = UniformKeys(ITEMS, seed=1)
        assert all(dist.sample() in ITEMS for _ in range(100))

    def test_deterministic_per_seed(self):
        a = [UniformKeys(ITEMS, seed=3).sample() for _ in range(20)]
        b = [UniformKeys(ITEMS, seed=3).sample() for _ in range(20)]
        assert a == b

    def test_sample_distinct(self):
        dist = UniformKeys(ITEMS, seed=1)
        chosen = dist.sample_distinct(10)
        assert len(chosen) == len(set(chosen)) == 10

    def test_sample_distinct_cannot_exceed_universe(self):
        with pytest.raises(ValueError):
            UniformKeys(ITEMS[:3], seed=1).sample_distinct(4)

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys([], seed=1)

    def test_roughly_uniform_coverage(self):
        dist = UniformKeys(ITEMS, seed=5)
        counts = collections.Counter(dist.sample() for _ in range(5000))
        assert len(counts) > 90  # nearly every key shows up


class TestZipfianKeys:
    def test_skew_concentrates_on_head(self):
        dist = ZipfianKeys(ITEMS, seed=2, theta=0.99)
        counts = collections.Counter(dist.sample() for _ in range(5000))
        top10 = sum(count for _, count in counts.most_common(10))
        assert top10 > 0.5 * 5000

    def test_theta_zero_behaves_uniformly(self):
        dist = ZipfianKeys(ITEMS, seed=2, theta=0.0)
        counts = collections.Counter(dist.sample() for _ in range(5000))
        assert len(counts) > 90

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError):
            ZipfianKeys(ITEMS, theta=1.5)

    def test_samples_in_universe(self):
        dist = ZipfianKeys(ITEMS, seed=2)
        assert all(dist.sample() in ITEMS for _ in range(200))
