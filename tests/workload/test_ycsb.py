"""Tests for the Transactional-YCSB-like workload generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.workload.ycsb import TransactionSpec, YcsbWorkload

ITEMS = [f"item-{i:04d}" for i in range(200)]


class TestYcsbWorkload:
    def test_generates_requested_count(self):
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=5, seed=1)
        specs = workload.generate(50)
        assert len(specs) == 50
        assert all(isinstance(spec, TransactionSpec) for spec in specs)

    def test_read_modify_write_shape_matches_paper(self):
        """5 distinct items per transaction, each read then written (multi-record)."""
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=5, seed=1)
        spec = workload.generate(1)[0]
        assert len(spec.item_ids()) == 5
        assert spec.num_operations == 10
        reads = [op for op in spec.operations if op.is_read]
        writes = [op for op in spec.operations if op.is_write]
        assert len(reads) == len(writes) == 5

    def test_items_within_txn_are_distinct(self):
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=5, seed=2)
        for spec in workload.generate(30):
            assert len(spec.item_ids()) == 5

    def test_conflict_free_window_keeps_batches_disjoint(self):
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=3, conflict_free_window=10, seed=3)
        specs = workload.generate(30)
        for start in range(0, 30, 10):
            window = specs[start : start + 10]
            seen = set()
            for spec in window:
                items = set(spec.item_ids())
                assert not items & seen
                seen |= items

    def test_deterministic_per_seed(self):
        a = YcsbWorkload(item_ids=ITEMS, seed=5).generate(10)
        b = YcsbWorkload(item_ids=ITEMS, seed=5).generate(10)
        assert [s.item_ids() for s in a] == [s.item_ids() for s in b]

    def test_write_only_mix(self):
        workload = YcsbWorkload(
            item_ids=ITEMS, ops_per_txn=4, read_modify_write=False, write_fraction=1.0, seed=1
        )
        spec = workload.generate(1)[0]
        assert all(op.is_write for op in spec.operations)

    def test_read_only_mix(self):
        workload = YcsbWorkload(
            item_ids=ITEMS, ops_per_txn=4, read_modify_write=False, write_fraction=0.0, seed=1
        )
        spec = workload.generate(1)[0]
        assert all(op.is_read for op in spec.operations)

    def test_window_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            YcsbWorkload(item_ids=ITEMS[:10], ops_per_txn=5, conflict_free_window=10)

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            YcsbWorkload(item_ids=[])

    def test_written_values_are_unique(self):
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=2, seed=1)
        values = [
            op.value for spec in workload.generate(20) for op in spec.operations if op.is_write
        ]
        assert len(values) == len(set(values))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20))
    def test_any_configuration_generates_valid_specs(self, ops, count):
        workload = YcsbWorkload(item_ids=ITEMS, ops_per_txn=ops, seed=7)
        specs = workload.generate(count)
        assert len(specs) == count
        for spec in specs:
            assert len(spec.item_ids()) == ops
