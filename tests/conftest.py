"""Shared fixtures for the test suite.

The fixtures build small clusters (few servers, few items) so the whole suite
runs quickly; the paper-scale parameters are exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.crypto.keys import keypair_for
from repro.net.latency import ConstantLatency
from repro.workload.ycsb import YcsbWorkload


@pytest.fixture
def small_config() -> SystemConfig:
    """Three servers, forty items each, one transaction per block."""
    return SystemConfig(
        num_servers=3,
        items_per_shard=40,
        txns_per_block=1,
        ops_per_txn=2,
        multi_versioned=True,
        message_signing="schnorr",
        seed=7,
    )


@pytest.fixture
def batched_config() -> SystemConfig:
    """Three servers with four transactions batched per block."""
    return SystemConfig(
        num_servers=3,
        items_per_shard=60,
        txns_per_block=4,
        ops_per_txn=2,
        multi_versioned=True,
        message_signing="hash",
        seed=11,
    )


@pytest.fixture
def small_system(small_config) -> FidesSystem:
    """A ready-to-use TFCommit deployment on the small config."""
    return FidesSystem(small_config, latency=ConstantLatency(0.0002))


@pytest.fixture
def batched_system(batched_config) -> FidesSystem:
    """A ready-to-use TFCommit deployment with batching enabled."""
    return FidesSystem(batched_config, latency=ConstantLatency(0.0002))


@pytest.fixture
def twopc_system(small_config) -> FidesSystem:
    """A 2PC baseline deployment on the small config."""
    return FidesSystem(small_config, protocol="2pc", latency=ConstantLatency(0.0002))


@pytest.fixture
def workload_factory():
    """Factory building conflict-free YCSB workloads for a given system."""

    def build(system: FidesSystem, ops_per_txn: int = 2, window: int = 0, seed: int = 3):
        return YcsbWorkload(
            item_ids=system.shard_map.all_items(),
            ops_per_txn=ops_per_txn,
            conflict_free_window=window,
            seed=seed,
        )

    return build


@pytest.fixture
def server_keypairs():
    """Deterministic key pairs for five named servers."""
    return {f"s{i}": keypair_for(f"s{i}", seed=99) for i in range(5)}
