"""Shared fixtures for the test suite.

The fixtures build small clusters (few servers, few items) so the whole suite
runs quickly; the paper-scale parameters are exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import pytest

from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.core.scaled import ScaledFidesSystem
from repro.crypto.keys import keypair_for
from repro.net.latency import ConstantLatency
from repro.workload.ycsb import YcsbWorkload


@pytest.fixture
def small_config() -> SystemConfig:
    """Three servers, forty items each, one transaction per block."""
    return SystemConfig(
        num_servers=3,
        items_per_shard=40,
        txns_per_block=1,
        ops_per_txn=2,
        multi_versioned=True,
        message_signing="schnorr",
        seed=7,
    )


@pytest.fixture
def batched_config() -> SystemConfig:
    """Three servers with four transactions batched per block."""
    return SystemConfig(
        num_servers=3,
        items_per_shard=60,
        txns_per_block=4,
        ops_per_txn=2,
        multi_versioned=True,
        message_signing="hash",
        seed=11,
    )


@pytest.fixture
def small_system(small_config) -> FidesSystem:
    """A ready-to-use TFCommit deployment on the small config."""
    return FidesSystem(small_config, latency=ConstantLatency(0.0002))


@pytest.fixture
def batched_system(batched_config) -> FidesSystem:
    """A ready-to-use TFCommit deployment with batching enabled."""
    return FidesSystem(batched_config, latency=ConstantLatency(0.0002))


@pytest.fixture
def twopc_system(small_config) -> FidesSystem:
    """A 2PC baseline deployment on the small config."""
    return FidesSystem(small_config, protocol="2pc", latency=ConstantLatency(0.0002))


@pytest.fixture
def make_system():
    """Factory for one-off deployments with non-default parameters.

    Replaces the copy-pasted ``SystemConfig(...)`` + ``FidesSystem(...)``
    setup blocks that used to live in individual test modules; every keyword
    mirrors a :class:`SystemConfig` field.
    """

    def build(
        num_servers: int = 3,
        items_per_shard: int = 60,
        txns_per_block: int = 4,
        ops_per_txn: int = 2,
        multi_versioned: bool = True,
        message_signing: str = "hash",
        seed: int = 11,
        protocol: str = "tfcommit",
        latency_s: float = 0.0002,
    ) -> FidesSystem:
        config = SystemConfig(
            num_servers=num_servers,
            items_per_shard=items_per_shard,
            txns_per_block=txns_per_block,
            ops_per_txn=ops_per_txn,
            multi_versioned=multi_versioned,
            message_signing=message_signing,
            seed=seed,
        )
        return FidesSystem(config, protocol=protocol, latency=ConstantLatency(latency_s))

    return build


@pytest.fixture
def make_scaled_system():
    """Factory for scaled multi-coordinator deployments (Section 4.6)."""

    def build(
        num_servers: int = 4,
        items_per_shard: int = 40,
        txns_per_block: int = 2,
        ops_per_txn: int = 2,
        message_signing: str = "hash",
        seed: int = 11,
        reorder_window: int = 0,
        latency_s: float = 0.0002,
        sequencer=None,
    ) -> ScaledFidesSystem:
        config = SystemConfig(
            num_servers=num_servers,
            items_per_shard=items_per_shard,
            txns_per_block=txns_per_block,
            ops_per_txn=ops_per_txn,
            multi_versioned=True,
            message_signing=message_signing,
            seed=seed,
        )
        return ScaledFidesSystem(
            config,
            latency=ConstantLatency(latency_s),
            reorder_window=reorder_window,
            sequencer=sequencer,
        )

    return build


@pytest.fixture
def run_history(workload_factory):
    """Drive ``count`` committed transactions through a system.

    The audit test modules all need "some committed history" before they
    tamper with state; this shared helper replaces their per-module copies.
    """

    def run(system: FidesSystem, count: int = 5, seed: int = 51, ops_per_txn: int = 2):
        workload = workload_factory(system, ops_per_txn=ops_per_txn, seed=seed)
        result = system.run_workload(workload.generate(count))
        assert result.committed == count
        return result

    return run


@pytest.fixture
def workload_factory():
    """Factory building conflict-free YCSB workloads for a given system."""

    def build(system: FidesSystem, ops_per_txn: int = 2, window: int = 0, seed: int = 3):
        return YcsbWorkload(
            item_ids=system.shard_map.all_items(),
            ops_per_txn=ops_per_txn,
            conflict_free_window=window,
            seed=seed,
        )

    return build


@pytest.fixture
def server_keypairs():
    """Deterministic key pairs for five named servers."""
    return {f"s{i}": keypair_for(f"s{i}", seed=99) for i in range(5)}


@pytest.fixture
def random_payload():
    """Seed-deterministic nested payloads of the types protocol messages carry.

    Shared by the encoding and envelope round-trip suites; pass a seeded
    ``random.Random`` so runs stay reproducible.
    """

    def build(rng, depth: int = 0, max_depth: int = 3):
        if depth >= max_depth or rng.random() < 0.5:
            return rng.choice(
                [
                    None,
                    rng.random() < 0.5,
                    rng.randint(-(2**64), 2**64),
                    rng.random(),
                    "".join(rng.choice("abcxyz-_0123") for _ in range(rng.randint(0, 12))),
                    bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 16))),
                ]
            )
        if rng.random() < 0.5:
            return [build(rng, depth + 1, max_depth) for _ in range(rng.randint(0, 4))]
        return {
            f"k{rng.randint(0, 30)}": build(rng, depth + 1, max_depth)
            for _ in range(rng.randint(0, 4))
        }

    return build
