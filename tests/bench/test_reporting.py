"""Tests for benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, rows_to_csv, shape_ratio

ROWS = [
    {"label": "a", "throughput": 100, "latency": 2.0},
    {"label": "b", "throughput": 250, "latency": 1.0},
]


class TestReporting:
    def test_format_table_contains_all_cells(self):
        table = format_table(ROWS, title="demo")
        assert "demo" in table
        for row in ROWS:
            for value in row.values():
                assert str(value) in table

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="x")

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "label,throughput,latency"
        assert lines[1] == "a,100,2.0"
        assert rows_to_csv([]) == ""

    def test_shape_ratio(self):
        assert shape_ratio(ROWS, "throughput") == pytest.approx(2.5)
        with pytest.raises(ValueError):
            shape_ratio([], "throughput")
        with pytest.raises(ValueError):
            shape_ratio([{"x": 0}, {"x": 1}], "x")
