"""Tests for the benchmark harness (tiny experiment sizes)."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, run_average, run_experiment
from repro.core.fides import PROTOCOL_2PC, PROTOCOL_TFCOMMIT


def tiny_config(**overrides):
    base = dict(
        label="tiny",
        protocol=PROTOCOL_TFCOMMIT,
        num_servers=3,
        items_per_shard=60,
        txns_per_block=2,
        ops_per_txn=2,
        num_requests=4,
        message_signing="hash",
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestExperimentRunner:
    def test_all_requests_commit(self):
        result = run_experiment(tiny_config())
        assert result.committed_txns == 4
        assert result.aborted_txns == 0
        assert result.blocks == 2

    def test_metrics_are_positive_and_consistent(self):
        result = run_experiment(tiny_config())
        assert result.throughput_tps > 0
        assert result.block_latency_ms > 0
        assert result.txn_latency_ms <= result.block_latency_ms
        assert result.total_time_s == pytest.approx(
            result.blocks * result.block_latency_ms / 1000.0, rel=0.05
        )

    def test_as_row_has_report_columns(self):
        row = run_experiment(tiny_config()).as_row()
        for column in ("protocol", "servers", "throughput (txns/s)", "txn latency (ms)"):
            assert column in row

    def test_2pc_runs_too(self):
        result = run_experiment(tiny_config(protocol=PROTOCOL_2PC, label="tiny-2pc"))
        assert result.committed_txns == 4
        assert result.mht_update_ms == 0.0

    def test_tfcommit_slower_than_2pc_at_batch_one(self):
        tfc = run_experiment(tiny_config(txns_per_block=1))
        twopc = run_experiment(tiny_config(protocol=PROTOCOL_2PC, txns_per_block=1))
        assert tfc.txn_latency_ms > twopc.txn_latency_ms
        assert twopc.throughput_tps > tfc.throughput_tps

    def test_run_average_merges_repeats(self):
        merged = run_average(tiny_config(), repeats=2)
        assert merged.committed_txns == 4
        assert merged.throughput_tps > 0

    def test_run_average_keeps_phase_breakdown_and_blocks(self):
        # Regression: with repeats > 1 the merged result used to drop the
        # per-phase means entirely.
        merged = run_average(tiny_config(), repeats=2)
        assert merged.blocks == 2
        assert merged.phase_ms
        singles = [run_experiment(tiny_config(seed=2020 + i)) for i in range(2)]
        assert set(merged.phase_ms) == {name for run in singles for name in run.phase_ms}
        assert all(value > 0 for value in merged.phase_ms.values())

    def test_run_average_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_average(tiny_config(), repeats=0)

    def test_phase5_work_lands_in_finalize_phase(self):
        result = run_experiment(tiny_config())
        assert "finalize" in result.phase_ms
        assert result.phase_ms["finalize"] > 0

    def test_multi_client_commits_match_single_client(self):
        # Acceptance criterion: num_clients >= 4 commits the same transaction
        # count as the single-client baseline under a conflict-free workload.
        baseline = run_experiment(tiny_config(num_requests=8))
        multi = run_experiment(tiny_config(num_requests=8, num_clients=4))
        assert multi.committed_txns == baseline.committed_txns == 8
        assert multi.aborted_txns == 0
        assert multi.blocks == baseline.blocks

    def test_as_row_reports_client_count(self):
        row = run_experiment(tiny_config(num_clients=2, num_requests=4)).as_row()
        assert row["clients"] == 2

    def test_system_config_derivation(self):
        config = tiny_config(num_servers=4, items_per_shard=7)
        system_config = config.system_config()
        assert system_config.num_servers == 4
        assert system_config.items_per_shard == 7
