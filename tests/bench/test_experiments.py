"""Smoke tests for the figure sweeps at very small sizes.

The full-shape assertions live in ``benchmarks/``; here we only check that
each sweep runs, produces one row per parameter point, and exposes the
columns the reporting layer expects.
"""

from __future__ import annotations


from repro.bench.experiments import (
    EXPERIMENT_REGISTRY,
    ablation_signing_scheme,
    figure12_2pc_vs_tfcommit,
    figure13_txns_per_block,
    figure14_number_of_servers,
    figure15_items_per_shard,
)


class TestFigureSweeps:
    def test_figure12_rows(self):
        rows = figure12_2pc_vs_tfcommit(server_counts=(3,), num_requests=3, items_per_shard=60)
        assert len(rows) == 2  # one per protocol
        assert {row["protocol"] for row in rows} == {"2pc", "tfcommit"}

    def test_figure13_rows(self):
        rows = figure13_txns_per_block(batch_sizes=(2, 4), num_requests=8, items_per_shard=120)
        assert [row["txns/block"] for row in rows] == [2, 4]
        assert all(row["committed"] == 8 for row in rows)

    def test_figure14_rows(self):
        rows = figure14_number_of_servers(
            server_counts=(3, 4), num_requests=4, items_per_shard=60, txns_per_block=2
        )
        assert [row["servers"] for row in rows] == [3, 4]

    def test_figure15_rows(self):
        rows = figure15_items_per_shard(shard_sizes=(50, 100), num_requests=4, txns_per_block=2)
        assert [row["items/shard"] for row in rows] == [50, 100]

    def test_ablation_signing_scheme_rows(self):
        rows = ablation_signing_scheme(num_requests=2)
        assert len(rows) == 2

    def test_faultmatrix_smoke_rows(self):
        from repro.bench.experiments import faultmatrix

        rows = faultmatrix(num_requests=2, smoke=True)
        assert len(rows) == 19  # one per fault kind, always-trigger grid
        for row in rows:
            assert {"scenario", "detected", "blocks-to-detect", "audit overhead (x)"} <= set(row)

    def test_scaledgroups_smoke_rows(self):
        from repro.bench.experiments import scaledgroups

        results, rows = scaledgroups(num_requests=8, smoke=True, return_results=True)
        assert len(rows) == 1  # one point per axis in smoke mode
        row = rows[0]
        assert {"servers", "locality", "scaled tps", "baseline tps", "speedup"} <= set(row)
        assert results[0].group_coordinators >= 2
        assert results[0].scaled_tps > 0
        assert results[0].baseline_tps > 0

    def test_scaleout_tiny_rows(self):
        from repro.bench.experiments import scaleout

        results, rows = scaleout(
            shard_counts=(1, 2),
            cross_shard_ratios=(0.1,),
            num_servers=8,
            num_requests=32,
            fixed_compute_ms=1.0,
            return_results=True,
        )
        assert [row["shards"] for row in rows] == [1, 2]
        for row in rows:
            assert {"scaled tps", "ordserv busy", "speedup vs 1 shard", "epochs"} <= set(row)
        # The 1-shard point anchors the per-ratio speedup column at 1.0.
        assert rows[0]["speedup vs 1 shard"] == 1.0
        assert all(result.committed_txns > 0 for result in results)

    def test_registry_covers_every_figure(self):
        assert {
            "figure12",
            "figure13",
            "figure14",
            "figure15",
            "faultmatrix",
            "scaledgroups",
            "scaleout",
            "pipeline",
            "recovery",
            "failover",
        } <= set(EXPERIMENT_REGISTRY)


class TestRunFacade:
    def test_classic_dispatch(self):
        from repro.api import ExperimentConfig, run

        result = run(ExperimentConfig(
            num_servers=3, items_per_shard=100, num_requests=4,
            txns_per_block=2, ops_per_txn=2,
            message_signing="hash", fixed_compute_ms=1.0,
        ))
        assert result.committed_txns == 4

    def test_scaled_dispatch(self):
        from repro.api import ExperimentConfig, run

        result = run(ExperimentConfig(
            deployment="scaled", num_servers=4, group_size=1,
            items_per_shard=60, num_requests=4, locality=1.0,
            ordering_shards=2, message_signing="hash", fixed_compute_ms=1.0,
        ))
        assert result.committed_txns == 4
        assert result.ordering_shards == 2

    def test_unknown_deployment_rejected(self):
        import pytest

        from repro.api import ExperimentConfig, run
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(ExperimentConfig(deployment="galactic"))


class TestCli:
    def test_list_option(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "figure12" in captured.out

    def test_run_tiny_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["ablation-signing", "--requests", "2", "--csv"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0].startswith("label,")

    def test_faultmatrix_json_artifact(self, capsys, tmp_path):
        import json

        from repro.bench.__main__ import main

        out = tmp_path / "faultmatrix.json"
        assert main(["faultmatrix", "--requests", "2", "--smoke", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["schema_version"] == 1
        assert data["sweep"] == "faultmatrix"
        assert data["commit"]
        assert data["config"] == {"num_requests": 2, "smoke": True}
        assert len(data["rows"]) == 19
        assert all(row["detected"] for row in data["rows"])
        # Fault-matrix rows carry no throughput, so nothing is gateable.
        assert data["metrics"]["labels"] == {}
