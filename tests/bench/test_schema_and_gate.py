"""Tests for the canonical report schema and the benchmark regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.gate import build_baseline, compare
from repro.bench.gate import main as gate_main
from repro.bench.schema import canonical_report, summarize_rows, validate_report


def classic_rows():
    return [
        {
            "label": "point-a",
            "throughput (txns/s)": 100.0,
            "txn latency (ms)": 2.0,
            "txn p50 (ms)": 1.5,
            "txn p95 (ms)": 3.0,
            "txn p99 (ms)": 4.0,
        },
        {
            "label": "point-b",
            "throughput (txns/s)": 200.0,
            "txn latency (ms)": 1.0,
            "txn p50 (ms)": 0.8,
            "txn p95 (ms)": 1.6,
            "txn p99 (ms)": 2.0,
        },
    ]


class TestSchema:
    def test_summarize_normalises_classic_rows(self):
        metrics = summarize_rows(classic_rows())
        assert metrics["labels"]["point-a"]["throughput_tps"] == 100.0
        assert metrics["throughput_tps"] == {"mean": 150.0, "min": 100.0}
        assert metrics["latency_ms"]["p50"] == pytest.approx(1.15)
        assert metrics["latency_ms"]["p95"] == pytest.approx(2.3)

    def test_summarize_handles_sweep_specific_columns(self):
        rows = [
            {"label": "scaled", "scaled tps": 50.0, "txn latency (ms)": 3.0},
            {"label": "pipe", "pipelined tps": 75.0},
            {"label": "recover", "recover (ms)": 12.0},
            {"label": "matrix", "detected": True},  # no metrics at all
        ]
        metrics = summarize_rows(rows)
        assert metrics["labels"]["scaled"]["throughput_tps"] == 50.0
        assert metrics["labels"]["pipe"]["throughput_tps"] == 75.0
        assert metrics["labels"]["recover"] == {"throughput_tps": None, "latency_ms": 12.0}
        assert "matrix" not in metrics["labels"]

    def test_canonical_report_shape_and_validation(self):
        report = canonical_report("figure13", classic_rows(), config={"num_requests": 24})
        assert validate_report(report) == []
        assert report["sweep"] == "figure13"
        assert isinstance(report["commit"], str) and report["commit"]
        assert report["config"] == {"num_requests": 24}
        broken = dict(report)
        del broken["metrics"]
        broken["schema_version"] = 99
        assert len(validate_report(broken)) == 2


class TestGate:
    def make_reports(self, tps=100.0):
        rows = [
            {"label": "point-a", "throughput (txns/s)": tps},
            {"label": "point-b", "throughput (txns/s)": 2 * tps},
        ]
        return [canonical_report("sweep-x", rows, config={"num_requests": 8})]

    def test_identical_reports_pass(self):
        reports = self.make_reports()
        baseline = build_baseline(reports, tolerance=0.25)
        comparison = compare(baseline, reports, tolerance=0.25)
        assert comparison["passed"]
        assert [row["status"] for row in comparison["rows"]] == ["ok", "ok"]

    def test_regression_beyond_tolerance_fails(self):
        baseline = build_baseline(self.make_reports(tps=100.0), tolerance=0.25)
        comparison = compare(baseline, self.make_reports(tps=70.0), tolerance=0.25)
        assert not comparison["passed"]
        assert any("fell more than" in failure for failure in comparison["failures"])

    def test_small_dip_within_tolerance_passes(self):
        baseline = build_baseline(self.make_reports(tps=100.0), tolerance=0.25)
        comparison = compare(baseline, self.make_reports(tps=90.0), tolerance=0.25)
        assert comparison["passed"]

    def test_improvement_passes_with_note(self):
        baseline = build_baseline(self.make_reports(tps=100.0), tolerance=0.25)
        comparison = compare(baseline, self.make_reports(tps=200.0), tolerance=0.25)
        assert comparison["passed"]
        assert comparison["improvements"]

    def test_missing_sweep_or_label_fails(self):
        reports = self.make_reports()
        baseline = build_baseline(reports, tolerance=0.25)
        comparison = compare(baseline, [], tolerance=0.25)
        assert not comparison["passed"]
        shrunk = self.make_reports()
        shrunk[0]["metrics"]["labels"].pop("point-b")
        comparison = compare(baseline, shrunk, tolerance=0.25)
        assert any("label missing" in failure for failure in comparison["failures"])

    def test_config_drift_fails(self):
        reports = self.make_reports()
        baseline = build_baseline(reports, tolerance=0.25)
        drifted = self.make_reports()
        drifted[0]["config"] = {"num_requests": 999}
        comparison = compare(baseline, drifted, tolerance=0.25)
        assert not comparison["passed"]
        assert any("differs from the baseline" in failure for failure in comparison["failures"])

    def test_cli_update_then_compare_round_trip(self, tmp_path):
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(self.make_reports()[0]))
        baseline_path = tmp_path / "baseline.json"
        output_path = tmp_path / "comparison.json"
        assert gate_main(["--baseline", str(baseline_path), "--update", str(report_path)]) == 0
        assert (
            gate_main(
                [
                    "--baseline",
                    str(baseline_path),
                    "--output",
                    str(output_path),
                    str(report_path),
                ]
            )
            == 0
        )
        comparison = json.loads(output_path.read_text())
        assert comparison["passed"] is True

    def test_cli_fails_on_regression(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self.make_reports(tps=100.0)[0]))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(self.make_reports(tps=10.0)[0]))
        assert gate_main(["--baseline", str(baseline_path), "--update", str(good)]) == 0
        assert gate_main(["--baseline", str(baseline_path), str(bad)]) == 1

    def test_cli_rejects_non_canonical_report(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"rows": []}))
        baseline_path = tmp_path / "baseline.json"
        assert gate_main(["--baseline", str(baseline_path), str(bogus)]) == 2


class TestBenchCliExitCodes:
    def test_empty_sweep_fails(self, capsys):
        from repro.bench import __main__ as cli

        original = cli.EXPERIMENT_REGISTRY.get("figure12")
        cli.EXPERIMENT_REGISTRY["figure12"] = lambda **kwargs: []
        try:
            assert cli.main(["figure12"]) == 1
        finally:
            cli.EXPERIMENT_REGISTRY["figure12"] = original
        assert "no result rows" in capsys.readouterr().err

    def test_raising_sweep_fails(self, capsys):
        # The CLI catches the library's own error family (plus OSError);
        # anything else is a programming bug and propagates loudly.
        from repro.bench import __main__ as cli
        from repro.common.errors import StorageError

        def boom(**kwargs):
            raise StorageError("sweep exploded")

        original = cli.EXPERIMENT_REGISTRY.get("figure12")
        cli.EXPERIMENT_REGISTRY["figure12"] = boom
        try:
            assert cli.main(["figure12"]) == 1
        finally:
            cli.EXPERIMENT_REGISTRY["figure12"] = original
        assert "raised" in capsys.readouterr().err

    def test_fixed_compute_flag_rejected_for_unsupported_sweep(self, capsys):
        from repro.bench.__main__ import main

        assert main(["recovery", "--fixed-compute-ms", "1"]) == 2
        assert "--fixed-compute-ms" in capsys.readouterr().err

    def test_fixed_compute_runs_are_reproducible(self, tmp_path):
        from repro.bench.__main__ import main

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert (
                main(
                    [
                        "multiclient",
                        "--requests",
                        "8",
                        "--fixed-compute-ms",
                        "1",
                        "--json",
                        str(path),
                    ]
                )
                == 0
            )
        reports = [json.loads(path.read_text()) for path in paths]
        assert reports[0]["metrics"]["labels"] == reports[1]["metrics"]["labels"]
