"""Mutation self-test: the checker rediscovers two fixed historical bugs.

PR 3 fixed two real bugs; :mod:`repro.check.mutations` re-introduces each
behind a flag.  The acceptance bar for the checker is that with either flag
on it finds an invariant violation (with a minimized, replayable
counterexample), and with both off a budgeted sweep over the crash and
Byzantine branches stays invariant-clean across at least 1,000 distinct
states -- evidence the invariants have teeth *and* the implementation holds.
"""

from __future__ import annotations

import pytest

from repro.check.explorer import Explorer
from repro.check.mutations import enabled_mutations, mutated
from repro.check.replay import replay, trace_from_counterexample
from repro.check.scenarios import ClassicByzantineScenario, ClassicCrashScenario


def _explore_with(mutation: str, max_runs: int):
    with mutated(mutation):
        return Explorer(ClassicCrashScenario, max_runs=max_runs).explore()


@pytest.mark.parametrize(
    "mutation, invariant",
    [
        ("pr3-round-failed-leak", "round-state-released"),
        ("pr3-double-count-blocks", "workload-accounting"),
    ],
)
def test_mutation_is_rediscovered_with_replayable_counterexample(mutation, invariant):
    result = _explore_with(mutation, max_runs=60)
    assert result.counterexamples, f"{mutation}: checker failed to find the bug"
    cex = result.counterexamples[0]
    assert cex.minimized
    assert invariant in cex.invariants

    # The minimized counterexample replays: the violation reproduces with
    # the mutation on, and the identical schedule is clean with it off.
    trace = trace_from_counterexample(cex, mutations=(mutation,))
    _, violations = replay(trace)
    assert invariant in {violation.invariant for violation in violations}
    _, fixed = replay(trace, with_mutations=False)
    assert fixed == []


def test_round_failed_leak_needs_a_crash_branch():
    """The leak only manifests when a round actually fails: the default
    (no-crash) schedule is clean, so rediscovery genuinely exercises the
    crash choice points rather than falling out of run #1."""
    with mutated("pr3-round-failed-leak"):
        result = Explorer(
            ClassicCrashScenario, max_runs=1, minimize=False
        ).explore()
    assert result.clean


def test_clean_sweep_crosses_a_thousand_distinct_states():
    assert enabled_mutations() == ()
    total_states = 0
    for scenario_cls in (ClassicCrashScenario, ClassicByzantineScenario):
        result = Explorer(scenario_cls, max_runs=60).explore()
        assert result.clean, (
            f"{scenario_cls.name}: unexpected violation(s) "
            f"{[cex.invariants for cex in result.counterexamples]}"
        )
        total_states += result.distinct_states
    assert total_states >= 1000, f"only {total_states} distinct states covered"
