"""ChoiceSource semantics: replay, defaults, features, and the loop hook."""

from __future__ import annotations

import pytest

from repro.check.choices import (
    ChoiceError,
    ChoicePoint,
    ChoiceSource,
    active_choices,
    choose,
    choose_order,
    driven_by,
)


class TestUndriven:
    def test_choose_returns_default_without_a_source(self):
        assert active_choices() is None
        assert choose("x", 5, 2) == 2

    def test_choose_order_is_identity_without_a_source(self):
        items = ["c", "a", "b"]
        assert choose_order("x", items) == items
        assert choose_order("x", items) is not items  # always a fresh list


class TestDriven:
    def test_prefix_is_replayed_then_defaults(self):
        source = ChoiceSource([1, 2])
        with driven_by(source):
            assert choose("a", 3, 0) == 1
            assert choose("b", 4, 0) == 2
            assert choose("c", 3, 0) == 0  # past the prefix: default
        assert source.picks() == [1, 2, 0]
        assert [point.label for point in source.trace] == ["a", "b", "c"]

    def test_single_option_sites_are_not_recorded(self):
        source = ChoiceSource([])
        with driven_by(source):
            assert choose("only", 1, 0) == 0
        assert source.trace == []

    def test_out_of_range_prefix_pick_raises(self):
        source = ChoiceSource([7])
        with driven_by(source):
            with pytest.raises(ChoiceError):
                choose("a", 3, 0)

    def test_feature_gating(self):
        source = ChoiceSource([1], features={"on"})
        with driven_by(source):
            assert choose("gated", 3, 0, feature="off") == 0  # default, unrecorded
            assert choose("live", 3, 0, feature="on") == 1
        assert [point.label for point in source.trace] == ["live"]

    def test_nested_driving_is_rejected(self):
        with driven_by(ChoiceSource([])):
            with pytest.raises(ChoiceError):
                with driven_by(ChoiceSource([])):
                    pass

    def test_trace_points_are_frozen(self):
        source = ChoiceSource([1])
        with driven_by(source):
            choose("a", 2, 0)
        point = source.trace[0]
        assert isinstance(point, ChoicePoint)
        with pytest.raises(AttributeError):
            point.picked = 0

    def test_node_fingerprints_share_prefixes(self):
        first = ChoiceSource([1, 0])
        with driven_by(first):
            choose("a", 2, 0)
            choose("b", 2, 0)
        second = ChoiceSource([1, 1])
        with driven_by(second):
            choose("a", 2, 0)
            choose("b", 2, 0)
        # Same first pick at the same site -> shared first node; the second
        # node diverges.
        assert first.node_fingerprints[0] == second.node_fingerprints[0]
        assert first.node_fingerprints[1] != second.node_fingerprints[1]


class TestChooseOrder:
    def test_permutations_are_enumerable(self):
        items = ["a", "b", "c"]
        seen = set()
        # 3! = 6 pick sequences: first pick in 0..2, second in 0..1.
        for first in range(3):
            for second in range(2):
                source = ChoiceSource([first, second])
                with driven_by(source):
                    seen.add(tuple(choose_order("perm", items)))
        assert len(seen) == 6

    def test_default_prefix_is_identity(self):
        source = ChoiceSource([])
        with driven_by(source):
            assert choose_order("perm", ["x", "y", "z"]) == ["x", "y", "z"]


class TestEventLoopTieBreak:
    def test_same_time_events_run_in_chosen_order(self):
        from repro.sim.events import EventLoop

        def run(prefix):
            log = []
            loop = EventLoop()
            for name in ("first", "second"):
                loop.schedule(
                    1.0,
                    "message",
                    label=name,
                    callback=(lambda n: (lambda event: log.append(n)))(name),
                )
            source = ChoiceSource(prefix, features={"loop-order"})
            with driven_by(source):
                loop.run_until_idle()
            return log

        assert run([]) == ["first", "second"]
        assert run([1]) == ["second", "first"]
