"""Fixture: a ``to_wire`` class with no registered decoder."""


class Orphan:
    def to_wire(self):
        return {}


class ExemptedOrphan:  # lint: allow
    def to_wire(self):
        return {}
