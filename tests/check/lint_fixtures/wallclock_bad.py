"""Fixture: reads the wall clock (the ``wallclock`` rule must flag it)."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    when = datetime.now()
    measured = time.perf_counter()  # legal here: not a protocol package
    return started, when, measured


def stamp_allowed():
    return time.time()  # lint: allow
