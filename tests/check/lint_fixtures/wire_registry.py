"""Fixture registry: intentionally does not cover ``Orphan``."""

WIRE_DECODERS = {
    "Covered": None,
}
