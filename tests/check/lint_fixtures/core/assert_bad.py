"""Fixture: bare assert inside a protocol package (``core/``)."""


def commit(height):
    assert height >= 0, "heights are non-negative"
    return height


def checked_commit(height):
    assert height >= 0, "explicitly exempted"  # lint: allow
    return height
