"""Fixture: ad-hoc timers inside a protocol package (``adhoc-timing``)."""

import time
from time import process_time


def measure():
    started = time.perf_counter()
    ticked = time.monotonic()
    burned = process_time()
    return started, ticked, burned


def measure_allowed():
    return time.perf_counter()  # lint: allow
