"""Fixture: ``print()`` inside a protocol package (``no-print`` flags it)."""


def announce(height):
    print("committed block", height)
    return height


def announce_allowed(height):
    print("debugging a flake")  # lint: allow
    return height
