"""Fixture: unseeded randomness (the ``unseeded-random`` rule must flag it)."""

import random


def draw():
    jitter = random.random()
    generator = random.Random()
    seeded = random.Random(42)  # legal: explicit seed
    return jitter, generator, seeded
