"""Round-trip property: every ``to_wire`` class decodes back to itself.

Coverage is by *auto-discovery*: the test walks ``src/repro`` (statically,
via AST -- the same inventory the lint's ``missing-decoder`` rule uses),
asserts ``WIRE_DECODERS`` registers a decoder for every discovered class,
builds a representative instance of each, and asserts the decoder inverts
``to_wire`` exactly.  Adding a new ``to_wire`` class without a decoder and a
builder here fails this test (and the lint) immediately.
"""

from __future__ import annotations

import ast

import pytest

from repro.check.lint import default_root
from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.core.grouping import ServerGroup
from repro.core.tfcommit import TxnOutcome
from repro.core.viewchange import FrontierCertificate
from repro.crypto.cosi import CollectiveSignature
from repro.crypto.merkle import VerificationObject
from repro.ledger.anchor import EpochAnchor
from repro.ledger.block import Block, BlockDecision
from repro.ledger.checkpoint import Checkpoint
from repro.net.message import Envelope, MessageType
from repro.obs.metrics import Histogram
from repro.obs.trace import Span
from repro.recovery.wire import WIRE_DECODERS
from repro.server.commitment import VoteResult
from repro.storage.datastore import ReadResult
from repro.storage.record import RecordVersion
from repro.txn.operations import ReadOp, WriteOp
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def discovered_wire_classes():
    """Every class under ``src/repro`` that defines ``to_wire`` (via AST)."""
    names = set()
    for path in sorted(default_root().rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                isinstance(item, ast.FunctionDef) and item.name == "to_wire"
                for item in node.body
            ):
                names.add(node.name)
    return names


_TS = Timestamp(3, "c1")
_TS2 = Timestamp(5, "c2")
_COSIGN = CollectiveSignature(challenge=11, response=22, signer_ids=("s0", "s1", "s2"))
_READ = ReadSetEntry(item_id="x1", value=7, rts=_TS, wts=_TS)
_WRITE = WriteSetEntry(
    item_id="x2", new_value=9, old_value=1, rts=_TS, wts=_TS, blind=False
)
_TXN = Transaction(
    txn_id="t1", client_id="c1", commit_ts=_TS2, read_set=(_READ,), write_set=(_WRITE,)
)


def _build_histogram() -> Histogram:
    histogram = Histogram()
    histogram.observe(0.002)
    histogram.observe(0.5)
    return histogram


#: One representative instance per wire class (decoder-equality checked).
BUILDERS = {
    "Block": lambda: Block(
        height=4,
        transactions=(_TXN,),
        roots={"s0": b"\x01" * 32, "s1": b"\x02" * 32},
        decision=BlockDecision.COMMIT,
        previous_hash=b"\x03" * 32,
        cosign=_COSIGN,
        group=("s0", "s1"),
    ),
    "Checkpoint": lambda: Checkpoint(
        height=9,
        head_hash=b"\x04" * 32,
        shard_roots={"s0": b"\x05" * 32},
        latest_commit_ts=_TS2,
        transactions_covered=12,
        cosign=_COSIGN,
    ),
    "CollectiveSignature": lambda: _COSIGN,
    "EpochAnchor": lambda: EpochAnchor(
        epoch=2,
        start_height=5,
        end_height=8,
        shard_heights=(3, 5),
        shard_heads=(b"\x0c" * 32, b"\x0d" * 32),
        previous=b"\x0e" * 32,
    ),
    "Envelope": lambda: Envelope(
        sender="s0",
        recipient="s1",
        message_type=MessageType.PREPARE,
        payload={"round": 3},
        signature=b"\x06" * 16,
    ),
    "FrontierCertificate": lambda: FrontierCertificate(
        server_id="s1",
        view=2,
        height=4,
        head_hash=b"\x0b" * 32,
        head=BUILDERS["Block"]().to_wire(),
    ),
    "Histogram": _build_histogram,
    "ReadOp": lambda: ReadOp(item_id="x1"),
    "ReadResult": lambda: ReadResult(item_id="x1", value=7, rts=_TS, wts=_TS2),
    "ReadSetEntry": lambda: _READ,
    "RecordVersion": lambda: RecordVersion(value=7, wts=_TS, rts=_TS2),
    "ServerGroup": lambda: ServerGroup(
        members=frozenset({"s0", "s1"}), coordinator="s0"
    ),
    "Span": lambda: Span(
        span_id=7,
        parent=3,
        kind="span",
        name="get_vote",
        category="phase",
        resource="s0",
        pid=1,
        start=0.5,
        end=0.75,
        status="ok",
        attrs={"view": 1},
    ),
    "Transaction": lambda: _TXN,
    "TxnOutcome": lambda: TxnOutcome(
        txn_id="t1", status="committed", block_height=4, reason="", decided_at=1.25
    ),
    "VerificationObject": lambda: VerificationObject(
        item_id="x1",
        leaf_index=2,
        siblings=((b"\x07" * 32, True), (b"\x08" * 32, False)),
    ),
    "VoteResult": lambda: VoteResult(
        server_id="s0",
        involved=True,
        decision="commit",
        commitment=b"\x09" * 32,
        root=b"\x0a" * 32,
        compute_time=0.5,
        mht_time=0.25,
        mht_hashes=6,
        abort_reason="",
    ),
    "WriteOp": lambda: WriteOp(item_id="x2", value=9),
    "WriteSetEntry": lambda: _WRITE,
}


class TestCoverage:
    def test_every_discovered_class_has_a_registered_decoder(self):
        assert discovered_wire_classes() == set(WIRE_DECODERS)

    def test_every_registered_class_has_a_builder(self):
        assert set(BUILDERS) == set(WIRE_DECODERS)


@pytest.mark.parametrize("class_name", sorted(BUILDERS))
def test_round_trip(class_name):
    instance = BUILDERS[class_name]()
    decoded = WIRE_DECODERS[class_name](instance.to_wire())
    assert decoded == instance
    # And the re-encoded wire form is identical (encode is a fixpoint).
    assert decoded.to_wire() == instance.to_wire()


@pytest.mark.parametrize("class_name", sorted(BUILDERS))
def test_decoders_are_strict_on_garbage(class_name):
    if class_name == "CollectiveSignature":
        pytest.skip("cosign decoder maps None -> None by design (optional field)")
    with pytest.raises(ValidationError):
        WIRE_DECODERS[class_name]({})


def test_optional_fields_round_trip_as_none():
    block = Block(
        height=0,
        transactions=(),
        roots={},
        decision=BlockDecision.ABORT,
        previous_hash=b"\x00" * 32,
        cosign=None,
        group=None,
    )
    assert WIRE_DECODERS["Block"](block.to_wire()) == block
    outcome = TxnOutcome(txn_id="t9", status="aborted")
    assert WIRE_DECODERS["TxnOutcome"](outcome.to_wire()) == outcome
