"""Analyzer self-tests: the static passes rediscover the historical bugs.

Same philosophy as ``test_mutation_selftest.py`` for the model checker: an
analyzer that has never caught a real bug proves nothing.  Each test folds a
mutation flag on *statically* (no runtime state is touched -- the analyzer
evaluates ``mutation_enabled("...")`` during branch folding) and asserts the
re-introduced bug is reported at its original site.
"""

from __future__ import annotations

from repro.check.lint import default_root
from repro.check.static import run_analyses
from repro.check.static.model import SourceTree


def analyze(*mutations):
    return run_analyses(SourceTree(default_root()), frozenset(mutations))


def by_rule(findings, rule):
    return [finding for finding in findings if finding.rule == rule]


class TestPr3RoundFailedLeak:
    """PR 3's bug: no ROUND_FAILED broadcast when a round dies early, so
    cohorts that buffered per-round state for the GET_VOTE never release it."""

    def test_clean_tree_has_no_leaks(self):
        assert by_rule(analyze(), "round-state-leak") == []

    def test_mutation_reintroduces_the_leak(self):
        findings = by_rule(
            analyze("pr3-round-failed-leak"), "round-state-leak"
        )
        assert findings, "analyzer missed the re-introduced PR 3 leak"
        leak = findings[0]
        # Reported at the arming GET_VOTE send inside commit_batch...
        assert leak.path == "core/tfcommit.py"
        assert leak.line > 0
        assert leak.function.endswith("commit_batch")
        # ...with the arming -> leaking path spelled out.
        assert leak.trace, "leak finding must carry the leaking path"
        assert leak.trace[0] == leak.line
        assert len(leak.trace) > 1
        assert "GET_VOTE" in leak.message


class TestPr72pcVoteKeyError:
    """PR 7's bug: the 2PC tally subscripts ``vote["involved"]`` /
    ``vote["decision"]`` without first failing the round on unreachable
    cohorts, so a crashed cohort's synthesized response KeyErrors."""

    def test_clean_tree_has_no_unguarded_subscripts(self):
        assert by_rule(analyze(), "unguarded-subscript") == []

    def test_mutation_reintroduces_the_keyerror(self):
        findings = by_rule(
            analyze("pr7-2pc-vote-keyerror"), "unguarded-subscript"
        )
        assert findings, "analyzer missed the re-introduced PR 7 KeyError"
        assert {finding.path for finding in findings} == {"core/twopc.py"}
        assert all(finding.line > 0 for finding in findings)
        assert all(
            finding.function.endswith("commit_batch") for finding in findings
        )
        keys = {
            key for finding in findings for key in ("involved", "decision")
            if f"'{key}'" in finding.message
        }
        assert keys == {"involved", "decision"}

    def test_mutations_do_not_mask_each_other(self):
        # Both flags at once: each bug is still reported independently.
        findings = analyze("pr3-round-failed-leak", "pr7-2pc-vote-keyerror")
        assert by_rule(findings, "round-state-leak")
        assert by_rule(findings, "unguarded-subscript")
