"""Golden message-flow graph: the exact send -> handler edge sets.

These are the protocol's communication diagrams (Figures 6 and 7 plus the
failover, recovery, and audit traffic) extracted from the *implementation*.
A new phase, a renamed handler, or a dropped send site changes an edge set
and must be acknowledged here; ``format_edges`` keeps the failure diff
readable.
"""

from __future__ import annotations

from repro.check.lint import default_root
from repro.check.static.flowgraph import (
    deployment_edges,
    extract_flow_graph,
    format_edges,
)
from repro.check.static.model import SourceTree
from repro.net.message import MessageType

#: Traffic every deployment shares: the client's transaction life-cycle,
#: the audit protocol, crash recovery, and coordinator failover.
COMMON_EDGES = [
    "AUDIT_LOG_REQUEST -> _on_audit_log_request",
    "AUDIT_VO_REQUEST -> _on_audit_vo_request",
    "BEGIN_TRANSACTION -> _on_begin",
    "END_TRANSACTION -> _on_end_transaction",
    "NEW_VIEW -> _on_new_view",
    "READ -> _on_read",
    "ROUND_FAILED -> _on_round_failed",
    "STATE_REQUEST -> _on_state_request",
    "VIEW_CHANGE -> _on_view_change",
    "WRITE -> _on_write",
]

#: TFCommit's phases (Figure 7).  The cohort's vote and response halves are
#: handler return payloads, so only the coordinator-initiated phases appear.
TFCOMMIT_EDGES = [
    "CHALLENGE -> _on_challenge",
    "DECISION -> _on_decision",
    "GET_VOTE -> _on_get_vote",
]

CLASSIC_EDGES = sorted(COMMON_EDGES + TFCOMMIT_EDGES)

SCALED_EDGES = sorted(
    COMMON_EDGES
    + TFCOMMIT_EDGES
    + [
        "EPOCH_ANCHOR -> _on_epoch_anchor",
        "ORDERED_BLOCK -> _on_ordered_block",
    ]
)

TWOPC_EDGES = sorted(
    COMMON_EDGES
    + [
        "COMMIT_DECISION -> _on_2pc_decision",
        "PREPARE -> _on_prepare",
    ]
)


def graph():
    return extract_flow_graph(SourceTree(default_root()))


class TestGoldenEdgeSets:
    def test_classic_deployment_edges(self):
        assert format_edges(deployment_edges(graph(), "classic")) == CLASSIC_EDGES

    def test_scaled_deployment_edges(self):
        assert format_edges(deployment_edges(graph(), "scaled")) == SCALED_EDGES

    def test_twopc_deployment_edges(self):
        assert format_edges(deployment_edges(graph(), "twopc")) == TWOPC_EDGES

    def test_scaled_is_classic_plus_ordering_service(self):
        g = graph()
        extra = deployment_edges(g, "scaled") - deployment_edges(g, "classic")
        assert format_edges(extra) == [
            "EPOCH_ANCHOR -> _on_epoch_anchor",
            "ORDERED_BLOCK -> _on_ordered_block",
        ]

    def test_deployments_cover_every_message_type(self):
        g = graph()
        union = {
            name
            for deployment in ("classic", "scaled", "twopc")
            for name, _ in deployment_edges(g, deployment)
        }
        assert union == {member.name for member in MessageType}


class TestGraphShape:
    def test_dispatch_table_covers_exactly_the_enum(self):
        g = graph()
        assert set(g.handlers) == {member.name for member in MessageType}

    def test_every_member_is_sent_somewhere(self):
        g = graph()
        assert g.sent_types() == {member.name for member in MessageType}

    def test_dispatch_site_is_the_server_front_end(self):
        path, line = graph().dispatch_site
        assert path == "server/server.py"
        assert line > 0
