"""The static analyzer: clean on the real tree, each rule fires on a fixture.

Mirrors ``test_lint.py``'s structure, but the fixtures are synthetic package
trees written to ``tmp_path`` because the analyses key off package names
(``core``, ``server``...) and cross-module structure (the ``MessageType``
enum, the dispatch table), which point fixtures cannot express.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.check.lint import default_root
from repro.check.static import run_analyses
from repro.check.static.__main__ import main
from repro.check.static.model import SourceTree
from repro.check.static.report import (
    build_report,
    load_baseline,
    validate_report,
    write_baseline,
)


def write_tree(root: Path, files: dict) -> SourceTree:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return SourceTree(root)


#: Minimal surroundings every fixture tree shares: the enum, a dispatch
#: table covering the enum, a send site per member, and an empty decoder
#: registry so the missing-decoder pass has a file to read.
def base_files(extra_members: str = "") -> dict:
    return {
        "net/message.py": f"""
            class MessageType:
                PING = "ping"
                {extra_members}
            """,
        "server/server.py": """
            from repro.net.message import MessageType

            class Server:
                def handle(self, envelope):
                    handlers = {MessageType.PING: self._on_ping}
                    return handlers[envelope.message_type](envelope)

                def _on_ping(self, envelope):
                    return {"ok": True}
            """,
        "core/driver.py": """
            from repro.net.message import MessageType

            class Driver:
                def run(self):
                    self.network.send("a", "b", MessageType.PING, {})
            """,
        "recovery/wire.py": """
            WIRE_DECODERS = {}
            """,
    }


def rules(findings):
    return {finding.rule for finding in findings}


def by_rule(findings, rule):
    return [finding for finding in findings if finding.rule == rule]


class TestRepositoryIsClean:
    def test_src_repro_has_no_findings(self):
        findings = run_analyses(SourceTree(default_root()))
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_cli_exits_zero_on_the_repository(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out


class TestFlowTotality:
    def test_clean_base_tree(self, tmp_path):
        tree = write_tree(tmp_path, base_files())
        assert run_analyses(tree) == []

    def test_unhandled_message(self, tmp_path):
        files = base_files(extra_members='ROGUE = "rogue"')
        files["core/rogue.py"] = """
            from repro.net.message import MessageType

            def fire(network):
                network.broadcast("a", MessageType.ROGUE, {})
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "unhandled-message")
        assert [f.path for f in findings] == ["core/rogue.py"]
        assert "ROGUE" in findings[0].message

    def test_unsent_handler(self, tmp_path):
        files = base_files(extra_members='GHOST = "ghost"')
        files["server/server.py"] = """
            from repro.net.message import MessageType

            class Server:
                def handle(self, envelope):
                    handlers = {
                        MessageType.PING: self._on_ping,
                        MessageType.GHOST: self._on_ghost,
                    }
                    return handlers[envelope.message_type](envelope)

                def _on_ping(self, envelope):
                    return {"ok": True}

                def _on_ghost(self, envelope):
                    return {"ok": True}
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "unsent-handler")
        assert [f.path for f in findings] == ["server/server.py"]
        assert "GHOST" in findings[0].message

    def test_dead_message_type(self, tmp_path):
        files = base_files(extra_members='UNUSED = "unused"')
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "dead-message-type")
        assert [f.path for f in findings] == ["net/message.py"]
        assert "UNUSED" in findings[0].message

    def test_missing_decoder(self, tmp_path):
        files = base_files()
        files["ledger/thing.py"] = """
            class Thing:
                def to_wire(self):
                    return {}
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "missing-decoder")
        assert [f.path for f in findings] == ["ledger/thing.py"]

    def test_syntax_error_is_a_finding(self, tmp_path):
        files = base_files()
        files["core/broken.py"] = "def f(:\n"
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "syntax")
        assert [f.path for f in findings] == ["core/broken.py"]


class TestRoundStateLeaks:
    def test_leaking_early_return_is_flagged(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            from repro.net.message import MessageType

            class Coordinator:
                def commit(self, batch):
                    votes = self.network.broadcast("c", MessageType.GET_VOTE, {})
                    if not votes:
                        return None  # leaks: armed cohorts never hear back
                    self.network.broadcast("c", MessageType.DECISION, {})
                    return votes
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "round-state-leak")
        assert [f.path for f in findings] == ["core/coord.py"]
        assert "GET_VOTE" in findings[0].message
        assert findings[0].trace, "a leak finding must carry its path trace"

    def test_release_on_every_path_is_clean(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            from repro.net.message import MessageType

            class Coordinator:
                def commit(self, batch):
                    votes = self.network.broadcast("c", MessageType.GET_VOTE, {})
                    if not votes:
                        self._fail()
                        return None
                    self.network.broadcast("c", MessageType.DECISION, {})
                    return votes

                def _fail(self):
                    self.network.broadcast("c", MessageType.ROUND_FAILED, {})
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "round-state-leak") == []

    def test_exception_edge_leak_is_flagged(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            from repro.net.message import MessageType

            class Coordinator:
                def commit(self, batch):
                    votes = self.network.broadcast("c", MessageType.GET_VOTE, {})
                    if self.tally(votes) is None:
                        raise RuntimeError("bad tally escapes before any release")
                    self.network.broadcast("c", MessageType.DECISION, {})
                    return votes
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "round-state-leak")
        assert findings and "raise" in findings[0].message

    def test_protocol_invariant_panic_is_an_allowed_exit(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            from repro.common.errors import ProtocolInvariantError
            from repro.net.message import MessageType

            class Coordinator:
                def commit(self, batch):
                    votes = self.network.broadcast("c", MessageType.GET_VOTE, {})
                    if self.tally(votes) is None:
                        raise ProtocolInvariantError("deliberate panic")
                    self.network.broadcast("c", MessageType.DECISION, {})
                    return votes
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "round-state-leak") == []


class TestExceptionEffects:
    def test_broad_except_flagged_in_protocol_package(self, tmp_path):
        files = base_files()
        files["core/sloppy.py"] = """
            def load(data):
                try:
                    return decode(data)
                except Exception:
                    return None
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "broad-except")
        assert [f.path for f in findings] == ["core/sloppy.py"]

    def test_broad_except_ignored_outside_protocol_packages(self, tmp_path):
        files = base_files()
        files["bench/sloppy.py"] = """
            def load(data):
                try:
                    return decode(data)
                except Exception:
                    return None
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "broad-except") == []

    def test_unguarded_subscript_on_response_map(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            def tally(self):
                votes = timed_broadcast(self.network, "c", [], None, {})
                return [vote["decision"] for vote in votes.values()]
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "unguarded-subscript")
        assert findings and "decision" in findings[0].message

    def test_guarded_subscript_is_clean(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            def tally(self):
                votes = timed_broadcast(self.network, "c", [], None, {})
                unreachable = [v for v in votes.values() if v.get("unreachable")]
                if unreachable:
                    return None
                return [vote["decision"] for vote in votes.values()]
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "unguarded-subscript") == []

    def test_safe_keys_are_exempt(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            def tally(self):
                votes = timed_broadcast(self.network, "c", [], None, {})
                return [vote["ok"] for vote in votes.values()]
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "unguarded-subscript") == []

    def test_unguarded_minmax(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            def newest(self):
                votes = timed_broadcast(self.network, "c", [], None, {})
                return max(votes)
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "unguarded-minmax")
        assert findings and "default=" in findings[0].message

    def test_minmax_with_default_is_clean(self, tmp_path):
        files = base_files()
        files["core/coord.py"] = """
            def newest(self):
                votes = timed_broadcast(self.network, "c", [], None, {})
                return max(votes, default=0)
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "unguarded-minmax") == []

    def test_escaping_raise_in_handler_reachable_code(self, tmp_path):
        files = base_files()
        files["server/server.py"] = """
            from repro.net.message import MessageType

            class Server:
                def handle(self, envelope):
                    handlers = {MessageType.PING: self._on_ping}
                    return handlers[envelope.message_type](envelope)

                def _on_ping(self, envelope):
                    if not envelope.payload:
                        raise ValueError("empty ping")
                    return {"ok": True}
            """
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "escaping-raise")
        assert findings and "ValueError" in findings[0].message

    def test_raise_unreachable_from_dispatch_is_ignored(self, tmp_path):
        files = base_files()
        files["core/util.py"] = """
            def helper(x):
                if x < 0:
                    raise ValueError("never called from a handler")
                return x
            """
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "escaping-raise") == []


class TestSuppressionAndBaseline:
    def test_static_allow_marker_suppresses(self, tmp_path):
        files = base_files(extra_members='UNUSED = "unused"  # static: allow')
        assert by_rule(run_analyses(write_tree(tmp_path, files)), "dead-message-type") == []

    def test_static_allow_with_rule_list_is_selective(self, tmp_path):
        files = base_files(
            extra_members='UNUSED = "unused"  # static: allow[unguarded-subscript]'
        )
        findings = by_rule(run_analyses(write_tree(tmp_path, files)), "dead-message-type")
        assert findings, "marker names a different rule, so the finding stays"

    def test_baseline_roundtrip_and_report_schema(self, tmp_path):
        files = base_files(extra_members='UNUSED = "unused"')
        tree = write_tree(tmp_path, files)
        findings = run_analyses(tree)
        assert findings

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert baseline == {finding.key for finding in findings}

        report = build_report(findings, tmp_path, [], baseline)
        assert validate_report(report) == []
        assert report["new_findings"] == []
        assert report["baselined_findings"] == sorted(baseline)

    def test_cli_baseline_workflow(self, tmp_path, capsys):
        files = base_files(extra_members='UNUSED = "unused"')
        write_tree(tmp_path, files)
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(tmp_path), "--baseline", str(baseline)]

        assert main(args) == 1  # un-baselined finding fails
        assert main(args + ["--update-baseline"]) == 0
        assert main(args) == 0  # now accepted debt
        out = capsys.readouterr().out
        assert "[baselined]" in out

        report_path = tmp_path / "report.json"
        assert main(args + ["--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert validate_report(report) == []
        assert report["counts"] == {"dead-message-type": 1}

    def test_stale_baseline_entry_is_reported(self, tmp_path, capsys):
        write_tree(tmp_path, base_files())
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema_version": 1,
            "suppressions": ["gone::core/x.py::f::whatever"],
        }))
        assert main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_baseline_schema_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema_version": 99, "suppressions": []}))
        with pytest.raises(ValueError):
            load_baseline(bad)
