"""The AST lint: clean on the real tree, each rule fires on its fixture."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check.lint import default_root, lint_tree, main

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _rules(violations):
    return {violation.rule for violation in violations}


def _by_rule(violations, rule):
    return [violation for violation in violations if violation.rule == rule]


class TestRepositoryIsClean:
    def test_src_repro_has_no_violations(self):
        violations = lint_tree(default_root())
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_cli_exits_zero_on_the_repository(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out


class TestFixturesAreFlagged:
    @pytest.fixture(scope="class")
    def violations(self):
        return lint_tree(FIXTURES, wire_registry=FIXTURES / "wire_registry.py")

    def test_wallclock_rule(self, violations):
        flagged = _by_rule(violations, "wallclock")
        assert {v.path for v in flagged} == {"wallclock_bad.py"}
        # time.time() and datetime.now() flagged; perf_counter and the
        # `# lint: allow` line are not.
        assert len(flagged) == 2

    def test_no_print_rule_only_in_protocol_packages(self, violations):
        flagged = _by_rule(violations, "no-print")
        assert [v.path for v in flagged] == [str(Path("core") / "print_bad.py")]
        # The `# lint: allow` print in the same file is exempt.
        assert len(flagged) == 1

    def test_adhoc_timing_rule_only_in_protocol_packages(self, violations):
        flagged = _by_rule(violations, "adhoc-timing")
        # perf_counter, monotonic, and the bare-name process_time call are
        # flagged inside core/; the perf_counter in wallclock_bad.py (not a
        # protocol package) and the `# lint: allow` line are not.
        assert {v.path for v in flagged} == {str(Path("core") / "timing_bad.py")}
        assert len(flagged) == 3

    def test_unseeded_random_rule(self, violations):
        flagged = _by_rule(violations, "unseeded-random")
        assert {v.path for v in flagged} == {"random_bad.py"}
        # random.random() and argless random.Random(); the seeded one passes.
        assert len(flagged) == 2

    def test_bare_assert_rule_only_in_protocol_packages(self, violations):
        flagged = _by_rule(violations, "bare-assert")
        assert [v.path for v in flagged] == [str(Path("core") / "assert_bad.py")]
        # The `# lint: allow` assert in the same file is exempt.
        assert len(flagged) == 1

    def test_missing_decoder_rule(self, violations):
        flagged = _by_rule(violations, "missing-decoder")
        assert [v.path for v in flagged] == ["decoder_bad.py"]
        assert "Orphan" in flagged[0].message
        # The `# lint: allow` marker on the class line is honored.
        assert "ExemptedOrphan" not in flagged[0].message
        assert len(flagged) == 1

    def test_cli_exit_code_and_json(self, capsys):
        code = main(
            [
                "--root",
                str(FIXTURES),
                "--wire-registry",
                str(FIXTURES / "wire_registry.py"),
                "--json",
            ]
        )
        assert code == 1
        import json

        report = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in report} == {
            "wallclock",
            "adhoc-timing",
            "no-print",
            "unseeded-random",
            "bare-assert",
            "missing-decoder",
        }


class TestRegistryExtraction:
    def test_missing_registry_file_is_itself_a_violation(self, tmp_path):
        (tmp_path / "mod.py").write_text("class X:\n    def to_wire(self):\n        return {}\n")
        violations = lint_tree(tmp_path, wire_registry=tmp_path / "nope.py")
        assert _rules(violations) == {"missing-decoder"}

    def test_non_literal_registry_is_rejected(self, tmp_path):
        registry = tmp_path / "wire.py"
        registry.write_text("WIRE_DECODERS = dict(Block=None)\n")
        with pytest.raises(LookupError):
            lint_tree(tmp_path, wire_registry=registry)

    def test_syntax_errors_are_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        (tmp_path / "wire.py").write_text("WIRE_DECODERS = {}\n")
        violations = lint_tree(tmp_path, wire_registry=tmp_path / "wire.py")
        assert _rules(violations) == {"syntax"}
