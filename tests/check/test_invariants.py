"""Each invariant fires on a hand-built violating state (and only then).

The checkers are duck-typed over the final run state, so these tests drive
them with minimal stub systems: one mutated field per test, asserting the
specific violation appears.  End-to-end evaluation over *real* systems is
covered by the explorer and mutation self-tests.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.check.invariants import (
    INVARIANTS,
    RunRecord,
    check_agreement,
    check_decided_once,
    check_frontier_monotonic,
    check_hash_chain,
    check_no_commit_lost,
    check_pipeline_conformance,
    check_round_state_released,
    check_workload_accounting,
    evaluate,
)
from repro.common.timestamps import Timestamp


def _txn(txn_id, commit_ts=None):
    return SimpleNamespace(txn_id=txn_id, commit_ts=commit_ts)


def _block(txns, *, is_commit=True, height=1, group=None):
    return SimpleNamespace(
        is_commit=is_commit, transactions=tuple(txns), height=height, group=group
    )


def _server(blocks=(), pending_rounds=0, crashed=False):
    return SimpleNamespace(
        log=list(blocks),
        crashed=crashed,
        commitment=SimpleNamespace(pending_round_count=lambda: pending_rounds),
        latest_checkpoint=None,
    )


def _system(servers):
    return SimpleNamespace(
        servers=servers,
        config=SimpleNamespace(server_ids=sorted(servers)),
        network=SimpleNamespace(public_key_directory=lambda: {}),
        sim=None,
    )


def _record(servers, **kwargs):
    return RunRecord(system=_system(servers), **kwargs)


class TestAgreement:
    def test_divergent_decisions_fire(self):
        record = _record(
            {
                "s0": _server([_block([_txn("t1")], is_commit=True)]),
                "s1": _server([_block([_txn("t1")], is_commit=False)]),
            }
        )
        violations = check_agreement(record)
        assert [v.invariant for v in violations] == ["agreement"]
        assert "t1" in violations[0].message

    def test_byzantine_servers_are_excluded(self):
        record = _record(
            {
                "s0": _server([_block([_txn("t1")], is_commit=True)]),
                "s1": _server([_block([_txn("t1")], is_commit=False)]),
            },
            byzantine=frozenset({"s1"}),
        )
        assert check_agreement(record) == []


class TestDecidedOnce:
    def test_double_decision_fires(self):
        # A re-proposed round deciding alongside the original: same txn in
        # two blocks of one log, even with agreeing decisions.
        record = _record(
            {
                "s0": _server(
                    [
                        _block([_txn("t1")], height=1),
                        _block([_txn("t1")], height=2),
                    ]
                )
            }
        )
        violations = check_decided_once(record)
        assert [v.invariant for v in violations] == ["decided-once"]
        assert "block 1 and again in block 2" in violations[0].message

    def test_distinct_transactions_are_clean(self):
        record = _record(
            {
                "s0": _server(
                    [
                        _block([_txn("t1")], height=1),
                        _block([_txn("t2")], height=2),
                    ]
                )
            }
        )
        assert check_decided_once(record) == []

    def test_byzantine_logs_are_excluded(self):
        record = _record(
            {"s0": _server([_block([_txn("t1")], height=1)] * 2)},
            byzantine=frozenset({"s0"}),
        )
        assert check_decided_once(record) == []


class TestHashChain:
    def test_invalid_log_fires(self):
        bad = _server()
        bad.log = SimpleNamespace(
            verify=lambda directory, checkpoint=None: SimpleNamespace(
                valid=False, first_invalid_height=3, reason="hash mismatch"
            )
        )
        record = _record({"s0": bad})
        violations = check_hash_chain(record)
        assert [v.invariant for v in violations] == ["hash-chain"]
        assert "height 3" in violations[0].message


class TestFrontierMonotonic:
    def test_stale_commit_fires(self):
        early = Timestamp(5, "c0")
        stale = Timestamp(5, "c0")  # equal to the frontier: not strictly above
        record = _record(
            {
                "s0": _server(
                    [
                        _block([_txn("t1", early)], height=1),
                        _block([_txn("t2", stale)], height=2),
                    ]
                )
            }
        )
        violations = check_frontier_monotonic(record)
        assert [v.invariant for v in violations] == ["frontier-monotonic"]

    def test_per_group_frontiers_are_independent(self):
        ts = Timestamp(5, "c0")
        record = _record(
            {
                "s0": _server(
                    [
                        _block([_txn("t1", ts)], height=1, group=("s0", "s1")),
                        _block([_txn("t2", ts)], height=2, group=("s0", "s2")),
                    ]
                )
            }
        )
        assert check_frontier_monotonic(record) == []


class TestNoCommitLost:
    def test_missing_committed_txn_fires(self):
        workload = SimpleNamespace(
            outcomes=[SimpleNamespace(txn_id="t1", committed=True)]
        )
        record = _record({"s0": _server([])}, slices=[workload])
        violations = check_no_commit_lost(record)
        assert [v.invariant for v in violations] == ["no-commit-lost"]
        assert "absent" in violations[0].message

    def test_aborted_outcomes_are_not_required(self):
        workload = SimpleNamespace(
            outcomes=[SimpleNamespace(txn_id="t1", committed=False)]
        )
        record = _record({"s0": _server([])}, slices=[workload])
        assert check_no_commit_lost(record) == []


class TestRoundStateReleased:
    def test_leaked_round_state_fires(self):
        record = _record({"s0": _server(pending_rounds=2)})
        violations = check_round_state_released(record)
        assert [v.invariant for v in violations] == ["round-state-released"]
        assert "2 round(s)" in violations[0].message

    def test_crashed_servers_are_skipped(self):
        record = _record({"s0": _server(pending_rounds=2, crashed=True)})
        assert check_round_state_released(record) == []


class TestWorkloadAccounting:
    def _workload(self, block_results, outcomes):
        return SimpleNamespace(block_results=block_results, outcomes=outcomes)

    def test_double_counted_block_result_fires(self):
        shared = SimpleNamespace(status="committed", outcomes=[])
        record = _record(
            {"s0": _server()},
            slices=[self._workload([shared], []), self._workload([shared], [])],
        )
        violations = check_workload_accounting(record)
        assert "appears again in run 1" in violations[0].message

    def test_client_block_commit_mismatch_fires(self):
        block = SimpleNamespace(
            status="committed",
            outcomes=[SimpleNamespace(txn_id="t1", status="committed")],
        )
        record = _record(
            {"s0": _server()},
            slices=[self._workload([block], [])],  # client saw no commit
        )
        violations = check_workload_accounting(record)
        assert [v.invariant for v in violations] == ["workload-accounting"]


class TestPipelineConformance:
    def _scheduler_record(self, tasks, depth=1):
        scheduler = SimpleNamespace(
            all_tasks=lambda: {"coordinator": tasks}, pipeline_depth=depth
        )
        system = SimpleNamespace(sim=SimpleNamespace(scheduler=scheduler), servers={})
        return RunRecord(system=system)

    def _task(self, label, phases, started_at=0.0, done_at=None, chained=False):
        return SimpleNamespace(
            label=label,
            phases=dict(phases),
            started_at=started_at,
            done_at=done_at,
            chained=chained,
        )

    def test_overlapping_phases_within_a_task_fire(self):
        task = self._task("block-1", {"vote": (0.0, 2.0), "aggregate": (1.0, 3.0)})
        violations = check_pipeline_conformance(self._scheduler_record([task]))
        assert any("starts at" in v.message for v in violations)

    def test_overlapping_compute_phases_across_tasks_fire(self):
        tasks = [
            self._task("block-1", {"aggregate": (0.0, 2.0)}),
            self._task("block-2", {"aggregate": (1.0, 3.0)}),
        ]
        violations = check_pipeline_conformance(self._scheduler_record(tasks))
        assert any("overlap" in v.message for v in violations)

    def test_depth_one_chained_task_must_wait(self):
        tasks = [
            self._task("block-1", {"decision": (0.0, 1.0)}, started_at=0.0, done_at=2.0),
            self._task(
                "block-2",
                {"decision": (3.0, 4.0)},
                started_at=1.0,
                done_at=4.0,
                chained=True,
            ),
        ]
        violations = check_pipeline_conformance(self._scheduler_record(tasks, depth=1))
        assert any("inside its predecessor" in v.message for v in violations)

    def test_system_without_sim_is_skipped(self):
        record = RunRecord(system=SimpleNamespace(sim=None, servers={}))
        assert check_pipeline_conformance(record) == []


class TestEvaluate:
    def test_unknown_invariant_raises(self):
        record = _record({"s0": _server()})
        with pytest.raises(KeyError):
            evaluate(record, ["no-such-invariant"])

    def test_selection_runs_only_named_checkers(self):
        record = _record({"s0": _server(pending_rounds=1)})
        assert evaluate(record, ["agreement"]) == []
        assert [v.invariant for v in evaluate(record, ["round-state-released"])] == [
            "round-state-released"
        ]

    def test_catalogue_is_complete(self):
        assert set(INVARIANTS) == {
            "agreement",
            "decided-once",
            "hash-chain",
            "frontier-monotonic",
            "no-commit-lost",
            "cosign-consistency",
            "round-state-released",
            "workload-accounting",
            "pipeline-conformance",
        }
