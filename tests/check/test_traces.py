"""Committed counterexample traces replay exactly as recorded.

Every ``*.json`` under ``tests/check/traces/`` is a minimized counterexample
the checker once found (or a clean witness schedule).  Replaying them here
turns each historical bug into a permanent regression test: a violation
trace must still reproduce its recorded invariant violations with its
mutations enabled, and must run clean with them disabled (proving the bug
is the re-introduced mutation, not the live code).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check.replay import Trace, assert_trace, load_trace, replay, save_trace

TRACES = sorted((Path(__file__).parent / "traces").glob("*.json"))


def test_trace_directory_is_not_empty():
    assert TRACES, "expected committed traces under tests/check/traces/"


@pytest.mark.parametrize("path", TRACES, ids=lambda p: p.stem)
def test_committed_trace_replays(path):
    assert_trace(path)


class TestTraceFormat:
    def test_round_trip_through_disk(self, tmp_path):
        trace = Trace(
            scenario="classic-crash",
            choices=[0, 1],
            invariants=["agreement"],
            mutations=["pr3-round-failed-leak"],
            description="synthetic",
        )
        path = save_trace(trace, tmp_path / "t.json")
        assert load_trace(path) == trace

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"version": 999, "scenario": "x", "choices": []}')
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_unknown_mutation_is_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"version": 1, "scenario": "classic-crash", "choices": [],'
            ' "mutations": ["no-such-bug"]}'
        )
        with pytest.raises(ValueError, match="no-such-bug"):
            load_trace(path)

    def test_clean_witness_trace_passes(self):
        trace = Trace(
            scenario="classic-interleaving", choices=[], expect="clean"
        )
        _, violations = replay(trace)
        assert violations == []
