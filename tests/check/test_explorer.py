"""Explorer mechanics: branching, dedup, budgets, and shrinking.

A synthetic scenario with a hand-authored choice tree makes the search
behaviour exactly predictable; one test at the end runs a real (tiny)
deployment scenario to keep the two halves glued together.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.check.choices import choose
from repro.check.explorer import Explorer, run_fingerprint
from repro.check.invariants import RunRecord
from repro.check.scenarios import (
    InterleavingScenario,
    Scenario,
    ShardedOrderingScenario,
)


def _stub_record(fingerprint: str, pending_rounds: int = 0) -> RunRecord:
    """A RunRecord over stubs, shaped like what run_fingerprint/invariants read."""
    server = SimpleNamespace(
        crashed=False,
        log=SimpleNamespace(height=1, head_hash=fingerprint.encode("utf-8")),
        commitment=SimpleNamespace(pending_round_count=lambda: pending_rounds),
    )
    system = SimpleNamespace(
        sim=SimpleNamespace(loop=SimpleNamespace(fingerprint=lambda: fingerprint)),
        servers={"s0": server},
    )
    return RunRecord(system=system)


class ToyBuggyScenario(Scenario):
    """Three binary choices; exactly the pick sequence [1, 0, 1] is buggy."""

    name = "toy-buggy"
    invariants = ["round-state-released"]

    def run(self) -> RunRecord:
        picks = [choose(f"toy/{i}", 2, 0) for i in range(3)]
        return _stub_record(
            fingerprint="".join(map(str, picks)),
            pending_rounds=1 if picks == [1, 0, 1] else 0,
        )


class ToyCollapsingScenario(Scenario):
    """One 3-way choice whose alternatives all reach the same final state."""

    name = "toy-collapsing"
    invariants = ["round-state-released"]

    def run(self) -> RunRecord:
        choose("toy/only", 3, 0)
        return _stub_record(fingerprint="same-everywhere")


class TestSearch:
    def test_bfs_finds_and_minimizes_the_buggy_schedule(self):
        result = Explorer(ToyBuggyScenario, max_runs=50).explore()
        assert not result.clean
        [cex] = result.counterexamples
        assert cex.minimized
        assert cex.picks == [1, 0, 1]
        assert cex.invariants == ["round-state-released"]

    def test_dfs_also_finds_it(self):
        result = Explorer(ToyBuggyScenario, max_runs=50, strategy="dfs").explore()
        assert not result.clean

    def test_exhaustive_exploration_of_a_clean_tree_terminates(self):
        class CleanScenario(ToyBuggyScenario):
            def run(self):
                picks = [choose(f"toy/{i}", 2, 0) for i in range(3)]
                return _stub_record("".join(map(str, picks)))

        result = Explorer(CleanScenario, max_runs=100).explore()
        assert result.clean
        assert not result.budget_exhausted
        # All 2^3 behaviours reached: 8 terminal fingerprints plus the
        # distinct tree nodes along the way.
        assert result.runs == 8
        assert result.distinct_states >= 8

    def test_terminal_dedup_stops_expansion(self):
        result = Explorer(ToyCollapsingScenario, max_runs=100).explore()
        # Default run + two alternatives; collapsing terminals are not
        # re-expanded, so the search stops at exactly 3 runs.
        assert result.runs == 3
        # 3 distinct tree nodes + 1 shared terminal state.
        assert result.distinct_states == 4

    def test_run_budget_is_respected(self):
        result = Explorer(ToyBuggyScenario, max_runs=2, minimize=False).explore()
        assert result.runs == 2
        assert result.budget_exhausted

    def test_state_budget_is_respected(self):
        result = Explorer(ToyBuggyScenario, max_runs=100, max_states=3).explore()
        assert result.budget_exhausted
        assert result.distinct_states >= 3

    def test_max_depth_limits_deviation_sites(self):
        # Deviations allowed only at choice index 0: the buggy [1, 0, 1]
        # needs a deviation at index 2, so a depth-1 search stays clean.
        result = Explorer(ToyBuggyScenario, max_runs=100, max_depth=1).explore()
        assert result.clean
        assert result.runs == 2  # default run + the one index-0 alternative


class TestMinimization:
    def test_non_minimal_counterexample_shrinks(self):
        explorer = Explorer(ToyBuggyScenario, max_runs=10)
        from repro.check.explorer import Counterexample

        fat = Counterexample(
            scenario="toy-buggy",
            picks=[1, 0, 1],  # already minimal: every pick is load-bearing
            violations=[],
        )
        fat.violations = explorer._violations(
            ToyBuggyScenario.invariants, _stub_record("101", pending_rounds=1)
        )
        shrunk = explorer.minimize(fat)
        assert shrunk.minimized
        assert shrunk.picks == [1, 0, 1]

    def test_trailing_defaults_are_dropped(self):
        class TailBuggy(Scenario):
            name = "toy-tail"
            invariants = ["round-state-released"]

            def run(self):
                picks = [choose(f"toy/{i}", 2, 0) for i in range(4)]
                return _stub_record(
                    "".join(map(str, picks)),
                    pending_rounds=1 if picks[0] == 1 else 0,
                )

        result = Explorer(TailBuggy, max_runs=50).explore()
        [cex] = result.counterexamples
        assert cex.picks == [1]


class TestFingerprints:
    def test_fingerprint_distinguishes_states(self):
        assert run_fingerprint(_stub_record("a")) != run_fingerprint(_stub_record("b"))
        assert run_fingerprint(_stub_record("a")) == run_fingerprint(_stub_record("a"))

    def test_crashed_servers_fingerprint_without_a_log(self):
        record = _stub_record("x")
        record.system.servers["s0"].crashed = True
        record.system.servers["s0"].log = None  # must not be touched
        assert run_fingerprint(record)


class TestRealScenario:
    def test_tiny_interleaving_budget_is_clean(self):
        result = Explorer(InterleavingScenario, max_runs=4).explore()
        assert result.clean
        assert result.runs == 4
        assert result.distinct_states > 4

    def test_sharded_ordering_default_run_merges_two_epochs(self):
        from repro.check.choices import ChoiceSource, driven_by

        scenario = ShardedOrderingScenario()
        with driven_by(ChoiceSource(features=scenario.features)) as source:
            record = scenario.run()
        assert record.notes["epochs"] == 2
        assert record.notes["shard_chains_ok"]
        merges = [p for p in source.trace if p.label == "ordserv/epoch-merge"]
        # Both cross-shard transactions find two live lanes to interleave.
        assert len(merges) >= 2
        assert all(point.options >= 2 for point in merges)

    def test_sharded_ordering_exploration_is_clean_past_1000_states(self):
        # The PR's acceptance budget: cross-shard lane interleavings (plus
        # delivery order) stay invariant-clean across >= 1000 distinct states.
        result = Explorer(ShardedOrderingScenario, max_runs=120).explore()
        assert result.clean
        assert result.distinct_states >= 1000
        assert result.choice_points > 0
