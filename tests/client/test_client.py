"""Tests for the client run-time library (transaction life-cycle of Figure 5)."""

from __future__ import annotations

import pytest

from repro.common.timestamps import Timestamp
from repro.txn.operations import ReadOp, WriteOp


class TestClientLifecycle:
    def test_read_your_own_cluster_values(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        item = small_system.shard_map.all_items()[0]
        assert client.read(session, item) == 0

    def test_commit_returns_verified_outcome(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        item = small_system.shard_map.all_items()[0]
        client.read(session, item)
        client.write(session, item, 42)
        outcome = client.commit(session)
        assert outcome.committed
        assert outcome.cosign_verified
        assert outcome.block_height == 0

    def test_committed_value_visible_to_next_transaction(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 42)])
        outcome = small_system.run_transaction([ReadOp(item)])
        assert outcome.committed
        client = small_system.client(0)
        session = client.begin()
        assert client.read(session, item) == 42

    def test_clock_advances_past_observed_timestamps(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([WriteOp(item, 1)])
        client = small_system.client(0)
        session = client.begin()
        client.read(session, item)
        before = client.clock.current()
        outcome = client.commit(session)
        assert outcome.committed
        assert client.clock.current() > before

    def test_sessions_have_unique_txn_ids(self, small_system):
        client = small_system.client(0)
        assert client.begin().txn_id != client.begin().txn_id

    def test_two_clients_have_distinct_identities(self, small_system):
        assert small_system.client(0).client_id != small_system.client(1).client_id

    def test_blind_write_records_old_value(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        item = small_system.shard_map.all_items()[0]
        client.write(session, item, 77)
        txn = session.build_transaction(Timestamp(50, client.client_id))
        entry = txn.write_entry(item)
        assert entry.blind
        assert entry.old_value == 0

    def test_read_then_write_is_not_blind(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        item = small_system.shard_map.all_items()[0]
        client.read(session, item)
        client.write(session, item, 77)
        txn = session.build_transaction(Timestamp(50, client.client_id))
        entry = txn.write_entry(item)
        assert not entry.blind
        assert entry.old_value is None

    def test_queued_outcome_with_batching(self, batched_system):
        client = batched_system.client(0)
        session = client.begin()
        item = batched_system.shard_map.all_items()[0]
        client.write(session, item, 5)
        outcome = client.commit(session)
        assert outcome.pending
        flushed = batched_system.flush()
        resolved = client.interpret_outcome(outcome.txn_id, flushed)
        assert resolved.committed


class TestSession:
    def test_session_cannot_be_reused_after_commit(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        item = small_system.shard_map.all_items()[0]
        client.write(session, item, 1)
        client.commit(session)
        with pytest.raises(Exception):
            client.read(session, item)

    def test_observed_timestamps_cover_reads_and_writes(self, small_system):
        client = small_system.client(0)
        session = client.begin()
        items = small_system.shard_map.all_items()
        client.read(session, items[0])
        client.write(session, items[1], 9)
        assert len(session.observed_timestamps()) == 4
