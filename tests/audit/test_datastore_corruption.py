"""Lemma 2 / Scenario 3: datastore corruption is detected via MHT authentication."""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.server.faults import DatastoreCorruptionFault
from repro.txn.operations import ReadOp, WriteOp


def committed_item_on(system, server_id):
    """Return an (item, block_height) pair for a write committed on ``server_id``."""
    for block in reversed(system.server(server_id).log.blocks):
        if not block.is_commit:
            continue
        for txn in block.transactions:
            for entry in txn.write_set:
                if system.shard_map.server_for(entry.item_id) == server_id:
                    return entry.item_id, block.height
    raise AssertionError(f"no committed write found on {server_id}")


class TestDatastoreCorruptionDetection:
    def test_direct_corruption_detected_and_attributed(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=31)
        small_system.run_workload(workload.generate(5))
        item, height = committed_item_on(small_system, "s1")
        small_system.server("s1").store.corrupt(item, 424242)
        report = small_system.audit()
        assert not report.ok
        violations = report.violations_of(ViolationType.DATASTORE_CORRUPTION)
        assert violations
        assert all(v.culprits == ("s1",) for v in violations)
        assert any(v.item_id == item for v in violations)

    def test_fault_policy_corruption_detected(self, small_system):
        item = small_system.shard_map.items_of("s2")[0]
        small_system.inject_fault(
            "s2", DatastoreCorruptionFault(corruptions={item: -999})
        )
        assert small_system.run_transaction([ReadOp(item), WriteOp(item, 7)]).committed
        report = small_system.audit()
        assert not report.ok
        assert "s2" in report.culprit_servers()

    def test_exhaustive_audit_pinpoints_corruption_version(self, small_system):
        """Multi-versioned policy: the precise corrupted version is identified."""
        item = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 1)])
        small_system.run_transaction([ReadOp(item), WriteOp(item, 2)])
        small_system.run_transaction([ReadOp(item), WriteOp(item, 3)])
        # Corrupt the *latest* stored version; earlier versions stay intact.
        small_system.server("s1").store.corrupt(item, 666)
        auditor = small_system.auditor()
        logs = auditor.collect_logs()
        from repro.audit.report import AuditReport

        report = AuditReport()
        reference = auditor.check_logs(logs, report)
        corrupted_height = auditor.find_corruption_version("s1", reference)
        assert corrupted_height == 2  # the block whose version no longer authenticates

    def test_other_servers_stay_clean(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=32)
        small_system.run_workload(workload.generate(5))
        item, _ = committed_item_on(small_system, "s1")
        small_system.server("s1").store.corrupt(item, 31337)
        report = small_system.audit()
        assert report.culprit_servers() == ("s1",)
