"""Malicious-client defence: servers archive signed client requests (Section 3.2)."""

from __future__ import annotations


from repro.net.message import MessageType
from repro.txn.operations import ReadOp, WriteOp


class TestClientMessageArchive:
    def test_servers_keep_signed_client_requests(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 5)])
        archive = small_system.server("s1").execution.client_message_log
        assert archive, "server should archive client messages"
        # Every archived envelope is signed by the client and verifies, so the
        # server can later prove what the client actually asked for.
        assert all(small_system.network.verify_envelope(env) for env in archive)
        assert any(env.message_type is MessageType.WRITE for env in archive)

    def test_coordinator_keeps_end_transaction_requests(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([WriteOp(item, 5)])
        archive = small_system.server("s0").execution.client_message_log
        end_requests = [e for e in archive if e.message_type is MessageType.END_TRANSACTION]
        assert end_requests
        assert all(small_system.network.verify_envelope(env) for env in end_requests)

    def test_archived_requests_name_the_client(self, small_system):
        item = small_system.shard_map.items_of("s1")[0]
        small_system.run_transaction([WriteOp(item, 5)], client_index=1)
        archive = small_system.server("s1").execution.client_message_log
        assert all(env.sender == "c1" for env in archive)
