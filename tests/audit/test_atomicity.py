"""Lemma 5: atomicity violations (forked decisions) are detected in the audit."""

from __future__ import annotations

from dataclasses import replace


from repro.audit.violations import ViolationType
from repro.ledger.block import BlockDecision
from repro.txn.operations import ReadOp, WriteOp


class TestAtomicityViolationDetection:
    def _fork_last_block(self, system, server_id):
        """Give ``server_id`` a conflicting last block (commit flipped to abort).

        This models the state after a coordinator equivocation where the
        servers in one group logged a block that the rest of the cluster never
        co-signed (Figure 8): the forged copy cannot carry a valid collective
        signature because the signature is bound to the other block.
        """
        log = system.server(server_id).log
        height = len(log) - 1
        original = log[height]
        forked = replace(original, decision=BlockDecision.ABORT, roots={})
        log.tamper_replace(height, forked)

    def test_forked_decision_detected(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=71)
        small_system.run_workload(workload.generate(4))
        self._fork_last_block(small_system, "s2")
        report = small_system.audit()
        assert not report.ok
        atomicity = report.violations_of(ViolationType.ATOMICITY_VIOLATION)
        assert atomicity, report.summary()
        assert atomicity[0].culprits == ("s2",)
        assert atomicity[0].block_height == 3

    def test_majority_fork_still_detected(self, small_system, workload_factory):
        """Even n-1 colluding servers cannot hide the fork from the auditor."""
        workload = workload_factory(small_system, ops_per_txn=2, seed=72)
        small_system.run_workload(workload.generate(3))
        self._fork_last_block(small_system, "s1")
        self._fork_last_block(small_system, "s2")
        report = small_system.audit()
        assert report.reference_log_server == "s0"
        assert set(report.culprit_servers()) == {"s1", "s2"}

    def test_malformed_commit_block_detected(self, small_system):
        """A commit block missing an involved server's root is flagged (Section 4.3.2).

        Such a block can only end up in the replicated log if every server
        colluded in signing it, so the structural check is exercised directly
        on the reference log replay rather than via co-sign verification.
        """
        from repro.audit.report import AuditReport
        from repro.ledger.log import TransactionLog

        item = small_system.shard_map.items_of("s1")[0]
        assert small_system.run_transaction([ReadOp(item), WriteOp(item, 1)]).committed
        honest_block = small_system.server("s0").log[0]
        malformed = replace(honest_block, roots={})
        reference = TransactionLog([malformed])

        auditor = small_system.auditor()
        report = AuditReport()
        auditor.check_transactions(reference, report)
        malformed_violations = report.violations_of(ViolationType.MALFORMED_BLOCK)
        assert malformed_violations
        assert "s1" in malformed_violations[0].culprits
