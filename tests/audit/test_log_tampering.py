"""Lemma 6: tampered or reordered log copies are detected and attributed."""

from __future__ import annotations

from dataclasses import replace


from repro.audit.violations import ViolationType
from repro.server.faults import LogTamperFault
from repro.txn.operations import ReadOp, WriteOp


class TestLogTamperingDetection:
    def test_value_tampering_detected(self, small_system, run_history):
        run_history(small_system)
        log = small_system.server("s1").log
        block = log[2]
        txn = block.transactions[0]
        forged_entry = replace(txn.write_set[0], new_value="__forged__")
        forged_txn = replace(txn, write_set=(forged_entry,))
        log.tamper_replace(2, replace(block, transactions=(forged_txn,)))

        report = small_system.audit()
        assert not report.ok
        tampered = report.violations_of(ViolationType.LOG_TAMPERED)
        assert tampered
        assert tampered[0].culprits == ("s1",)
        assert tampered[0].block_height == 2
        # The reference log still comes from a correct server.
        assert report.reference_log_server in ("s0", "s2")
        assert report.reference_log_length == 5

    def test_reordering_detected(self, small_system, run_history):
        run_history(small_system)
        small_system.server("s2").log.tamper_reorder(1, 3)
        report = small_system.audit()
        assert not report.ok
        assert any(
            v.kind is ViolationType.LOG_TAMPERED and "s2" in v.culprits
            for v in report.violations
        )

    def test_fault_policy_tampering_detected(self, small_system, run_history):
        run_history(small_system, count=3, seed=52)
        small_system.inject_fault("s1", LogTamperFault(target_height=1))
        # The fault rewrites history right after the next block is appended.
        item = small_system.shard_map.items_of("s0")[0]
        assert small_system.run_transaction([ReadOp(item), WriteOp(item, 5)]).committed
        report = small_system.audit()
        assert not report.ok
        assert "s1" in report.culprit_servers()

    def test_all_but_one_server_tampered_still_detected(self, small_system, run_history):
        """n-1 faulty servers: the single correct copy is found and the rest exposed."""
        run_history(small_system, count=4, seed=53)
        small_system.server("s1").log.tamper_reorder(0, 1)
        small_system.server("s2").log.truncate(1)
        report = small_system.audit()
        assert report.reference_log_server == "s0"
        assert report.reference_log_length == 4
        assert "s1" in report.culprit_servers()
        assert "s2" in report.culprit_servers()
        assert "s0" not in report.culprit_servers()
