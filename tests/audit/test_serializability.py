"""Lemma 3: serializability (isolation) violations are detected and attributed."""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.server.faults import IsolationViolationFault
from repro.txn.operations import ReadOp, WriteOp


class TestIsolationViolationDetection:
    def _commit_stale_transaction(self, system):
        """A malicious server skips validation, letting a stale transaction commit."""
        item = system.shard_map.items_of("s1")[0]
        # Seed the item with a committed value.
        assert system.run_transaction([ReadOp(item), WriteOp(item, 10)]).committed

        # Client 1 reads the item now...
        client = system.client(1)
        session = client.begin()
        client.read(session, item)

        # ...then client 0 commits a newer write, making client 1's read stale.
        assert system.run_transaction([ReadOp(item), WriteOp(item, 20)]).committed

        # The server storing the item stops validating, so the stale
        # transaction commits instead of aborting.
        system.inject_fault("s1", IsolationViolationFault())
        client.write(session, item, 30)
        outcome = client.commit(session)
        assert outcome.committed
        return item

    def test_auditor_detects_isolation_violation(self, small_system):
        item = self._commit_stale_transaction(small_system)
        report = small_system.audit()
        assert not report.ok
        violations = report.violations_of(ViolationType.ISOLATION_VIOLATION)
        assert violations, report.summary()
        assert any(v.item_id == item for v in violations)
        assert any("s1" in v.culprits for v in violations)

    def test_violation_is_located_in_history(self, small_system):
        self._commit_stale_transaction(small_system)
        report = small_system.audit()
        height = report.first_violation_height()
        assert height is not None
        # Blocks 0 and 1 are the honest commits; the stale commit is block 2.
        assert height == 2

    def test_honest_execution_has_no_isolation_violations(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=41)
        small_system.run_workload(workload.generate(6))
        report = small_system.audit()
        assert report.violations_of(ViolationType.ISOLATION_VIOLATION) == []
