"""Lemma 7: logs with missing tails are detected and attributed."""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.server.faults import LogTruncationFault
from repro.txn.operations import ReadOp, WriteOp


class TestLogTruncationDetection:
    def test_truncated_copy_detected(self, small_system, run_history):
        run_history(small_system, count=5, seed=61)
        small_system.server("s2").log.truncate(2)
        report = small_system.audit()
        assert not report.ok
        incomplete = report.violations_of(ViolationType.LOG_INCOMPLETE)
        assert incomplete
        assert incomplete[0].culprits == ("s2",)
        # The violation records where the tail went missing.
        assert incomplete[0].block_height == 2
        assert report.reference_log_length == 5

    def test_truncation_via_fault_policy(self, small_system, run_history):
        run_history(small_system, count=3, seed=62)
        small_system.inject_fault("s1", LogTruncationFault(keep_blocks=1))
        item = small_system.shard_map.items_of("s0")[0]
        assert small_system.run_transaction([ReadOp(item), WriteOp(item, 1)]).committed
        report = small_system.audit()
        assert not report.ok
        assert any(
            v.kind is ViolationType.LOG_INCOMPLETE and "s1" in v.culprits
            for v in report.violations
        )

    def test_reference_log_survives_majority_truncation(self, small_system, run_history):
        run_history(small_system, count=4, seed=63)
        small_system.server("s0").log.truncate(1)
        small_system.server("s1").log.truncate(2)
        report = small_system.audit()
        assert report.reference_log_server == "s2"
        assert report.reference_log_length == 4
        assert set(report.culprit_servers()) == {"s0", "s1"}
