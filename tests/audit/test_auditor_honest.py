"""Audits of honest executions must come back clean (verifiable ACID, Theorem 1)."""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.txn.operations import ReadOp, WriteOp


class TestHonestAudit:
    def test_empty_history_audits_clean(self, small_system):
        report = small_system.audit()
        assert report.ok
        assert report.blocks_audited == 0

    def test_honest_workload_audits_clean(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=21)
        small_system.run_workload(workload.generate(6))
        report = small_system.audit()
        assert report.ok, report.summary()
        assert report.blocks_audited == 6
        assert report.transactions_audited == 6
        assert report.culprit_servers() == ()

    def test_honest_batched_workload_audits_clean(self, batched_system, workload_factory):
        workload = workload_factory(batched_system, ops_per_txn=2, window=4, seed=22)
        batched_system.run_workload(workload.generate(8))
        report = batched_system.audit()
        assert report.ok, report.summary()
        assert report.blocks_audited == 2
        assert report.transactions_audited == 8

    def test_exhaustive_datastore_audit_of_honest_run(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=23)
        small_system.run_workload(workload.generate(4))
        report = small_system.auditor().run_audit(datastore_mode="all")
        assert report.ok, report.summary()

    def test_aborted_transactions_do_not_trip_the_audit(self, small_system):
        item = small_system.shard_map.all_items()[0]
        small_system.run_transaction([ReadOp(item), WriteOp(item, 1)])
        client = small_system.client(1)
        session = client.begin()
        client.read(session, item)
        small_system.run_transaction([ReadOp(item), WriteOp(item, 2)])
        assert client.commit(session).status == "aborted"
        report = small_system.audit()
        assert report.ok, report.summary()

    def test_report_summary_mentions_reference_log(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=24)
        small_system.run_workload(workload.generate(3))
        report = small_system.audit()
        summary = report.summary()
        assert "reference log" in summary
        assert "violations: 0" in summary

    def test_report_queries(self, small_system, workload_factory):
        workload = workload_factory(small_system, ops_per_txn=2, seed=25)
        small_system.run_workload(workload.generate(2))
        report = small_system.audit()
        assert report.violations_of(ViolationType.INCORRECT_READ) == []
        assert report.first_violation_height() is None
