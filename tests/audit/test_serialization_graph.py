"""Tests for the serialization graph (Lemma 3 support)."""

from __future__ import annotations

from repro.audit.serialization_graph import SerializationGraph
from repro.common.timestamps import Timestamp
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def make_txn(txn_id, counter, reads=(), writes=()):
    zero = Timestamp.zero()
    return Transaction(
        txn_id=txn_id,
        client_id="c0",
        commit_ts=Timestamp(counter, "c0"),
        read_set=[ReadSetEntry(i, 0, zero, zero) for i in reads],
        write_set=[WriteSetEntry(i, 1) for i in writes],
    )


class TestSerializationGraph:
    def test_conflicting_transactions_get_an_edge(self):
        t1 = make_txn("t1", 1, writes=["x"])
        t2 = make_txn("t2", 2, reads=["x"])
        graph = SerializationGraph.from_transactions([t1, t2])
        assert "t2" in graph.successors("t1")
        assert graph.is_serializable()

    def test_independent_transactions_have_no_edges(self):
        t1 = make_txn("t1", 1, writes=["x"])
        t2 = make_txn("t2", 2, writes=["y"])
        graph = SerializationGraph.from_transactions([t1, t2])
        assert graph.edge_count == 0

    def test_timestamp_ordered_history_is_acyclic(self):
        txns = [make_txn(f"t{i}", i + 1, reads=["x"], writes=["x"]) for i in range(5)]
        graph = SerializationGraph.from_transactions(txns)
        assert graph.is_serializable()
        assert graph.find_cycle() is None

    def test_manual_cycle_detected(self):
        graph = SerializationGraph()
        for name in ("a", "b", "c"):
            graph.add_transaction(make_txn(name, 1))
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert not graph.is_serializable()
        assert set(cycle) >= {"a", "b", "c"}

    def test_self_loop_detected(self):
        graph = SerializationGraph()
        graph.add_transaction(make_txn("a", 1))
        graph.add_edge("a", "a")
        assert not graph.is_serializable()

    def test_node_and_edge_counts(self):
        t1 = make_txn("t1", 1, writes=["x"])
        t2 = make_txn("t2", 2, reads=["x"], writes=["y"])
        t3 = make_txn("t3", 3, reads=["y"])
        graph = SerializationGraph.from_transactions([t1, t2, t3])
        assert graph.node_count == 3
        assert graph.edge_count == 2
