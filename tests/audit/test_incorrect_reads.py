"""Lemma 1 / Scenario 1: incorrect read values are detected and attributed."""

from __future__ import annotations


from repro.audit.violations import ViolationType
from repro.server.faults import StaleReadFault
from repro.txn.operations import ReadOp, WriteOp


class TestIncorrectReadDetection:
    def _commit_then_lie(self, system):
        """Commit a known value, then make its server lie about it to the next reader."""
        item = system.shard_map.items_of("s1")[0]
        assert system.run_transaction([ReadOp(item), WriteOp(item, 1000)]).committed
        system.inject_fault("s1", StaleReadFault(target_item=item, wrong_value=0))
        # The next transaction reads the stale value 0 (with fresh timestamps,
        # as in the paper's Figure 10 example) and still commits.
        outcome = system.run_transaction([ReadOp(item), WriteOp(item, 900)], client_index=1)
        assert outcome.committed
        return item

    def test_auditor_detects_incorrect_read(self, small_system):
        item = self._commit_then_lie(small_system)
        report = small_system.audit()
        assert not report.ok
        violations = report.violations_of(ViolationType.INCORRECT_READ)
        assert violations, report.summary()
        violation = violations[0]
        assert violation.item_id == item
        assert violation.culprits == ("s1",)
        # The precise point in history: the block holding the lying read.
        assert violation.block_height == 1

    def test_honest_servers_are_not_blamed(self, small_system):
        self._commit_then_lie(small_system)
        report = small_system.audit()
        assert "s0" not in report.culprit_servers()
        assert "s2" not in report.culprit_servers()

    def test_bank_example_from_the_paper(self, small_system):
        """Figure 10: two $100 withdrawals, the second sees a stale balance."""
        account_x = small_system.shard_map.items_of("s1")[0]
        account_y = small_system.shard_map.items_of("s2")[0]
        # Fund the accounts.
        small_system.run_transaction([WriteOp(account_x, 1000), WriteOp(account_y, 500)])
        # T1 withdraws $100 from both accounts.
        assert small_system.run_transaction(
            [ReadOp(account_x), ReadOp(account_y), WriteOp(account_x, 900), WriteOp(account_y, 400)]
        ).committed
        # The server storing x now replays the pre-withdrawal balance.
        small_system.inject_fault("s1", StaleReadFault(target_item=account_x, wrong_value=1000))
        # T2 withdraws another $100 using the stale balance.
        assert small_system.run_transaction(
            [ReadOp(account_x), WriteOp(account_x, 900)], client_index=1
        ).committed
        report = small_system.audit()
        incorrect_reads = report.violations_of(ViolationType.INCORRECT_READ)
        assert any(v.item_id == account_x and "s1" in v.culprits for v in incorrect_reads)
