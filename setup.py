"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in the
offline reproduction environment, which lacks the ``wheel`` package needed
for PEP 660 editable installs.
"""

from setuptools import setup

setup()
