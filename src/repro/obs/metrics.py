"""Counters, gauges, and bucketed histograms -- the numeric half of ``obs``.

Metric names are dotted ``subsystem.measurement[.unit]`` strings
(``crypto.envelope_sign.s``, ``net.bytes_total``, ``storage.mht_hashes``;
the full naming scheme is DESIGN.md section 12).  The registry is a plain
dict-of-floats: recording is an ``O(1)`` dict update with no locking, no
export thread, and no sampling, so it stays enabled even when tracing is
off -- the near-zero-overhead budget is one dict write per instrument
point.

Histograms use fixed power-of-four bucket bounds (1us .. ~1s for the
default seconds-scale) so two runs of the same workload always produce
structurally identical snapshots; only the *values* differ when compute
is measured rather than fixed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Default histogram bucket upper bounds, in seconds: 1us * 4^k up to ~1s.
DEFAULT_BUCKETS = tuple(1e-6 * (4.0**k) for k in range(11))


class Histogram:
    """Fixed-bound bucketed histogram with count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            tuple(self.bounds) == tuple(other.bounds)
            and self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def to_wire(self) -> Dict:  # lint: allow
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """All counters, gauges, and histograms for one run, by dotted name."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------------

    def counter(self, name: str, delta: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # -- reading --------------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def counters_matching(self, prefix: str) -> Dict[str, float]:
        return {
            name: value
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict:
        """One JSON-ready dict holding every metric recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: histogram.to_wire()
                for name, histogram in sorted(self._histograms.items())
            },
        }
