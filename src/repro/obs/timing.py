"""The sanctioned compute-measurement primitive for protocol code.

Protocol packages may not call ``time.perf_counter()`` directly (the
``adhoc-timing`` lint rule, DESIGN.md section 12): raw deltas scattered
through handlers are invisible to the observability layer and tempt code
into treating wall time as protocol state.  They use a :class:`Stopwatch`
instead -- the one place in the library that reads the process clock for
duration measurement.  The measured values feed ``compute_time`` fields
and metrics only; virtual time (the event loop) remains the sole notion
of *protocol* time.
"""

from __future__ import annotations

from time import perf_counter


class Stopwatch:
    """Measures elapsed wall-clock compute time; started on construction."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return perf_counter() - self._started

    def split(self) -> float:
        """Seconds since the last mark, and restart the watch."""
        now = perf_counter()
        elapsed = now - self._started
        self._started = now
        return elapsed

    def restart(self) -> None:
        self._started = perf_counter()
