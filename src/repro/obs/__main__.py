"""Trace toolbox: ``python -m repro.obs <command> <trace.jsonl> [...]``.

Commands (all read the JSONL export format, the round-trip source of
truth; ``convert`` also reads a Chrome trace back):

``summarize``
    Per-phase virtual-time attribution, span counts by category, and the
    status mix -- the quick "where did the time go" view.

``validate``
    Run the trace invariants (well-nested, every span closed); exit 1 on
    any violation.

``fingerprint``
    Print the deterministic trace fingerprint (same seed -> same hash).

``convert``
    JSONL -> Chrome trace-event JSON (``--to chrome``, default) or the
    reverse (``--to jsonl``), for loading into Perfetto and back.

``diff``
    Compare two traces: fingerprints, span-count deltas, and per-phase
    attribution deltas.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.trace import Tracer, spans_from_chrome


def _load(path: Path) -> Tracer:
    text = path.read_text()
    # A Chrome trace is one JSON document; a JSONL export is one document
    # *per line* (so whole-file parsing fails with "Extra data" on it).
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        return Tracer.from_records(
            json.loads(line) for line in text.splitlines() if line.strip()
        )
    if isinstance(document, dict) and "traceEvents" in document:
        return Tracer.from_records(spans_from_chrome(document))
    # A one-line JSONL export parses as a single record document.
    return Tracer.from_records([document] if isinstance(document, dict) else document)


def _summarize(tracer: Tracer) -> str:
    lines = [f"spans: {tracer.span_count()}"]
    categories = sorted({span.category for span in tracer.spans})
    for category in categories:
        lines.append(f"  {category or '(none)'}: {tracer.span_count(category)}")
    statuses: dict = {}
    for span in tracer.spans:
        statuses[span.status] = statuses.get(span.status, 0) + 1
    lines.append(
        "statuses: "
        + ", ".join(f"{name}={count}" for name, count in sorted(statuses.items()))
    )
    attribution = tracer.phase_attribution()
    if attribution:
        lines.append("per-phase virtual time (s):")
        total = sum(attribution.values())
        for name, seconds in sorted(
            attribution.items(), key=lambda item: -item[1]
        ):
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {name:<14} {seconds:>10.6f}  ({share:5.1f}%)")
    lines.append(f"fingerprint: {tracer.fingerprint()}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, validate, fingerprint, convert, and diff traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("summarize", "validate", "fingerprint"):
        command = sub.add_parser(name)
        command.add_argument("trace", type=Path)
    convert = sub.add_parser("convert")
    convert.add_argument("trace", type=Path)
    convert.add_argument("output", type=Path)
    convert.add_argument("--to", choices=("chrome", "jsonl"), default="chrome")
    diff = sub.add_parser("diff")
    diff.add_argument("left", type=Path)
    diff.add_argument("right", type=Path)
    args = parser.parse_args(argv)

    if args.command == "summarize":
        print(_summarize(_load(args.trace)))
        return 0
    if args.command == "validate":
        problems = _load(args.trace).check_invariants()
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"{args.trace}: {len(problems)} invariant violation(s)"
            if problems
            else f"{args.trace}: trace invariants hold"
        )
        return 1 if problems else 0
    if args.command == "fingerprint":
        print(_load(args.trace).fingerprint())
        return 0
    if args.command == "convert":
        tracer = _load(args.trace)
        if args.to == "chrome":
            tracer.export_chrome(args.output)
        else:
            tracer.export_jsonl(args.output)
        print(f"wrote {tracer.span_count()} spans to {args.output}")
        return 0
    if args.command == "diff":
        left, right = _load(args.left), _load(args.right)
        same = left.fingerprint() == right.fingerprint()
        print(f"fingerprints {'match' if same else 'DIFFER'}")
        print(f"  {args.left}: {left.fingerprint()} ({left.span_count()} spans)")
        print(f"  {args.right}: {right.fingerprint()} ({right.span_count()} spans)")
        left_phases = left.phase_attribution()
        right_phases = right.phase_attribution()
        for name in sorted(set(left_phases) | set(right_phases)):
            a, b = left_phases.get(name, 0.0), right_phases.get(name, 0.0)
            if abs(a - b) > 1e-12:
                print(f"  {name}: {a:.6f}s -> {b:.6f}s ({b - a:+.6f}s)")
        return 0 if same else 1
    return 2


if __name__ == "__main__":
    sys.exit(main())
