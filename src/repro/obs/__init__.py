"""Zero-dependency observability: causal tracing + metrics (DESIGN.md §12).

One :class:`Observability` bundle rides on every :class:`~repro.sim.context.
SimContext` as ``sim.obs``, which is how all protocol layers reach it --
the network via ``attach_sim``, coordinators via their ``sim=`` parameter,
servers via ``DatabaseServer.attach_obs``.  Metrics are always on (one
dict write per instrument point); span tracing is off by default and
enabled per run (``enable_tracing()``), keeping the disabled-path cost to
a single attribute check.

The module also runs as a CLI: ``python -m repro.obs summarize|validate|
fingerprint|convert|diff <trace.jsonl>``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timing import Stopwatch
from repro.obs.trace import Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Stopwatch",
    "Tracer",
]


class Observability:
    """The per-run tracer + metrics pair every subsystem reports through."""

    def __init__(self, tracing: bool = False) -> None:
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self) -> "Observability":
        self.tracer.enabled = True
        return self

    def attribution(self, makespan: Optional[float] = None) -> Dict:
        """The bench report's per-phase / per-subsystem attribution block.

        Phase totals are virtual-time seconds from the span tree;
        subsystem totals mix virtual time (network) with measured wall
        time (crypto, storage) -- each entry says which it is by its
        metric name (DESIGN.md section 12).
        """
        crypto_s = sum(
            value
            for name, value in self.metrics.counters_matching("crypto.").items()
            if name.endswith(".s")
        )
        block: Dict = {
            "phases_s": self.tracer.phase_attribution(),
            "subsystems": {
                "crypto_wall_s": crypto_s,
                "net_bytes_total": self.metrics.counter_value("net.bytes_total"),
                "net_bytes_per_type": {
                    name[len("net.bytes."):]: value
                    for name, value in self.metrics.counters_matching(
                        "net.bytes."
                    ).items()
                },
                "net_messages": self.metrics.counter_value("net.messages"),
                "storage_mht_hashes": self.metrics.counter_value(
                    "storage.mht_hashes"
                ),
                "recovery_wal_appends": self.metrics.counter_value(
                    "recovery.wal_appends"
                ),
            },
            "metrics": self.metrics.snapshot(),
        }
        if makespan is not None:
            block["makespan_s"] = makespan
            if self.tracer.enabled:
                block["coverage"] = self.tracer.coverage(makespan)
        if self.tracer.enabled:
            block["fingerprint"] = self.tracer.fingerprint()
            block["spans"] = self.tracer.span_count()
        return block
