"""Causally-linked span tracing keyed on the virtual clock.

A :class:`Tracer` records **spans** (half-open windows of virtual time with
an explicit parent link) and **instants** (zero-width events).  The span
tree mirrors the protocol's causal structure::

    round (coordinator resource)
      txn:<id>            -- one child per transaction, covering the round
      <phase>             -- get_vote / aggregate / challenge / finalize /
        rpc:<msg type>    --   decision / prepare / order; one RPC child
                          --   per cohort, ending at that peer's round trip
      order (delivery)    -- scaled deployment only: the OrderingService
                          --   window, parented across the handoff

Parent links cross the coordinator -> cohort boundary (RPC spans carry the
cohort's server id as their resource) and the coordinator -> OrderingService
boundary (the round span is handed through ``register_inflight`` and closed
only when the ordered block is delivered).  Fault injections and
detections appear as instants, so a Perfetto timeline shows *when* a
campaign fired relative to the round that caught it.

All span times are **virtual** (scheduler/loop seconds), which is what
makes the trace deterministic: under ``FixedCompute`` the same seed yields
the same event schedule, hence the same spans, hence the same
:meth:`Tracer.fingerprint`.  Measured wall-clock values (MHT sweep time,
crypto micro-timers) ride along in ``attrs``, which the fingerprint
deliberately excludes.

Tracing is off by default; every recording method starts with an
``enabled`` check and returns ``None`` without allocating.  Exports are
JSONL (one record per line, the round-trip format) and Chrome trace-event
JSON (``{"traceEvents": [...]}``, loadable in Perfetto / chrome://tracing).

Invariants checked at export time (the dynamic twin of the static
round-state leak detector, DESIGN.md section 11):

* every opened span was closed;
* every parent link resolves to a recorded span;
* children are well-nested inside their parent's window;
* every span has ``start <= end``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Nesting tolerance: virtual times are exact floats, but allow rounding
#: noise from summed latency samples.
_NEST_EPSILON = 1e-9

KIND_SPAN = "span"
KIND_INSTANT = "instant"


@dataclass
class Span:
    """One recorded span or instant (``end == start`` for instants)."""

    span_id: int
    parent: Optional[int]
    kind: str
    name: str
    category: str
    resource: str
    pid: int
    start: float
    end: Optional[float]
    status: str = "ok"
    attrs: Dict = field(default_factory=dict)

    def to_wire(self) -> Dict:  # lint: allow
        return {
            "id": self.span_id,
            "parent": self.parent,
            "kind": self.kind,
            "name": self.name,
            "cat": self.category,
            "resource": self.resource,
            "pid": self.pid,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_wire(cls, record: Dict) -> "Span":
        return cls(
            span_id=record["id"],
            parent=record.get("parent"),
            kind=record.get("kind", KIND_SPAN),
            name=record["name"],
            category=record.get("cat", ""),
            resource=record.get("resource", ""),
            pid=record.get("pid", 0),
            start=record["start"],
            end=record.get("end"),
            status=record.get("status", "ok"),
            attrs=dict(record.get("attrs") or {}),
        )


class Tracer:
    """Span recorder; every method is a no-op while ``enabled`` is False."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.processes: List[str] = ["repro"]
        self._pid = 0
        self._next_id = 0
        self._open: Dict[int, Span] = {}

    # -- recording ------------------------------------------------------------

    def begin_process(self, name: str) -> int:
        """Start attributing spans to a new logical process (bench system)."""
        if not self.enabled:
            return 0
        self.processes.append(name)
        self._pid = len(self.processes) - 1
        return self._pid

    def _record(
        self,
        kind: str,
        name: str,
        category: str,
        resource: str,
        start: float,
        end: Optional[float],
        parent: Optional[int],
        status: str,
        attrs: Dict,
    ) -> int:
        span = Span(
            span_id=self._next_id,
            parent=parent,
            kind=kind,
            name=name,
            category=category,
            resource=resource,
            pid=self._pid,
            start=start,
            end=end,
            status=status,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span.span_id

    def open_span(
        self,
        name: str,
        category: str,
        resource: str,
        start: float,
        parent: Optional[int] = None,
        **attrs,
    ) -> Optional[int]:
        """Open a span whose end is not yet known; pair with :meth:`close_span`."""
        if not self.enabled:
            return None
        span_id = self._record(
            KIND_SPAN, name, category, resource, start, None, parent, "open", attrs
        )
        self._open[span_id] = self.spans[-1]
        return span_id

    def close_span(
        self, span_id: Optional[int], end: float, status: str = "ok", **attrs
    ) -> None:
        """Close an open span; round spans fan out one txn child each."""
        if not self.enabled or span_id is None:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = end
        span.status = status
        span.attrs.update(attrs)
        for txn_id in span.attrs.get("txns", ()):
            self._record(
                KIND_SPAN,
                f"txn:{txn_id}",
                "txn",
                span.resource,
                span.start,
                end,
                span_id,
                status,
                {},
            )

    def add_span(
        self,
        name: str,
        category: str,
        resource: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        status: str = "ok",
        **attrs,
    ) -> Optional[int]:
        """Record a span whose full window is already known."""
        if not self.enabled:
            return None
        return self._record(
            KIND_SPAN, name, category, resource, start, end, parent, status, attrs
        )

    def instant(
        self,
        name: str,
        category: str,
        resource: str,
        ts: float,
        parent: Optional[int] = None,
        **attrs,
    ) -> Optional[int]:
        """Record a zero-width event (fault injected, culprit detected, ...)."""
        if not self.enabled:
            return None
        return self._record(
            KIND_INSTANT, name, category, resource, ts, ts, parent, "ok", attrs
        )

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """All trace-structure violations (empty list = well-formed)."""
        problems: List[str] = []
        by_id = {span.span_id: span for span in self.spans}
        for span in self.spans:
            where = f"span {span.span_id} ({span.category}:{span.name})"
            if span.end is None:
                problems.append(f"{where} was opened but never closed")
                continue
            if span.end < span.start - _NEST_EPSILON:
                problems.append(
                    f"{where} ends before it starts ({span.end} < {span.start})"
                )
            if span.parent is None:
                continue
            parent = by_id.get(span.parent)
            if parent is None:
                problems.append(f"{where} links to unknown parent {span.parent}")
            elif parent.end is not None and (
                span.start < parent.start - _NEST_EPSILON
                or span.end > parent.end + _NEST_EPSILON
            ):
                problems.append(
                    f"{where} [{span.start}, {span.end}] escapes parent "
                    f"{parent.span_id} [{parent.start}, {parent.end}]"
                )
        return problems

    # -- analysis --------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic span fields.

        ``attrs`` is excluded on purpose: it carries measured wall-clock
        values (MHT sweep time, crypto micro-timers) that differ run to
        run even when the virtual-time schedule is identical.
        """
        digest = hashlib.sha256()
        for span in self.spans:
            digest.update(
                "|".join(
                    (
                        span.kind,
                        span.name,
                        span.category,
                        span.resource,
                        str(span.pid),
                        str(span.parent),
                        repr(span.start),
                        repr(span.end),
                        span.status,
                    )
                ).encode("utf-8")
            )
            digest.update(b"\n")
        return digest.hexdigest()

    def makespan(self) -> Optional[float]:
        """Latest span end time on the virtual clock (``None`` when empty)."""
        ends = [
            span.end
            for span in self.spans
            if span.kind == KIND_SPAN and span.end is not None
        ]
        return max(ends) if ends else None

    def coverage(self, makespan: float) -> float:
        """Fraction of ``[0, makespan]`` covered by the union of all spans."""
        if makespan <= 0:
            return 1.0
        windows = sorted(
            (span.start, span.end)
            for span in self.spans
            if span.kind == KIND_SPAN and span.end is not None and span.end > span.start
        )
        covered = 0.0
        cursor = 0.0
        for start, end in windows:
            start = max(start, cursor)
            if end > start:
                covered += min(end, makespan) - min(start, makespan)
                cursor = max(cursor, end)
        return covered / makespan

    def phase_attribution(self) -> Dict[str, float]:
        """Summed virtual-time duration per phase/delivery span name."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.category in ("phase", "delivery") and span.end is not None:
                totals[span.name] = totals.get(span.name, 0.0) + (
                    span.end - span.start
                )
        return dict(sorted(totals.items()))

    def span_count(self, category: Optional[str] = None) -> int:
        if category is None:
            return len(self.spans)
        return sum(1 for span in self.spans if span.category == category)

    # -- export ----------------------------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [
            json.dumps(span.to_wire(), sort_keys=True, default=str)
            for span in self.spans
        ]

    def export_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")

    @classmethod
    def from_records(cls, records: Iterable[Dict]) -> "Tracer":
        tracer = cls(enabled=True)
        for record in records:
            span = Span.from_wire(record)
            tracer.spans.append(span)
            tracer._next_id = max(tracer._next_id, span.span_id + 1)
        return tracer

    @classmethod
    def load_jsonl(cls, path) -> "Tracer":
        with open(path) as handle:
            return cls.from_records(
                json.loads(line) for line in handle if line.strip()
            )

    def chrome_trace(self) -> Dict:
        """The trace as Chrome trace-event JSON (Perfetto-loadable)."""
        events: List[Dict] = []
        threads: Dict[Tuple[int, str], int] = {}
        for pid, name in enumerate(self.processes):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for span in self.spans:
            key = (span.pid, span.resource)
            tid = threads.get(key)
            if tid is None:
                tid = threads[key] = len(threads) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": span.pid,
                        "tid": tid,
                        "args": {"name": span.resource},
                    }
                )
            args = dict(span.attrs)
            args["status"] = span.status
            args["span_id"] = span.span_id
            if span.parent is not None:
                args["parent"] = span.parent
            if span.kind == KIND_INSTANT:
                events.append(
                    {
                        "ph": "i",
                        "name": span.name,
                        "cat": span.category or "event",
                        "ts": span.start * 1e6,
                        "pid": span.pid,
                        "tid": tid,
                        "s": "p",
                        "args": args,
                    }
                )
            elif span.end is not None:
                events.append(
                    {
                        "ph": "X",
                        "name": span.name,
                        "cat": span.category or "span",
                        "ts": span.start * 1e6,
                        "dur": (span.end - span.start) * 1e6,
                        "pid": span.pid,
                        "tid": tid,
                        "args": args,
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1, default=str)
            handle.write("\n")


def spans_from_chrome(trace: Dict) -> List[Dict]:
    """Best-effort inverse of :meth:`Tracer.chrome_trace` (for the CLI)."""
    records: List[Dict] = []
    for event in trace.get("traceEvents", ()):
        if event.get("ph") not in ("X", "i"):
            continue
        start = event["ts"] / 1e6
        duration = event.get("dur", 0.0) / 1e6
        args = dict(event.get("args") or {})
        records.append(
            {
                "id": args.pop("span_id", len(records)),
                "parent": args.pop("parent", None),
                "kind": KIND_INSTANT if event["ph"] == "i" else KIND_SPAN,
                "name": event["name"],
                "cat": event.get("cat", ""),
                "resource": "",
                "pid": event.get("pid", 0),
                "start": start,
                "end": start + duration,
                "status": args.pop("status", "ok"),
                "attrs": args,
            }
        )
    return records
