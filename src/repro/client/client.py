"""The Fides client run-time library.

A :class:`FidesClient` is how an application accesses data stored on the
untrusted servers (Figure 4): it locates the server owning each item via the
shard map, sends signed begin / read / write requests directly to that
server, and sends the signed ``end_transaction`` request -- carrying the full
read and write sets -- to the designated coordinator.  When the coordinator
returns a decision, the client verifies the collective signature before
accepting it (Section 4.3.1: "even an aborted transaction must be signed by
all the servers"); a failed verification is an anomaly that should trigger an
audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.common.errors import SignatureError
from repro.common.timestamps import Timestamp, TimestampGenerator
from repro.common.types import ClientId, ItemId, Value
from repro.crypto.cosi import cosi_verify
from repro.crypto.keys import KeyPair
from repro.net.message import MessageType
from repro.net.network import Network
from repro.client.session import TransactionSession
from repro.storage.shard import ShardMap
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class CommitOutcome:
    """What the client learns about a terminated transaction."""

    txn_id: str
    status: str  # "committed", "aborted", "queued", or "failed"
    block_height: Optional[int] = None
    reason: str = ""
    cosign_verified: bool = False
    #: Virtual time the terminating block's decision landed on the simulated
    #: event timeline (``None`` for queued outcomes or sim-less deployments).
    decided_at: Optional[float] = None

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    @property
    def pending(self) -> bool:
        return self.status == "queued"


class FidesClient:
    """Application-facing client: begin / read / write / commit."""

    def __init__(
        self,
        client_id: ClientId,
        keypair: KeyPair,
        network: Network,
        shard_map: ShardMap,
        coordinator_id: str,
        coordinator_router: Optional[Callable[[Transaction], str]] = None,
    ) -> None:
        """``coordinator_router`` overrides the fixed designated coordinator:
        in the scaled deployment (Section 4.6) each transaction is terminated
        by its dynamic group's coordinator, so the router maps the built
        transaction to the server that coordinates its group."""
        self.client_id = client_id
        self.keypair = keypair
        self._network = network
        self._shard_map = shard_map
        self._coordinator_id = coordinator_id
        self._coordinator_router = coordinator_router
        self._clock = TimestampGenerator(client_id)
        self._txn_counter = 0
        network.register_observer(client_id, keypair)

    def coordinator_for(self, txn: Transaction) -> str:
        """The server this transaction's ``end_transaction`` goes to."""
        if self._coordinator_router is not None:
            return self._coordinator_router(txn)
        return self._coordinator_id

    # -- transaction life-cycle (Figure 5) ------------------------------------------

    def begin(self) -> TransactionSession:
        """Start a new transaction and return its session."""
        self._txn_counter += 1
        txn_id = f"{self.client_id}-txn-{self._txn_counter}"
        return TransactionSession(txn_id=txn_id, client_id=self.client_id)

    def read(self, session: TransactionSession, item_id: ItemId) -> Value:
        """Read ``item_id`` within ``session``; returns the value reported by the server."""
        server_id = self._shard_map.server_for(item_id)
        self._ensure_begun(session, server_id)
        response = self._network.send(
            self.client_id,
            server_id,
            MessageType.READ,
            {"txn_id": session.txn_id, "item_id": item_id},
        )
        rts = Timestamp(*response["rts"])
        wts = Timestamp(*response["wts"])
        self._clock.observe(rts)
        self._clock.observe(wts)
        session.record_read(item_id, response["value"], rts, wts)
        return response["value"]

    def write(self, session: TransactionSession, item_id: ItemId, value: Value) -> None:
        """Write ``value`` to ``item_id`` within ``session`` (buffered server-side)."""
        server_id = self._shard_map.server_for(item_id)
        self._ensure_begun(session, server_id)
        response = self._network.send(
            self.client_id,
            server_id,
            MessageType.WRITE,
            {"txn_id": session.txn_id, "item_id": item_id, "value": value},
        )
        old = response["old"]
        rts = Timestamp(*old["rts"])
        wts = Timestamp(*old["wts"])
        self._clock.observe(rts)
        self._clock.observe(wts)
        session.record_write(item_id, value, old["value"], rts, wts)

    def commit(self, session: TransactionSession) -> CommitOutcome:
        """Terminate the transaction: send ``end_transaction`` to the coordinator.

        The returned outcome is ``queued`` when the coordinator batches
        transactions into blocks and the current block is not yet full; the
        caller then learns the final outcome from a later flush (see
        :class:`~repro.core.fides.FidesSystem`).
        """
        outcome, _ = self.commit_with_response(session)
        return outcome

    def commit_with_response(self, session: TransactionSession):
        """Like :meth:`commit` but also return the coordinator's raw response.

        The raw response may carry outcomes of *other* queued transactions
        that were flushed as part of the same block; batch drivers (the
        workload runner, the benchmark harness) use it to resolve those.
        """
        for stamp in session.observed_timestamps():
            self._clock.observe(stamp)
        commit_ts = self._clock.next()
        txn = session.build_transaction(commit_ts)
        coordinator_id = self.coordinator_for(txn)
        envelope = self._network.sign_envelope(
            self._end_transaction_envelope(txn, coordinator_id)
        )
        response = self._network.send(
            self.client_id,
            coordinator_id,
            MessageType.END_TRANSACTION,
            envelope.payload,
            presigned=envelope,
        )
        return self.interpret_outcome(txn.txn_id, response), response

    def _end_transaction_envelope(self, txn: Transaction, coordinator_id: str):
        from repro.net.message import Envelope

        return Envelope(
            sender=self.client_id,
            recipient=coordinator_id,
            message_type=MessageType.END_TRANSACTION,
            payload={"transaction": txn, "commit_ts": txn.commit_ts.as_tuple()},
        )

    # -- outcome handling ----------------------------------------------------------------

    def interpret_outcome(self, txn_id: str, response: Dict) -> CommitOutcome:
        """Turn a coordinator response into a :class:`CommitOutcome`.

        If the response carries the block digest and collective signature the
        client verifies it against the public keys of all servers before
        accepting the decision.
        """
        status = response.get("status", "failed")
        if status == "queued":
            return CommitOutcome(txn_id=txn_id, status="queued")
        results = response.get("results", {})
        mine = results.get(txn_id)
        if mine is None:
            return CommitOutcome(txn_id=txn_id, status="failed", reason="no outcome for txn")
        verified = False
        cosign = mine.get("cosign")
        digest = mine.get("block_digest")
        if cosign is not None and digest is not None:
            verified = cosi_verify(cosign, digest, self._network.public_key_directory())
            if not verified:
                # An invalid co-sign on a decision is itself an anomaly the
                # client reports (it would trigger an audit, Section 4.3.1).
                raise SignatureError(
                    f"client {self.client_id}: decision for {txn_id} carries an invalid co-sign"
                )
        return CommitOutcome(
            txn_id=txn_id,
            status=mine["status"],
            block_height=mine.get("block_height"),
            reason=mine.get("reason", ""),
            cosign_verified=verified,
            decided_at=mine.get("decided_at"),
        )

    # -- helpers ------------------------------------------------------------------------------

    def _ensure_begun(self, session: TransactionSession, server_id: str) -> None:
        """Send Begin Transaction to a server the first time the session touches it."""
        if server_id in session.servers_contacted:
            return
        self._network.send(
            self.client_id,
            server_id,
            MessageType.BEGIN_TRANSACTION,
            {"txn_id": session.txn_id, "client_id": self.client_id},
        )
        session.record_server(server_id)

    @property
    def clock(self) -> TimestampGenerator:
        return self._clock
