"""Client-side run-time library.

Clients in Fides link against a small run-time library that provides a lookup
/ directory service for the database partitions and lets the application
read and write data by talking directly to the relevant database server
(Section 4.1).  :class:`~repro.client.client.FidesClient` is that library;
:class:`~repro.client.session.TransactionSession` is one in-flight
transaction.
"""

from repro.client.client import CommitOutcome, FidesClient
from repro.client.session import TransactionSession

__all__ = ["CommitOutcome", "FidesClient", "TransactionSession"]
