"""One in-flight client transaction.

A session tracks everything the client has read and written so far and turns
it into the read / write sets the coordinator needs at end-transaction time
(the ``R_set`` / ``W_set`` of Table 1).  The session follows the life-cycle of
Figure 5: begin transaction, read/write requests, end transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.common.errors import ProtocolError
from repro.common.timestamps import Timestamp
from repro.common.types import ClientId, ItemId, TxnId, Value
from repro.txn.operations import Operation, ReadOp, WriteOp
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


@dataclass
class TransactionSession:
    """Client-side state of one transaction between ``begin`` and ``commit``."""

    txn_id: TxnId
    client_id: ClientId
    _read_entries: List[ReadSetEntry] = field(default_factory=list)
    _write_entries: Dict[ItemId, WriteSetEntry] = field(default_factory=dict)
    _items_read: Set[ItemId] = field(default_factory=set)
    _servers_contacted: Set[str] = field(default_factory=set)
    finished: bool = False

    # -- recording accesses -----------------------------------------------------

    def record_read(self, item_id: ItemId, value: Value, rts: Timestamp, wts: Timestamp) -> None:
        self._ensure_open()
        self._read_entries.append(ReadSetEntry(item_id=item_id, value=value, rts=rts, wts=wts))
        self._items_read.add(item_id)

    def record_write(
        self,
        item_id: ItemId,
        new_value: Value,
        old_value: Value,
        rts: Timestamp,
        wts: Timestamp,
    ) -> None:
        """Record a write; the old value/timestamps are kept only for blind writes."""
        self._ensure_open()
        blind = item_id not in self._items_read
        self._write_entries[item_id] = WriteSetEntry(
            item_id=item_id,
            new_value=new_value,
            old_value=old_value if blind else None,
            rts=rts,
            wts=wts,
            blind=blind,
        )

    def record_server(self, server_id: str) -> None:
        self._servers_contacted.add(server_id)

    # -- views ---------------------------------------------------------------------

    @property
    def items_read(self) -> Set[ItemId]:
        return set(self._items_read)

    @property
    def items_written(self) -> Set[ItemId]:
        return set(self._write_entries)

    @property
    def servers_contacted(self) -> Set[str]:
        return set(self._servers_contacted)

    def observed_timestamps(self) -> List[Timestamp]:
        """Every rts/wts the session has seen; the client clock must exceed them all."""
        stamps: List[Timestamp] = []
        for entry in self._read_entries:
            stamps.extend([entry.rts, entry.wts])
        for entry in self._write_entries.values():
            stamps.extend([entry.rts, entry.wts])
        return stamps

    # -- termination ------------------------------------------------------------------

    def build_transaction(self, commit_ts: Timestamp) -> Transaction:
        """Assemble the terminated transaction sent to the coordinator."""
        self._ensure_open()
        self.finished = True
        return Transaction(
            txn_id=self.txn_id,
            client_id=self.client_id,
            commit_ts=commit_ts,
            read_set=tuple(self._read_entries),
            write_set=tuple(self._write_entries.values()),
        )

    def _ensure_open(self) -> None:
        if self.finished:
            raise ProtocolError(f"transaction {self.txn_id} has already been terminated")


def operations_of(session_reads: Set[ItemId], session_writes: Dict[ItemId, Value]) -> List[Operation]:
    """Helper used by tests: reconstruct an operation list from session state."""
    ops: List[Operation] = [ReadOp(item) for item in sorted(session_reads)]
    ops.extend(WriteOp(item, value) for item, value in sorted(session_writes.items()))
    return ops
