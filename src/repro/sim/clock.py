"""The virtual clock of the discrete-event simulation core.

Simulated time is decoupled from both wall-clock time and Python execution
order: the protocol code still *executes* sequentially (one synchronous call
tree per block round), but each phase is assigned a window on a shared
virtual timeline by the :mod:`repro.sim.scheduler`.  The clock holds "the
virtual time of the activity currently executing", so code running inside a
phase handler -- fault hooks, network message recording -- can stamp itself
onto the timeline without knowing anything about the scheduler.

Because execution order and timeline order differ once rounds pipeline or
coordinators interleave, the clock is *not* globally monotone: scheduling
coordinator B's first phase after coordinator A's third may legitimately move
it backwards.  Consumers must treat ``now`` as "the time at which the current
activity occurs", never as a monotone sequence number (the event loop's
``seq`` counter provides that).
"""

from __future__ import annotations


class VirtualClock:
    """Holds the virtual time of the currently executing activity."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def set(self, time: float) -> None:
        """Jump to ``time`` (backwards jumps are legal; see module docstring)."""
        self._now = float(time)

    def advance(self, delta: float) -> float:
        """Move forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance the clock by a negative delta ({delta})")
        self._now += delta
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
