"""The simulation context: one bundle of clock + event loop + scheduler.

A :class:`SimContext` is created per deployment (one per
:class:`~repro.core.fides.FidesSystem`) and threaded through everything that
touches simulated time: protocol coordinators schedule their phases on it,
the network stamps message records with its clock, fault hooks read the
clock to fire time-based triggers, and the benchmark harness reads the
makespan off it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import Observability
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop
from repro.sim.scheduler import PipelinedRoundScheduler

#: A compute model maps ``(phase, measured_seconds)`` to the compute charge
#: actually used for scheduling.  ``None`` keeps the measured value (the
#: default hybrid simulated-time model).
ComputeModel = Callable[[str, float], float]


class FixedCompute:
    """Deterministic compute model: every phase costs a fixed time.

    Replaces the *measured* (wall-clock, hence noisy) compute charges with a
    constant so that two runs with the same seed produce byte-identical
    timelines -- the determinism test suite runs under this model.  Network
    latency stays governed by the (already deterministic) seeded
    ``LatencyModel``.
    """

    def __init__(self, seconds: float = 0.0) -> None:
        if seconds < 0:
            raise ValueError("fixed compute time must be >= 0")
        self.seconds = seconds

    def __call__(self, phase: str, measured: float) -> float:
        return self.seconds


class SimContext:
    """Everything one deployment needs to live on a shared virtual timeline."""

    def __init__(
        self,
        seed: int = 2020,
        pipeline_depth: int = 1,
        compute_model: Optional[ComputeModel] = None,
    ) -> None:
        self.loop = EventLoop(seed=seed)
        self.clock = VirtualClock()
        self.scheduler = PipelinedRoundScheduler(
            self.loop, clock=self.clock, pipeline_depth=pipeline_depth
        )
        self.compute_model = compute_model
        #: The observability bundle every sim-threaded component reports
        #: through (metrics always on, tracing off until enabled); the
        #: deployment layer may replace it with a shared bench-run bundle.
        self.obs = Observability()

    @property
    def pipeline_depth(self) -> int:
        return self.scheduler.pipeline_depth

    @property
    def makespan(self) -> float:
        """Virtual duration of everything scheduled so far, in seconds."""
        return self.loop.horizon

    def effective_compute(self, phase: str, measured: float) -> float:
        """The compute charge used for scheduling (model-overridden if set)."""
        if self.compute_model is None:
            return measured
        return self.compute_model(phase, measured)

    def drain(self):
        """Fire pending events in deterministic order; returns them."""
        return self.loop.run_until_idle()

    def fingerprint(self) -> str:
        """Determinism fingerprint of the full timeline (see EventLoop)."""
        return self.loop.fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimContext(depth={self.pipeline_depth}, "
            f"makespan={self.makespan:.6f}, events={len(self.loop.timeline)})"
        )
