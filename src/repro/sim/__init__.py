"""Discrete-event simulation core: virtual clock, event loop, round scheduler.

This package replaces the ad-hoc "sum of per-block latencies" accounting with
a deterministic, seeded discrete-event timeline: protocol phases are
scheduled as events, consecutive block rounds pipeline where the dependency
rules allow, and per-group coordinators plus the ordering service interleave
on one shared virtual clock.  See DESIGN.md section 7.
"""

from repro.sim.clock import VirtualClock
from repro.sim.context import FixedCompute, SimContext
from repro.sim.events import EventLoop, SimEvent
from repro.sim.scheduler import (
    KIND_BROADCAST,
    KIND_COMPUTE,
    KIND_TERMINAL,
    ORDSERV_RESOURCE,
    BlockTask,
    PipelinedRoundScheduler,
)

__all__ = [
    "VirtualClock",
    "EventLoop",
    "SimEvent",
    "SimContext",
    "FixedCompute",
    "BlockTask",
    "PipelinedRoundScheduler",
    "KIND_BROADCAST",
    "KIND_COMPUTE",
    "KIND_TERMINAL",
    "ORDSERV_RESOURCE",
]
