"""The pipelined round scheduler: protocol phases as discrete events.

The protocol implementations still *execute* one synchronous round at a time
(block N's five phases run to completion in Python before block N+1's
begin), but their *timing* is decided here: every phase of every block round
is an activity with a start and an end on the shared virtual timeline, and
consecutive blocks overlap exactly as far as the dependency rules allow.

Dependency rules (documented in DESIGN.md section 7):

* **Intra-block order** -- phase ``i`` of a block starts no earlier than
  phase ``i-1`` of the same block ends.
* **Chain rule** (classic chained blocks only) -- phase 1 of block ``N+1``
  starts no earlier than block ``N``'s ``aggregate`` phase ends: that is when
  block ``N``'s body (decision + roots) is complete, so its hash -- block
  ``N+1``'s ``h_prev`` -- exists.  Dynamic-group blocks carry no chain
  metadata at proposal time (the ordering service assigns it), so the rule
  does not apply to them.
* **Commit-frontier rule** -- if any transaction of block ``N+1`` carries a
  commit timestamp at or below the largest commit timestamp of an earlier
  in-flight block, its staleness check depends on that block's decision, so
  block ``N+1`` waits for the earlier block to finish.
* **Conflict rule** -- a block whose read/write footprint intersects an
  earlier in-flight block's footprint (with a write on either side) waits
  for that block to finish: its speculative roots must reflect the earlier
  writes.
* **Depth rule** -- at most ``pipeline_depth`` blocks of one coordinator may
  be in flight; depth 1 reproduces the sequential model exactly.
* **Coordinator serialization** -- a coordinator is one machine: its compute
  phases (``aggregate``, ``finalize``) never overlap each other, even across
  pipelined blocks.  Cohort compute inside broadcast phases is treated as
  parallel-capable (multi-core servers), as in the sequential model.
* **In-order apply** -- terminal phases (``decision`` broadcasts, ordered
  ``order`` deliveries) serialize per delivering resource and therefore
  reach cohorts in block order; the ordering service is a single shared
  resource, so ordered deliveries additionally serialize *across* group
  coordinators.
* **Cross-group rule** -- a new group round starts no earlier than the last
  ordered delivery whose item footprint *conflicts* with its own ended: its
  OCC validation and speculative roots depend on that delivery's applied
  writes.  Non-conflicting deliveries (even of the same group) do not gate
  -- pipelined cohorts chain speculative state over in-flight blocks, just
  as the classic conflict rule allows within one coordinator.  Gating on
  *completed* deliveries suffices even under a reorder window: an item
  conflict implies a shared shard server, hence overlapping groups, and a
  group coordinator force-lands every pending overlapping block
  (``OrderingService.flush_conflicting``) before its round begins -- so a
  conflicting block is always delivered (and recorded here) by the time the
  dependent round's ``begin_block`` computes its frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolInvariantError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop

#: Phase kinds: how an activity occupies its resource.
KIND_BROADCAST = "broadcast"  # network round trip + parallel cohort compute
KIND_COMPUTE = "compute"  # coordinator-local compute; serializes per resource
KIND_TERMINAL = "terminal"  # decision/apply delivery; serializes per resource

#: The identity under which ordered deliveries occupy the shared timeline.
ORDSERV_RESOURCE = "ordserv"

#: How many finished tasks each resource keeps for dependency checks.  Tasks
#: older than the window are complete long before any new block could start
#: (their terminal phases serialize in order), so dropping them is safe.
_TASK_WINDOW = 64
#: How many ordered deliveries the cross-group frontier remembers.
_DELIVERY_WINDOW = 64


@dataclass
class BlockTask:
    """One block round's activities on the virtual timeline."""

    label: str
    resource: str
    ready_at: float
    started_at: float
    chained: bool = True
    read_items: FrozenSet[str] = frozenset()
    write_items: FrozenSet[str] = frozenset()
    min_commit_ts: Optional[tuple] = None
    max_commit_ts: Optional[tuple] = None
    group_members: Optional[FrozenSet[str]] = None
    #: phase name -> (start, end) once the phase completed.
    phases: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    chain_ready_at: Optional[float] = None
    done_at: Optional[float] = None
    status: str = "in-flight"
    #: The ordering resource(s) the task's delivery occupied (per-shard
    #: lanes under a sharded sequencer); None until the delivery closes.
    delivery_resources: Optional[Tuple[str, ...]] = None
    _pending_phase: Optional[Tuple[str, float, str]] = None

    @property
    def gate_at(self) -> float:
        """The time this task stops gating its coordinator's next block.

        A task awaiting its ordered delivery (reorder window) has finished
        all coordinator-side work at ``ready_at``; the pending ``order``
        phase occupies the ordering service, not the coordinator.
        """
        return self.done_at if self.done_at is not None else self.ready_at

    def conflicts_with(self, read_items: FrozenSet[str], write_items: FrozenSet[str]) -> bool:
        return bool(
            (self.write_items & (read_items | write_items))
            or (write_items & (self.read_items | self.write_items))
        )

    def phase_window(self, phase: str) -> Optional[Tuple[float, float]]:
        return self.phases.get(phase)


class PipelinedRoundScheduler:
    """Assigns every protocol phase a window on the shared virtual timeline."""

    #: The phase whose completion makes a chained block's hash available.
    CHAIN_PHASE = "aggregate"

    def __init__(
        self,
        loop: EventLoop,
        clock: Optional[VirtualClock] = None,
        pipeline_depth: int = 1,
    ) -> None:
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.loop = loop
        self.clock = clock or VirtualClock()
        self.pipeline_depth = pipeline_depth
        self._tasks: Dict[str, List[BlockTask]] = {}
        self._compute_free: Dict[str, float] = {}
        self._terminal_free: Dict[str, float] = {}
        #: Completed ordered deliveries: (read items, write items, end time).
        self._deliveries: List[Tuple[FrozenSet[str], FrozenSet[str], float]] = []
        #: Cumulative busy seconds per ordering resource (saturation metric).
        self._delivery_busy: Dict[str, float] = {}
        self.blocks_scheduled = 0

    # -- block life-cycle ----------------------------------------------------------

    def begin_block(
        self,
        resource: str,
        label: str,
        read_items: FrozenSet[str] = frozenset(),
        write_items: FrozenSet[str] = frozenset(),
        min_commit_ts: Optional[tuple] = None,
        max_commit_ts: Optional[tuple] = None,
        chained: bool = True,
        group_members: Optional[FrozenSet[str]] = None,
    ) -> BlockTask:
        """Admit a new block round and compute its earliest start."""
        history = self._tasks.setdefault(resource, [])
        earliest = 0.0
        if history:
            previous = history[-1]
            if chained:
                chain_ready = (
                    previous.chain_ready_at
                    if previous.chain_ready_at is not None
                    else previous.gate_at
                )
                earliest = max(earliest, chain_ready)
            if len(history) >= self.pipeline_depth:
                earliest = max(earliest, history[-self.pipeline_depth].gate_at)
            for prior in history:
                gated = prior.conflicts_with(read_items, write_items) or (
                    min_commit_ts is not None
                    and prior.max_commit_ts is not None
                    and min_commit_ts <= prior.max_commit_ts
                )
                if gated:
                    earliest = max(earliest, prior.gate_at)
        if group_members is not None:
            earliest = max(earliest, self.delivery_frontier(read_items, write_items))
        task = BlockTask(
            label=label,
            resource=resource,
            ready_at=earliest,
            started_at=earliest,
            chained=chained,
            read_items=frozenset(read_items),
            write_items=frozenset(write_items),
            min_commit_ts=min_commit_ts,
            max_commit_ts=max_commit_ts,
            group_members=frozenset(group_members) if group_members is not None else None,
        )
        history.append(task)
        del history[:-_TASK_WINDOW]
        self.blocks_scheduled += 1
        self.clock.set(earliest)
        self.loop.schedule(earliest, "block_start", resource=resource, label=label)
        return task

    def begin_phase(self, task: BlockTask, phase: str, kind: str = KIND_BROADCAST) -> float:
        """Assign the phase's start time and point the clock at it.

        Called *before* the phase's messages are sent, so fault hooks and
        message records that run inside the handlers observe the phase's
        virtual start time.
        """
        if task._pending_phase is not None:
            raise ProtocolInvariantError(
                f"{task.label}: phase {task._pending_phase[0]!r} is still open"
            )
        start = task.ready_at
        if kind == KIND_COMPUTE:
            start = max(start, self._compute_free.get(task.resource, 0.0))
        elif kind == KIND_TERMINAL:
            start = max(start, self._terminal_free.get(task.resource, 0.0))
        task._pending_phase = (phase, start, kind)
        self.clock.set(start)
        self.loop.schedule(
            start, "phase_start", resource=task.resource, label=f"{task.label}/{phase}"
        )
        return start

    def end_phase(self, task: BlockTask, phase: str, duration: float) -> Tuple[float, float]:
        """Close the open phase with its measured/sampled duration."""
        if task._pending_phase is None or task._pending_phase[0] != phase:
            raise ProtocolInvariantError(
                f"{task.label}: end_phase({phase!r}) without a matching begin_phase"
            )
        _, start, kind = task._pending_phase
        task._pending_phase = None
        end = start + max(0.0, duration)
        task.phases[phase] = (start, end)
        task.ready_at = end
        if kind == KIND_COMPUTE:
            self._compute_free[task.resource] = end
        elif kind == KIND_TERMINAL:
            self._terminal_free[task.resource] = end
        if phase == self.CHAIN_PHASE:
            task.chain_ready_at = end
        self.clock.set(end)
        self.loop.schedule(
            end, "phase_end", resource=task.resource, label=f"{task.label}/{phase}"
        )
        return start, end

    def end_block(self, task: BlockTask, status: str = "committed") -> float:
        """Mark the round finished; its last phase's end is the block's end."""
        if task._pending_phase is not None:
            # A round that failed mid-phase (e.g. coordinator crash) closes
            # the phase at zero additional cost.
            self.end_phase(task, task._pending_phase[0], 0.0)
        task.done_at = task.ready_at
        task.status = status
        self.loop.schedule(
            task.done_at,
            "block_end",
            resource=task.resource,
            label=task.label,
            detail={"status": status},
        )
        return task.done_at

    # -- ordered deliveries (scaled deployment) ---------------------------------------

    def begin_delivery(
        self,
        task: Optional[BlockTask],
        label: str,
        resources: Sequence[str] = (ORDSERV_RESOURCE,),
    ) -> float:
        """Start an ordered-stream delivery on the given ordering resource(s).

        With the single sequencer all deliveries share ``ORDSERV_RESOURCE``
        and serialize globally (the ordering service emits one stream).  A
        sharded sequencer passes one ``ordserv/s<i>`` resource per involved
        ordering shard: single-shard deliveries serialize only within their
        lane, so shards genuinely interleave on the timeline, while a
        cross-shard delivery names every involved lane and acts as a
        barrier (it starts once *all* of them are free).  Either way a block
        cannot be delivered before its own co-signing finished
        (``task.ready_at``).
        """
        if not resources:
            resources = (ORDSERV_RESOURCE,)
        start = max(self._terminal_free.get(resource, 0.0) for resource in resources)
        if task is not None:
            if task._pending_phase is not None:
                raise ProtocolInvariantError(
                    f"{task.label}: delivery while a phase is open"
                )
            start = max(start, task.ready_at)
        self.clock.set(start)
        self.loop.schedule(start, "phase_start", resource=resources[0], label=label)
        return start

    def end_delivery(
        self,
        task: Optional[BlockTask],
        label: str,
        start: float,
        duration: float,
        read_items: FrozenSet[str] = frozenset(),
        write_items: FrozenSet[str] = frozenset(),
        phase: str = "order",
        status: str = "committed",
        resources: Sequence[str] = (ORDSERV_RESOURCE,),
    ) -> Tuple[float, float]:
        """Close an ordered delivery and record the cross-group frontier."""
        if not resources:
            resources = (ORDSERV_RESOURCE,)
        end = start + max(0.0, duration)
        for resource in resources:
            self._terminal_free[resource] = end
            self._delivery_busy[resource] = (
                self._delivery_busy.get(resource, 0.0) + (end - start)
            )
        self._deliveries.append((frozenset(read_items), frozenset(write_items), end))
        del self._deliveries[:-_DELIVERY_WINDOW]
        self.clock.set(end)
        self.loop.schedule(end, "phase_end", resource=resources[0], label=label)
        if task is not None:
            task.delivery_resources = tuple(resources)
            task.phases[phase] = (start, end)
            task.ready_at = end
            self.end_block(task, status=status)
        return start, end

    def delivery_frontier(
        self, read_items: FrozenSet[str], write_items: FrozenSet[str]
    ) -> float:
        """When the last ordered delivery conflicting with the footprint ended."""
        return max(
            (
                end
                for delivered_reads, delivered_writes, end in self._deliveries
                if (delivered_writes & (read_items | write_items))
                or (write_items & (delivered_reads | delivered_writes))
            ),
            default=0.0,
        )

    # -- introspection -----------------------------------------------------------------

    def tasks_of(self, resource: str) -> List[BlockTask]:
        return list(self._tasks.get(resource, ()))

    def resources(self) -> List[str]:
        """Every resource that ever hosted a block task, sorted."""
        return sorted(self._tasks)

    def delivery_busy(self) -> Dict[str, float]:
        """Cumulative busy virtual-seconds per ordering resource.

        The scale-out sweep divides the busiest lane by the makespan to
        report how saturated the ordering layer is pre- vs post-sharding.
        """
        return dict(self._delivery_busy)

    def all_tasks(self) -> Dict[str, List[BlockTask]]:
        """Task histories by resource (bounded by the retention window).

        The model checker's pipelining-conformance invariant replays the
        dependency rules over these windows after a run; within the window
        the history is complete, so every rule is checkable against it.
        """
        return {resource: list(history) for resource, history in self._tasks.items()}

    @property
    def makespan(self) -> float:
        """The end of the last scheduled activity -- the run's virtual duration."""
        return self.loop.horizon
