"""The deterministic event loop behind the simulated timeline.

Every scheduled activity (a protocol phase starting or completing, an ordered
block delivery, a network message) becomes a :class:`SimEvent`.  Events are
totally ordered by ``(time, seq)``: ``seq`` is a monotone creation counter,
so two runs that schedule the same activities in the same execution order
produce byte-identical timelines -- the property the determinism test suite
(and any future replay/debug tooling) relies on.

The loop is intentionally small: the current reproduction executes protocol
handlers synchronously and uses the loop as the *authoritative record* of
when each activity happens in virtual time (the scheduler computes the
windows).  Callbacks are supported so future asynchronous backends (real
sockets, per-server threads) can drive execution *from* the loop instead;
``run_until_idle`` already delivers events in deterministic timeline order.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.choices import active_choices
from repro.common.errors import ProtocolInvariantError


@dataclass(frozen=True)
class SimEvent:
    """One timestamped occurrence on the virtual timeline."""

    time: float
    seq: int
    kind: str  # "phase_start", "phase_end", "block_start", "block_end", "message", ...
    resource: str = ""  # the machine/service the event belongs to
    label: str = ""  # e.g. "block-3/get_vote"
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        return dict(self.detail)

    def describe(self) -> str:
        """Canonical one-line rendering (the fingerprint hashes these)."""
        extras = " ".join(f"{key}={value}" for key, value in self.detail)
        return f"{self.time:.9f} {self.kind} {self.resource} {self.label} {extras}".rstrip()


def _freeze_detail(detail: Optional[Dict[str, object]]) -> Tuple[Tuple[str, object], ...]:
    if not detail:
        return ()
    return tuple(sorted(detail.items()))


@dataclass(order=True)
class _Scheduled:
    sort_key: Tuple[float, int]
    event: SimEvent = field(compare=False)
    callback: Optional[Callable[[SimEvent], None]] = field(compare=False, default=None)


class EventLoop:
    """A deterministic discrete-event loop with a virtual-time heap.

    Determinism comes from the total ``(time, seq)`` order alone -- the loop
    itself draws no randomness.  ``seed`` is carried as trace metadata (the
    deployment's seed, for tooling that labels or compares timelines); the
    seeded inputs live in the latency model and the workload generator.
    """

    def __init__(self, seed: int = 2020) -> None:
        self.seed = seed
        self._seq = 0
        self._pending: List[_Scheduled] = []
        #: Events in firing order; authoritative once :meth:`run_until_idle`
        #: has drained everything scheduled so far.
        self.timeline: List[SimEvent] = []
        #: Largest event time ever scheduled -- the run's makespan.
        self.horizon: float = 0.0

    # -- scheduling -------------------------------------------------------------

    def schedule(
        self,
        time: float,
        kind: str,
        resource: str = "",
        label: str = "",
        detail: Optional[Dict[str, object]] = None,
        callback: Optional[Callable[[SimEvent], None]] = None,
    ) -> SimEvent:
        """Schedule one event at an absolute virtual time."""
        if time < 0:
            raise ProtocolInvariantError(
                f"cannot schedule an event at negative time {time}"
            )
        event = SimEvent(
            time=float(time),
            seq=self._next_seq(),
            kind=kind,
            resource=resource,
            label=label,
            detail=_freeze_detail(detail),
        )
        heapq.heappush(self._pending, _Scheduled((event.time, event.seq), event, callback))
        self.horizon = max(self.horizon, event.time)
        return event

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- draining ---------------------------------------------------------------

    def run_until_idle(self) -> List[SimEvent]:
        """Fire every pending event in ``(time, seq)`` order.

        Returns the events fired by this call (they are also appended to
        :attr:`timeline`).  Callbacks may schedule further events; those fire
        within the same drain as long as their time keeps the heap non-empty.

        Under the model checker the ``seq`` tie-break among events scheduled
        at the *same* virtual time becomes a choice point: a real deployment
        gives no ordering guarantee between simultaneous activities, so each
        interleaving of a tie group is a distinct explorable schedule.
        """
        fired: List[SimEvent] = []
        while self._pending:
            scheduled = self._pop_next()
            self.timeline.append(scheduled.event)
            fired.append(scheduled.event)
            if scheduled.callback is not None:
                scheduled.callback(scheduled.event)
        return fired

    def _pop_next(self) -> _Scheduled:
        """Pop the next event; choice-driven among same-time ties when driven."""
        source = active_choices()
        if source is None or not source.enabled("loop-order") or len(self._pending) < 2:
            return heapq.heappop(self._pending)
        first = heapq.heappop(self._pending)
        tied: List[_Scheduled] = [first]
        while self._pending and self._pending[0].event.time == first.event.time:
            tied.append(heapq.heappop(self._pending))
        if len(tied) == 1:
            return first
        pick = source.choose(
            f"loop/tie@{first.event.time:.9f}x{len(tied)}", len(tied), 0
        )
        chosen = tied.pop(pick)
        for other in tied:
            heapq.heappush(self._pending, other)
        return chosen

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- determinism ------------------------------------------------------------

    def fingerprint(self, precision: int = 9) -> str:
        """SHA-256 over the canonical rendering of the full timeline.

        Two runs with the same seed and configuration must produce the same
        fingerprint; the determinism test suite asserts exactly this.  Events
        still pending are included (in sort order) so the fingerprint does
        not depend on whether the caller drained the loop first.
        """
        digest = hashlib.sha256()
        pending = sorted(self._pending)
        for event in self.timeline + [scheduled.event for scheduled in pending]:
            rounded = SimEvent(
                time=round(event.time, precision),
                seq=event.seq,
                kind=event.kind,
                resource=event.resource,
                label=event.label,
                detail=event.detail,
            )
            digest.update(rounded.describe().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLoop(seed={self.seed}, fired={len(self.timeline)}, "
            f"pending={len(self._pending)}, horizon={self.horizon:.6f})"
        )
