"""Pluggable per-message signing schemes.

Every message exchanged in Fides is "digitally signed by the sender and
verified by the receiver" (Section 3.1).  Two interchangeable schemes are
provided behind the :class:`SigningScheme` interface:

* :class:`SchnorrSigningScheme` -- real public-key Schnorr signatures
  (the default; used by all tests and examples).
* :class:`HashSigningScheme` -- a keyed-hash MAC standing in for a signature.
  This is a *benchmark-only* substitution (documented in DESIGN.md): it keeps
  very large parameter sweeps tractable in pure Python while preserving the
  protocol's message flow.  It is not unforgeable against other key holders,
  so it is never used for block co-signing, which always uses real
  Schnorr/CoSi.

The scheme signs canonical encodings of arbitrary payload objects so callers
never handle raw bytes directly.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.common.encoding import canonical_encode
from repro.common.errors import ConfigurationError, ValidationError
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.schnorr import SchnorrSignature, schnorr_sign, schnorr_verify


class SigningScheme(ABC):
    """Interface for per-message authentication.

    Schemes implement the byte-level pair (:meth:`sign_bytes` /
    :meth:`verify_bytes`); the payload-level pair encodes once and
    delegates.  Callers that already hold the canonical encoding (the
    network signs *and* verifies each envelope, and also meters its wire
    size) use the byte-level pair directly so the payload is encoded
    exactly once per message instead of three times.
    """

    #: Human-readable name (matches ``SystemConfig.message_signing``).
    name: str = "abstract"

    @abstractmethod
    def sign_bytes(self, keypair: KeyPair, message: bytes) -> bytes:
        """Return a signature over already-encoded ``message`` bytes."""

    @abstractmethod
    def verify_bytes(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` authenticates ``message`` under ``public``."""

    def sign(self, keypair: KeyPair, payload: Any) -> bytes:
        """Return a signature over the canonical encoding of ``payload``."""
        return self.sign_bytes(keypair, canonical_encode(payload))

    def verify(self, public: PublicKey, payload: Any, signature: bytes) -> bool:
        """Return True iff ``signature`` authenticates ``payload`` under ``public``."""
        return self.verify_bytes(public, canonical_encode(payload), signature)


class SchnorrSigningScheme(SigningScheme):
    """Real Schnorr public-key signatures (Section 2.1)."""

    name = "schnorr"

    def sign_bytes(self, keypair: KeyPair, message: bytes) -> bytes:
        return schnorr_sign(keypair.private, message).encode()

    def verify_bytes(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        if not isinstance(signature, (bytes, bytearray)) or len(signature) != 65:
            return False
        decoded = _decode_schnorr(bytes(signature))
        if decoded is None:
            return False
        return schnorr_verify(public, message, decoded)


def _decode_schnorr(blob: bytes) -> SchnorrSignature:
    """Decode the 65-byte wire form produced by ``SchnorrSignature.encode``."""
    from repro.crypto.group import decompress_point

    try:
        nonce_point = decompress_point(blob[0:33])
    except ValidationError:
        return None
    return SchnorrSignature(nonce_point, int.from_bytes(blob[33:65], "big"))


class HashSigningScheme(SigningScheme):
    """Keyed-hash MAC standing in for a public-key signature.

    The MAC key is derived from the signer's *public* key so any participant
    can verify; this trades unforgeability for speed and is therefore only
    enabled for benchmark sweeps (see DESIGN.md substitution table).
    """

    name = "hash"

    @staticmethod
    def _mac_key(public: PublicKey) -> bytes:
        return hashlib.sha256(b"fides-mac:" + public.encode()).digest()

    def sign_bytes(self, keypair: KeyPair, message: bytes) -> bytes:
        return hmac.new(self._mac_key(keypair.public), message, hashlib.sha256).digest()

    def verify_bytes(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        if not isinstance(signature, (bytes, bytearray)):
            return False
        expected = hmac.new(self._mac_key(public), message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, bytes(signature))


@dataclass(frozen=True)
class _SchemeRegistryEntry:
    name: str
    factory: type


_SCHEMES = {
    SchnorrSigningScheme.name: SchnorrSigningScheme,
    HashSigningScheme.name: HashSigningScheme,
}


def make_signing_scheme(name: str) -> SigningScheme:
    """Instantiate the signing scheme registered under ``name``."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown signing scheme {name!r}; available: {sorted(_SCHEMES)}"
        ) from None
