"""Hash utilities.

Fides relies on one-way, collision-resistant hash functions for Merkle trees,
block hash pointers, and Schnorr challenges (Sections 2.2-2.3).  We use
SHA-256 throughout.  All helpers accept either raw bytes or objects that can
be run through :func:`repro.common.encoding.canonical_encode`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.common.encoding import canonical_encode

#: Size in bytes of every digest produced by this module.
DIGEST_SIZE = 32

#: Digest of the empty string; used as the "previous hash" of the genesis block.
EMPTY_HASH = hashlib.sha256(b"").digest()


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a hex string."""
    return hashlib.sha256(data).hexdigest()


def hash_concat(*parts: bytes) -> bytes:
    """Hash the concatenation of ``parts`` with unambiguous length prefixes.

    Plain concatenation (``h(a || b)``) is ambiguous -- ``("ab", "c")`` and
    ``("a", "bc")`` would collide -- so every part is length-prefixed first.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def hash_object(obj: Any) -> bytes:
    """Canonically encode ``obj`` and return its SHA-256 digest."""
    return sha256(canonical_encode(obj))


def hash_objects(objs: Iterable[Any]) -> bytes:
    """Hash an iterable of objects as an ordered sequence."""
    return hash_object(list(objs))


def hash_to_int(data: bytes, modulus: int) -> int:
    """Map ``data`` to an integer in ``[1, modulus)`` via SHA-256.

    Used to derive Schnorr challenges from hashed material.  The result is
    never zero so a challenge can always be inverted / used as a scalar.
    """
    value = int.from_bytes(sha256(data), "big") % modulus
    return value or 1
