"""Collective Signing (CoSi): aggregated Schnorr multisignatures.

Section 2.2 of the paper: a leader produces a record which a group of
witnesses validate and collectively sign in two communication rounds.  The
resulting collective signature has the size and verification cost of a single
Schnorr signature, and it can only verify if *every* witness contributed a
correct response over the *same* record -- the property TFCommit leans on to
make 2PC decisions verifiable.

The four CoSi phases map onto the API as follows:

===================  =====================================================
Announcement         ``CoSiCoordinator.announce(record)`` /
                     ``CoSiWitness.on_announcement(record)``
Commitment           ``CoSiWitness.commit()`` -> commitment point ``V_i``
Challenge            ``CoSiCoordinator.challenge(commitments)``
                     -> ``c = H(sum V_i || record)``
Response             ``CoSiWitness.respond(challenge)`` -> ``r_i = v_i - c*x_i``
(aggregation)        ``CoSiCoordinator.aggregate(responses)``
                     -> ``CollectiveSignature(challenge, response)``
===================  =====================================================

Verification recomputes ``X' = R*G + c * sum(P_i)`` and accepts iff
``H(X' || record) == c``.  :func:`identify_faulty_signers` reproduces the
culprit-identification argument of Lemma 4: given the individual commitments
and responses, the partial check ``r_i*G + c*P_i == V_i`` exposes exactly the
witnesses that lied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.errors import ProtocolError
from repro.crypto.group import (
    CURVE_ORDER,
    INFINITY,
    Point,
    cached_scalar_multiply,
    generator_multiply,
    point_add,
    scalar_multiply,
)
from repro.crypto.hashing import hash_concat, hash_to_int
from repro.crypto.keys import KeyPair, PublicKey


@dataclass(frozen=True)
class CollectiveSignature:
    """A collective signature ``(challenge, response)`` over one record.

    ``signer_ids`` records which participants contributed; verification uses
    their public keys.  The signature binds the record to the full signer set:
    change either and verification fails.
    """

    challenge: int
    response: int
    signer_ids: tuple

    def encode(self) -> bytes:
        """Canonical wire encoding (64 bytes + signer list handled upstream)."""
        return self.challenge.to_bytes(32, "big") + self.response.to_bytes(32, "big")

    def to_wire(self):
        return {
            "challenge": self.challenge,
            "response": self.response,
            "signers": list(self.signer_ids),
        }


def _commitment_scalar(keypair: KeyPair, record: bytes) -> int:
    """Deterministically derive the witness's per-record secret ``v_i``.

    Deriving the nonce from the secret key and the record (rather than an
    external RNG) keeps protocol runs reproducible and avoids nonce-reuse
    bugs across distinct records.
    """
    secret_bytes = keypair.secret_scalar.to_bytes(32, "big")
    return hash_to_int(hash_concat(b"cosi-nonce", secret_bytes, record), CURVE_ORDER)


def compute_challenge(aggregate_commitment: Point, record: bytes) -> int:
    """Schnorr challenge ``c = H(X || record)`` (Section 2.2, Challenge phase)."""
    return hash_to_int(hash_concat(aggregate_commitment.encode(), record), CURVE_ORDER)


def aggregate_points(points: Iterable[Point]) -> Point:
    """Sum a collection of curve points."""
    total = INFINITY
    for point in points:
        total = point_add(total, point)
    return total


def aggregate_scalars(scalars: Iterable[int]) -> int:
    """Sum a collection of scalars modulo the curve order."""
    total = 0
    for scalar in scalars:
        total = (total + scalar) % CURVE_ORDER
    return total


class CoSiWitness:
    """One witness (cohort) in a CoSi round.

    A witness is bound to a single record per round: it remembers the record
    announced to it, commits to a nonce for that record, and refuses to
    respond to a challenge that does not match the record it saw -- this is
    the mechanism that defeats equivocating coordinators (Lemma 5).
    """

    def __init__(self, identity: str, keypair: KeyPair) -> None:
        self.identity = identity
        self.keypair = keypair
        self._record: Optional[bytes] = None
        self._nonce: Optional[int] = None

    def on_announcement(self, record: bytes) -> None:
        """Announcement phase: remember the record to be collectively signed."""
        self._record = bytes(record)
        self._nonce = None

    def commit(self) -> Point:
        """Commitment phase: return the Schnorr commitment ``V_i = v_i * G``."""
        if self._record is None:
            raise ProtocolError(f"witness {self.identity} has no announced record")
        self._nonce = _commitment_scalar(self.keypair, self._record)
        return generator_multiply(self._nonce)

    def respond(self, challenge: int, record: Optional[bytes] = None) -> int:
        """Response phase: return ``r_i = v_i - c * x_i (mod n)``.

        If ``record`` is provided the witness recomputes its nonce for that
        record; a correct witness passes the record it validated, so a
        coordinator that computed the challenge over a *different* record ends
        up with an invalid aggregate signature.
        """
        if self._nonce is None:
            raise ProtocolError(f"witness {self.identity} has not committed")
        if record is not None and bytes(record) != self._record:
            raise ProtocolError(
                f"witness {self.identity} asked to respond for a record it never validated"
            )
        return (self._nonce - challenge * self.keypair.secret_scalar) % CURVE_ORDER


class CoSiCoordinator:
    """The leader of a CoSi round.

    Drives the four phases and aggregates the witnesses' contributions into a
    :class:`CollectiveSignature`.  The coordinator itself is typically also a
    witness (in TFCommit the coordinator co-signs alongside the cohorts); the
    caller simply includes its commitment/response like any other witness's.
    """

    def __init__(self, record: bytes) -> None:
        self.record = bytes(record)
        self._commitments: Dict[str, Point] = {}
        self._responses: Dict[str, int] = {}
        self._challenge: Optional[int] = None

    def announce(self) -> bytes:
        """Announcement phase payload: the record to be signed."""
        return self.record

    def add_commitment(self, witness_id: str, commitment: Point) -> None:
        """Record the commitment ``V_i`` received from ``witness_id``."""
        if not isinstance(commitment, Point) or not commitment.is_on_curve():
            raise ProtocolError(f"invalid commitment from {witness_id}")
        self._commitments[witness_id] = commitment

    def challenge(self) -> int:
        """Challenge phase: aggregate commitments and derive ``c = H(X || record)``."""
        if not self._commitments:
            raise ProtocolError("cannot compute challenge with no commitments")
        aggregate = aggregate_points(self._commitments.values())
        self._challenge = compute_challenge(aggregate, self.record)
        return self._challenge

    @property
    def aggregate_commitment(self) -> Point:
        return aggregate_points(self._commitments.values())

    def add_response(self, witness_id: str, response: int) -> None:
        """Record the Schnorr response received from ``witness_id``."""
        if witness_id not in self._commitments:
            raise ProtocolError(f"response from unknown witness {witness_id}")
        self._responses[witness_id] = response % CURVE_ORDER

    def aggregate(self) -> CollectiveSignature:
        """Aggregate all responses into the final collective signature."""
        if self._challenge is None:
            raise ProtocolError("challenge phase has not run")
        missing = set(self._commitments) - set(self._responses)
        if missing:
            raise ProtocolError(f"missing responses from witnesses: {sorted(missing)}")
        response = aggregate_scalars(self._responses.values())
        return CollectiveSignature(
            challenge=self._challenge,
            response=response,
            signer_ids=tuple(sorted(self._commitments)),
        )

    def partial_signature(self, exclude: Sequence[str]) -> CollectiveSignature:
        """Aggregate a signature that excludes some witnesses (culprit search)."""
        keep = [w for w in self._commitments if w not in set(exclude)]
        response = aggregate_scalars(self._responses[w] for w in keep)
        return CollectiveSignature(
            challenge=self._challenge, response=response, signer_ids=tuple(sorted(keep))
        )

    @property
    def commitments(self) -> Dict[str, Point]:
        return dict(self._commitments)

    @property
    def responses(self) -> Dict[str, int]:
        return dict(self._responses)


def cosi_verify(
    signature: CollectiveSignature,
    record: bytes,
    public_keys: Dict[str, PublicKey],
) -> bool:
    """Verify a collective signature over ``record``.

    ``public_keys`` must contain the key of every signer listed in the
    signature.  Verification cost is that of a single Schnorr signature
    (one fixed-base and one variable-base multiplication) regardless of the
    number of signers -- the property highlighted in Section 2.2.
    """
    if not isinstance(signature, CollectiveSignature):
        return False
    try:
        key_points = tuple(public_keys[s].point for s in signature.signer_ids)
    except KeyError:
        return False
    # Verification is a pure function of (signature, record, signer keys).
    # In the scaled deployment every server verifies the same Block object's
    # co-sign on ordered delivery, so memoise the last verdict per signature
    # instance; a different record or key set misses the cache and re-runs
    # the full check.
    record_bytes = bytes(record)
    cache_key = (record_bytes, key_points)
    cached = signature.__dict__.get("_verify_cache")
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    aggregate_key = aggregate_points(key_points)
    # The aggregate public key is the same for every block signed by the same
    # server set, so the cached window table makes repeated verifications cheap.
    reconstructed = point_add(
        generator_multiply(signature.response),
        cached_scalar_multiply(signature.challenge, aggregate_key),
    )
    verdict = compute_challenge(reconstructed, record_bytes) == signature.challenge
    object.__setattr__(signature, "_verify_cache", (cache_key, verdict))
    return verdict


def verify_partial(
    witness_id: str,
    commitment: Point,
    response: int,
    challenge: int,
    public_key: PublicKey,
) -> bool:
    """Check one witness's contribution: ``r_i*G + c*P_i == V_i``."""
    reconstructed = point_add(
        generator_multiply(response), cached_scalar_multiply(challenge, public_key.point)
    )
    return reconstructed == commitment and witness_id is not None


def identify_faulty_signers(
    commitments: Dict[str, Point],
    responses: Dict[str, int],
    challenge: int,
    public_keys: Dict[str, PublicKey],
) -> List[str]:
    """Return the witnesses whose contributions are inconsistent (Lemma 4).

    A witness is faulty if it failed to respond, or if its response does not
    verify against its own commitment and public key.  This is the per-server
    exclusion check the paper describes: "check partial signatures produced by
    excluding one server at a time and detect the precise server without which
    the signature is valid".
    """
    faulty = []
    for witness_id, commitment in commitments.items():
        if witness_id not in responses:
            faulty.append(witness_id)
            continue
        if witness_id not in public_keys:
            faulty.append(witness_id)
            continue
        ok = verify_partial(
            witness_id, commitment, responses[witness_id], challenge, public_keys[witness_id]
        )
        if not ok:
            faulty.append(witness_id)
    return sorted(faulty)


def run_cosi_round(
    record: bytes,
    witnesses: Sequence[CoSiWitness],
) -> CollectiveSignature:
    """Convenience driver: run a full four-phase CoSi round in one call.

    Used by tests and by the non-distributed fast path; TFCommit drives the
    phases itself because they interleave with 2PC voting.
    """
    coordinator = CoSiCoordinator(record)
    for witness in witnesses:
        witness.on_announcement(coordinator.announce())
        coordinator.add_commitment(witness.identity, witness.commit())
    challenge = coordinator.challenge()
    for witness in witnesses:
        coordinator.add_response(witness.identity, witness.respond(challenge, record))
    return coordinator.aggregate()
