"""Merkle Hash Trees (MHT) and Verification Objects.

Section 2.3 of the paper: an MHT is a binary tree whose leaves are hashes of
data items and whose internal nodes hash the concatenation of their children.
A *Verification Object* (VO) for a data item is the list of sibling hashes on
the path from that item's leaf to the root; given the item's value and its VO,
anyone can recompute the root and compare it against a published root.

In Fides each database server builds an MHT over its entire shard; the root
goes into the transaction block during TFCommit (Section 4.3.1) and the
auditor later uses VOs supplied by the server to authenticate the datastore
(Section 4.2.2, Lemma 2).

The implementation keeps the whole tree in memory as a list of levels so it
supports full rebuilds, *incremental* single-leaf updates (O(log n)
re-hashes), and *batched* multi-leaf updates (:meth:`MerkleTree.update_many`)
that re-hash every dirty ancestor exactly once -- O(k + k*log(n/k)) node
hashes for k touched leaves instead of O(k*log n).  The batched path is what
makes the paper's Figures 14-15 shapes visible (MHT update cost grows with
tree depth and with the number of touched leaves) at realistic block sizes;
see DESIGN.md for the accounting model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import StorageError
from repro.crypto.hashing import hash_concat, hash_object, sha256

#: Domain-separation prefixes so leaves can never be confused with internal nodes.
_LEAF_PREFIX = b"\x00leaf"
_NODE_PREFIX = b"\x01node"

#: Hash used to pad the leaf level up to a power of two.
_EMPTY_LEAF = sha256(b"fides-empty-leaf")


def leaf_hash(item_id: str, value) -> bytes:
    """Hash one data item (id + value) into a leaf label."""
    return hash_concat(_LEAF_PREFIX, item_id.encode("utf-8"), hash_object(value))


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash two child labels into a parent label."""
    return hash_concat(_NODE_PREFIX, left, right)


@dataclass(frozen=True)
class VerificationObject:
    """The sibling hashes on the path from one leaf to the root.

    ``siblings`` is ordered leaf-to-root; each entry is ``(hash, is_left)``
    where ``is_left`` says whether the sibling sits to the *left* of the
    running hash when recomputing the parent.
    """

    item_id: str
    leaf_index: int
    siblings: Tuple[Tuple[bytes, bool], ...]

    def __len__(self) -> int:
        return len(self.siblings)

    def to_wire(self):
        return {
            "item_id": self.item_id,
            "leaf_index": self.leaf_index,
            "siblings": [[sib, left] for sib, left in self.siblings],
        }


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class MerkleTree:
    """A Merkle Hash Tree over an ordered set of ``item_id -> value`` leaves.

    The leaf order is fixed at construction (sorted item ids by default) so
    that every correct server with the same shard contents computes the same
    root.  Values can be updated in place with :meth:`update`, which re-hashes
    only the path from the touched leaf to the root and returns the number of
    node hashes recomputed -- the quantity reported as "MHT update time" in
    the paper's Figure 14.
    """

    def __init__(self, items: Mapping[str, object], ordered_ids: Optional[Sequence[str]] = None):
        if ordered_ids is None:
            ordered_ids = sorted(items)
        else:
            ordered_ids = list(ordered_ids)
            if set(ordered_ids) != set(items):
                raise StorageError("ordered_ids must cover exactly the items given")
        self._ids: List[str] = ordered_ids
        self._index: Dict[str, int] = {item_id: i for i, item_id in enumerate(ordered_ids)}
        self._values: Dict[str, object] = dict(items)
        self._levels: List[List[bytes]] = []
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        """(Re)build every level of the tree from the current values."""
        width = max(1, _next_power_of_two(len(self._ids)))
        leaves = [leaf_hash(item_id, self._values[item_id]) for item_id in self._ids]
        leaves.extend([_EMPTY_LEAF] * (width - len(leaves)))
        levels = [leaves]
        current = leaves
        while len(current) > 1:
            parents = [
                node_hash(current[i], current[i + 1]) for i in range(0, len(current), 2)
            ]
            levels.append(parents)
            current = parents
        self._levels = levels

    @classmethod
    def from_items(cls, items: Mapping[str, object]) -> "MerkleTree":
        """Build a tree over ``items`` with leaves ordered by item id."""
        return cls(items)

    # -- queries ------------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The root label of the tree."""
        return self._levels[-1][0]

    @property
    def root_hex(self) -> str:
        return self.root.hex()

    @property
    def size(self) -> int:
        """Number of real (non-padding) leaves."""
        return len(self._ids)

    @property
    def depth(self) -> int:
        """Number of edges from a leaf to the root."""
        return len(self._levels) - 1

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._index

    def value_of(self, item_id: str):
        """Return the value currently stored at ``item_id``'s leaf."""
        try:
            return self._values[item_id]
        except KeyError:
            raise StorageError(f"item {item_id!r} not in Merkle tree") from None

    def item_ids(self) -> List[str]:
        return list(self._ids)

    # -- updates ------------------------------------------------------------

    def update(self, item_id: str, value) -> int:
        """Set ``item_id``'s value and re-hash its path to the root.

        Returns the number of node hashes recomputed (``depth + 1``), which
        the benchmark harness accumulates as MHT update work.
        """
        if item_id not in self._index:
            raise StorageError(f"item {item_id!r} not in Merkle tree")
        self._values[item_id] = value
        index = self._index[item_id]
        self._levels[0][index] = leaf_hash(item_id, value)
        hashes_recomputed = 1
        for level in range(1, len(self._levels)):
            index //= 2
            left = self._levels[level - 1][2 * index]
            right = self._levels[level - 1][2 * index + 1]
            self._levels[level][index] = node_hash(left, right)
            hashes_recomputed += 1
        return hashes_recomputed

    def update_many(self, updates: Mapping[str, object]) -> int:
        """Apply several leaf updates in one batched dirty-path sweep.

        All touched leaves are re-hashed first, then the tree is swept level
        by level so that every dirty ancestor is hashed exactly once even
        when several updated leaves share it -- O(k + k*log(n/k)) node hashes
        for a batch of k leaves instead of the O(k*log n) a per-leaf loop
        pays.  Returns the number of node hashes actually recomputed, which
        is the quantity the benchmark harness accumulates as MHT update work.
        """
        if not updates:
            return 0
        unknown = [item_id for item_id in updates if item_id not in self._index]
        if unknown:
            raise StorageError(f"items not in Merkle tree: {unknown}")
        dirty: set = set()
        for item_id, value in updates.items():
            self._values[item_id] = value
            index = self._index[item_id]
            self._levels[0][index] = leaf_hash(item_id, value)
            dirty.add(index)
        hashes_recomputed = len(dirty)
        for level in range(1, len(self._levels)):
            parents = {index // 2 for index in dirty}
            below = self._levels[level - 1]
            row = self._levels[level]
            for parent in parents:
                row[parent] = node_hash(below[2 * parent], below[2 * parent + 1])
            hashes_recomputed += len(parents)
            dirty = parents
        return hashes_recomputed

    def clone(self) -> "MerkleTree":
        """Return an independent copy sharing no mutable state.

        Copying the levels moves O(n) *bytes* but recomputes zero hashes,
        which is what makes clone-then-``update_many`` the cheap way to
        derive a historical tree that differs from this one in a few leaves
        (the audit-side VO regeneration path in the datastore).
        """
        dup = copy.copy(self)
        dup._ids = list(self._ids)
        dup._index = dict(self._index)
        dup._values = dict(self._values)
        dup._levels = [list(level) for level in self._levels]
        return dup

    def rebuild(self, items: Optional[Mapping[str, object]] = None) -> None:
        """Fully rebuild the tree (optionally replacing all values)."""
        if items is not None:
            if set(items) != set(self._index):
                raise StorageError("rebuild must cover exactly the existing item ids")
            self._values = dict(items)
        self._build()

    # -- proofs -------------------------------------------------------------

    def verification_object(self, item_id: str) -> VerificationObject:
        """Return the VO (sibling path) authenticating ``item_id``."""
        if item_id not in self._index:
            raise StorageError(f"item {item_id!r} not in Merkle tree")
        index = self._index[item_id]
        siblings: List[Tuple[bytes, bool]] = []
        for level in range(len(self._levels) - 1):
            sibling_index = index ^ 1
            sibling_is_left = sibling_index < index
            siblings.append((self._levels[level][sibling_index], sibling_is_left))
            index //= 2
        return VerificationObject(
            item_id=item_id,
            leaf_index=self._index[item_id],
            siblings=tuple(siblings),
        )

    def snapshot(self) -> Dict[str, object]:
        """Return a copy of the current leaf values (id -> value)."""
        return dict(self._values)


def verify_inclusion(item_id: str, value, proof: VerificationObject, expected_root: bytes) -> bool:
    """Recompute the root from ``(item_id, value)`` and ``proof``; compare to ``expected_root``.

    This is exactly the verifier computation described in Section 2.3: hash
    the value, fold in each sibling, and compare the resulting root against
    the published one.
    """
    if proof.item_id != item_id:
        return False
    running = leaf_hash(item_id, value)
    for sibling, sibling_is_left in proof.siblings:
        if sibling_is_left:
            running = node_hash(sibling, running)
        else:
            running = node_hash(running, sibling)
    return running == expected_root


def merkle_root_of(items: Mapping[str, object]) -> bytes:
    """One-shot helper: the Merkle root over ``items`` without keeping the tree."""
    return MerkleTree.from_items(items).root
