"""Cryptographic substrate used by Fides and TFCommit.

Everything here is implemented from scratch on top of the standard library
(``hashlib``/``hmac``) because the reproduction environment has no external
crypto packages:

* :mod:`repro.crypto.group` -- the secp256k1 elliptic-curve group.
* :mod:`repro.crypto.keys` / :mod:`repro.crypto.schnorr` -- public-key
  (Schnorr) digital signatures (paper Section 2.1).
* :mod:`repro.crypto.cosi` -- Collective Signing, i.e. two-round aggregated
  Schnorr multisignatures (paper Section 2.2).
* :mod:`repro.crypto.merkle` -- Merkle Hash Trees and Verification Objects
  (paper Section 2.3).
* :mod:`repro.crypto.signing` -- a pluggable per-message signing-scheme
  abstraction (real Schnorr vs. a fast keyed-hash MAC used only in large
  benchmark sweeps).
"""

from repro.crypto.hashing import sha256, hash_hex, hash_concat, hash_object
from repro.crypto.group import Point, Secp256k1, GENERATOR, CURVE_ORDER
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.schnorr import SchnorrSignature, schnorr_sign, schnorr_verify
from repro.crypto.cosi import (
    CollectiveSignature,
    CoSiCoordinator,
    CoSiWitness,
    cosi_verify,
    identify_faulty_signers,
)
from repro.crypto.merkle import MerkleTree, VerificationObject, verify_inclusion
from repro.crypto.signing import (
    HashSigningScheme,
    SchnorrSigningScheme,
    SigningScheme,
    make_signing_scheme,
)

__all__ = [
    "CURVE_ORDER",
    "CollectiveSignature",
    "CoSiCoordinator",
    "CoSiWitness",
    "GENERATOR",
    "HashSigningScheme",
    "KeyPair",
    "MerkleTree",
    "Point",
    "PrivateKey",
    "PublicKey",
    "SchnorrSignature",
    "SchnorrSigningScheme",
    "Secp256k1",
    "SigningScheme",
    "VerificationObject",
    "cosi_verify",
    "generate_keypair",
    "hash_concat",
    "hash_hex",
    "hash_object",
    "identify_faulty_signers",
    "make_signing_scheme",
    "schnorr_sign",
    "schnorr_verify",
    "sha256",
    "verify_inclusion",
]
