"""Schnorr digital signatures over secp256k1.

These are the "public-key signatures" of Section 2.1: the author signs a
message with her secret key; anyone holding the public key can verify the
signature; forging a signature without the secret key is computationally
infeasible.

The scheme is the classic Schnorr identification protocol made
non-interactive with the Fiat-Shamir transform:

* signing:  pick nonce ``k``, compute ``R = k*G``,
  ``e = H(R || P || m)``, ``s = k + e*x  (mod n)``; the signature is ``(R, s)``.
* verifying: accept iff ``s*G == R + e*P``.

Nonces are derived deterministically (RFC 6979 style, via HMAC-free hashing
of the secret key and message) so signing never depends on an external
entropy source -- important for reproducible protocol runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.group import (
    CURVE_ORDER,
    Point,
    cached_scalar_multiply,
    generator_multiply,
    point_add,
)
from repro.crypto.hashing import hash_concat, hash_to_int
from repro.crypto.keys import PrivateKey, PublicKey


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(R, s)``: a nonce commitment point and a scalar."""

    nonce_point: Point
    scalar: int

    def encode(self) -> bytes:
        """Canonical byte encoding used when signatures are embedded in messages."""
        return self.nonce_point.encode() + self.scalar.to_bytes(32, "big")


def _challenge(nonce_point: Point, public_key: PublicKey, message: bytes) -> int:
    """Fiat-Shamir challenge ``e = H(R || P || m)`` reduced into the scalar field."""
    return hash_to_int(
        hash_concat(nonce_point.encode(), public_key.encode(), message), CURVE_ORDER
    )


def _deterministic_nonce(private: PrivateKey, message: bytes) -> int:
    """Derive a per-message nonce from the secret key and the message."""
    secret_bytes = private.scalar.to_bytes(32, "big")
    nonce = hash_to_int(hash_concat(b"schnorr-nonce", secret_bytes, message), CURVE_ORDER)
    return nonce


def schnorr_sign(private: PrivateKey, message: bytes) -> SchnorrSignature:
    """Sign ``message`` with ``private`` and return the signature."""
    nonce = _deterministic_nonce(private, message)
    nonce_point = generator_multiply(nonce)
    challenge = _challenge(nonce_point, private.public_key(), message)
    scalar = (nonce + challenge * private.scalar) % CURVE_ORDER
    return SchnorrSignature(nonce_point, scalar)


def schnorr_verify(public: PublicKey, message: bytes, signature: SchnorrSignature) -> bool:
    """Return True iff ``signature`` is a valid signature of ``message`` under ``public``."""
    if not isinstance(signature, SchnorrSignature):
        return False
    if not 0 <= signature.scalar < CURVE_ORDER:
        return False
    if not signature.nonce_point.is_on_curve():
        return False
    challenge = _challenge(signature.nonce_point, public, message)
    # Public keys recur across messages, so the cached window table applies.
    left = generator_multiply(signature.scalar)
    right = point_add(
        signature.nonce_point, cached_scalar_multiply(challenge, public.point)
    )
    return left == right
