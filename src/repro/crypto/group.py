"""The secp256k1 elliptic-curve group, implemented from scratch.

Schnorr signatures and CoSi (Sections 2.1-2.2 of the paper) need a
prime-order group in which the discrete logarithm problem is hard.  The
reproduction environment has no external crypto packages, so this module
implements the standard secp256k1 curve (y^2 = x^3 + 7 over F_p) in pure
Python:

* :class:`Point` -- an immutable affine point (or the point at infinity).
* point addition, doubling, and double-and-add scalar multiplication with a
  fixed 4-bit window for the generator.

Performance note: a scalar multiplication costs on the order of a
millisecond in CPython, which is plenty for the protocol tests and for the
benchmark harness (the paper batches 100 transactions per co-signed block,
so the number of group operations per transaction is tiny).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ValidationError

# secp256k1 domain parameters (SEC 2, version 2.0).
FIELD_PRIME = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
CURVE_A = 0
CURVE_B = 7
CURVE_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
GENERATOR_X = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GENERATOR_Y = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


def _inverse_mod(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``."""
    return pow(value, -1, modulus)


@dataclass(frozen=True)
class Point:
    """An affine point on secp256k1, or the point at infinity (``x is None``)."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        """True if this is the identity element of the group."""
        return self.x is None

    def __add__(self, other: "Point") -> "Point":
        return point_add(self, other)

    def __mul__(self, scalar: int) -> "Point":
        return scalar_multiply(scalar, self)

    def __rmul__(self, scalar: int) -> "Point":
        return scalar_multiply(scalar, self)

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.x, (-self.y) % FIELD_PRIME)

    def encode(self) -> bytes:
        """Return the SEC1 compressed encoding (33 bytes, or ``b'\\x00'`` for infinity)."""
        if self.is_infinity:
            return b"\x00"
        prefix = b"\x03" if self.y % 2 else b"\x02"
        return prefix + self.x.to_bytes(32, "big")

    def is_on_curve(self) -> bool:
        """Check the curve equation y^2 = x^3 + 7 (mod p)."""
        if self.is_infinity:
            return True
        left = (self.y * self.y) % FIELD_PRIME
        right = (self.x * self.x * self.x + CURVE_A * self.x + CURVE_B) % FIELD_PRIME
        return left == right


#: The identity element of the group.
INFINITY = Point(None, None)

#: The standard base point G of secp256k1.
GENERATOR = Point(GENERATOR_X, GENERATOR_Y)


def point_add(p: Point, q: Point) -> Point:
    """Return ``p + q`` using the affine group law."""
    if p.is_infinity:
        return q
    if q.is_infinity:
        return p
    if p.x == q.x and (p.y + q.y) % FIELD_PRIME == 0:
        return INFINITY
    if p.x == q.x:
        # Point doubling.
        slope = (3 * p.x * p.x + CURVE_A) * _inverse_mod(2 * p.y, FIELD_PRIME) % FIELD_PRIME
    else:
        slope = (q.y - p.y) * _inverse_mod(q.x - p.x, FIELD_PRIME) % FIELD_PRIME
    x3 = (slope * slope - p.x - q.x) % FIELD_PRIME
    y3 = (slope * (p.x - x3) - p.y) % FIELD_PRIME
    return Point(x3, y3)


# -- Jacobian-coordinate arithmetic (internal) ---------------------------------
#
# Scalar multiplication dominates signing, co-signing, and verification.  The
# affine group law needs one modular inversion per addition, which is ~50x the
# cost of a multiplication in CPython; Jacobian projective coordinates defer
# the inversion to a single final conversion and make a 256-bit multiplication
# roughly an order of magnitude faster.  Only the internals use Jacobian
# triples -- the public API deals exclusively in affine :class:`Point`s.

_JAC_INFINITY = (0, 1, 0)


def _to_jacobian(point: Point):
    if point.is_infinity:
        return _JAC_INFINITY
    return (point.x, point.y, 1)


def _from_jacobian(triple) -> Point:
    x, y, z = triple
    if z == 0:
        return INFINITY
    z_inv = _inverse_mod(z, FIELD_PRIME)
    z_inv2 = (z_inv * z_inv) % FIELD_PRIME
    return Point((x * z_inv2) % FIELD_PRIME, (y * z_inv2 * z_inv) % FIELD_PRIME)


def _jac_double(triple):
    x, y, z = triple
    if z == 0 or y == 0:
        return _JAC_INFINITY
    y_sq = (y * y) % FIELD_PRIME
    s = (4 * x * y_sq) % FIELD_PRIME
    m = (3 * x * x) % FIELD_PRIME  # curve a == 0
    x3 = (m * m - 2 * s) % FIELD_PRIME
    y3 = (m * (s - x3) - 8 * y_sq * y_sq) % FIELD_PRIME
    z3 = (2 * y * z) % FIELD_PRIME
    return (x3, y3, z3)


def _jac_add(p, q):
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1_sq = (z1 * z1) % FIELD_PRIME
    z2_sq = (z2 * z2) % FIELD_PRIME
    u1 = (x1 * z2_sq) % FIELD_PRIME
    u2 = (x2 * z1_sq) % FIELD_PRIME
    s1 = (y1 * z2_sq * z2) % FIELD_PRIME
    s2 = (y2 * z1_sq * z1) % FIELD_PRIME
    if u1 == u2:
        if s1 != s2:
            return _JAC_INFINITY
        return _jac_double(p)
    h = (u2 - u1) % FIELD_PRIME
    r = (s2 - s1) % FIELD_PRIME
    h_sq = (h * h) % FIELD_PRIME
    h_cu = (h_sq * h) % FIELD_PRIME
    u1_h_sq = (u1 * h_sq) % FIELD_PRIME
    x3 = (r * r - h_cu - 2 * u1_h_sq) % FIELD_PRIME
    y3 = (r * (u1_h_sq - x3) - s1 * h_cu) % FIELD_PRIME
    z3 = (h * z1 * z2) % FIELD_PRIME
    return (x3, y3, z3)


def scalar_multiply(scalar: int, point: Point) -> Point:
    """Return ``scalar * point`` via Jacobian double-and-add.

    The scalar is reduced modulo the curve order; a zero scalar yields the
    identity element.
    """
    scalar %= CURVE_ORDER
    if scalar == 0 or point.is_infinity:
        return INFINITY
    result = _JAC_INFINITY
    addend = _to_jacobian(point)
    while scalar:
        if scalar & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        scalar >>= 1
    return _from_jacobian(result)


class _PointWindowCache:
    """4-bit window tables for frequently multiplied points.

    Signature and co-signature verification repeatedly multiply the *same*
    points (a server's public key, the aggregate public key of the cluster),
    so caching a per-point window table turns those multiplications into the
    same cost as fixed-base multiplications.  The cache is bounded; rarely
    seen points fall back to plain double-and-add.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self._tables = {}
        self._max_entries = max_entries

    def _build(self, point: Point):
        table = []
        base = _to_jacobian(point)
        for _ in range(64):
            row = [_JAC_INFINITY]
            current = _JAC_INFINITY
            for _ in range(15):
                current = _jac_add(current, base)
                row.append(current)
            table.append(row)
            for _ in range(4):
                base = _jac_double(base)
        return table

    def multiply(self, scalar: int, point: Point) -> Point:
        scalar %= CURVE_ORDER
        if scalar == 0 or point.is_infinity:
            return INFINITY
        key = (point.x, point.y)
        table = self._tables.get(key)
        if table is None:
            if len(self._tables) >= self._max_entries:
                self._tables.clear()
            table = self._build(point)
            self._tables[key] = table
        result = _JAC_INFINITY
        index = 0
        while scalar:
            nibble = scalar & 0xF
            if nibble:
                result = _jac_add(result, table[index][nibble])
            scalar >>= 4
            index += 1
        return _from_jacobian(result)


_POINT_CACHE = _PointWindowCache()


def cached_scalar_multiply(scalar: int, point: Point) -> Point:
    """``scalar * point`` using a cached per-point window table.

    Intended for points that are multiplied over and over (public keys,
    aggregate public keys); the first call per point pays the table build,
    subsequent calls are ~5x faster than :func:`scalar_multiply`.
    """
    return _POINT_CACHE.multiply(scalar, point)


def double_scalar_multiply(a: int, point_p: Point, b: int, point_q: Point) -> Point:
    """Return ``a*P + b*Q`` with a single shared double-and-add pass.

    This is Shamir's trick / Straus's algorithm: signature verification needs
    exactly this shape (``s*G + e*P``), and interleaving the two
    multiplications saves roughly 40% over computing them separately.
    """
    a %= CURVE_ORDER
    b %= CURVE_ORDER
    if a == 0 and b == 0:
        return INFINITY
    jp = _to_jacobian(point_p)
    jq = _to_jacobian(point_q)
    jpq = _jac_add(jp, jq)
    result = _JAC_INFINITY
    bits = max(a.bit_length(), b.bit_length())
    for i in range(bits - 1, -1, -1):
        result = _jac_double(result)
        bit_a = (a >> i) & 1
        bit_b = (b >> i) & 1
        if bit_a and bit_b:
            result = _jac_add(result, jpq)
        elif bit_a:
            result = _jac_add(result, jp)
        elif bit_b:
            result = _jac_add(result, jq)
    return _from_jacobian(result)


class _GeneratorTable:
    """Precomputed 4-bit window table for fast multiples of the generator.

    Multiplications by G dominate signing and CoSi commitment generation, so
    a small window table (16 entries per 4-bit nibble, 64 nibbles) gives a
    ~4x speedup over plain double-and-add without meaningful memory cost.
    """

    def __init__(self) -> None:
        self._table = None

    def _build(self) -> None:
        table = []
        base = _to_jacobian(GENERATOR)
        for _ in range(64):
            row = [_JAC_INFINITY]
            current = _JAC_INFINITY
            for _ in range(15):
                current = _jac_add(current, base)
                row.append(current)
            table.append(row)
            # Advance base by 2^4.
            for _ in range(4):
                base = _jac_double(base)
        self._table = table

    def multiply(self, scalar: int) -> Point:
        if self._table is None:
            self._build()
        scalar %= CURVE_ORDER
        result = _JAC_INFINITY
        index = 0
        while scalar:
            nibble = scalar & 0xF
            if nibble:
                result = _jac_add(result, self._table[index][nibble])
            scalar >>= 4
            index += 1
        return _from_jacobian(result)


_GEN_TABLE = _GeneratorTable()


def generator_multiply(scalar: int) -> Point:
    """Return ``scalar * G`` using the precomputed window table."""
    return _GEN_TABLE.multiply(scalar)


def decompress_point(data: bytes) -> Point:
    """Decode a SEC1 compressed point produced by :meth:`Point.encode`.

    Raises :class:`~repro.common.errors.ValidationError` if the encoding is
    malformed or the x coordinate is not on the curve -- the input is
    wire-carried and may come from a Byzantine peer, so the failure must stay
    inside the library's error contract.
    """
    if data == b"\x00":
        return INFINITY
    if len(data) != 33 or data[0:1] not in (b"\x02", b"\x03"):
        raise ValidationError("malformed compressed point")
    x = int.from_bytes(data[1:], "big")
    y_squared = (pow(x, 3, FIELD_PRIME) + CURVE_A * x + CURVE_B) % FIELD_PRIME
    y = pow(y_squared, (FIELD_PRIME + 1) // 4, FIELD_PRIME)
    if (y * y) % FIELD_PRIME != y_squared:
        raise ValidationError("x coordinate is not on the curve")
    if (y % 2 == 1) != (data[0:1] == b"\x03"):
        y = FIELD_PRIME - y
    return Point(x, y)


class Secp256k1:
    """Namespace-style facade bundling the curve parameters and operations."""

    prime = FIELD_PRIME
    order = CURVE_ORDER
    generator = GENERATOR
    infinity = INFINITY

    add = staticmethod(point_add)
    multiply = staticmethod(scalar_multiply)
    base_multiply = staticmethod(generator_multiply)
    double_multiply = staticmethod(double_scalar_multiply)
