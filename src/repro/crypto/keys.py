"""Public/secret key pairs for servers and clients.

Section 3.1: "Servers and clients are uniquely identifiable using their
public keys".  A :class:`KeyPair` owns a secret scalar and the corresponding
public curve point; the :class:`PublicKey` half is what gets shared in the
system directory.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.group import CURVE_ORDER, Point, generator_multiply


@dataclass(frozen=True)
class PublicKey:
    """A public key: a point on secp256k1."""

    point: Point

    def encode(self) -> bytes:
        """Return the compressed SEC1 encoding of the key."""
        return self.point.encode()

    def fingerprint(self) -> str:
        """Short hex fingerprint, convenient for logging and directories."""
        return hashlib.sha256(self.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """A secret scalar in ``[1, n)`` where ``n`` is the curve order."""

    scalar: int

    def __post_init__(self) -> None:
        if not 1 <= self.scalar < CURVE_ORDER:
            raise ValueError("private key scalar out of range")

    def public_key(self) -> PublicKey:
        """Derive the matching public key ``scalar * G``."""
        return PublicKey(generator_multiply(self.scalar))


@dataclass(frozen=True)
class KeyPair:
    """A (secret, public) key pair owned by one participant."""

    private: PrivateKey
    public: PublicKey

    @property
    def secret_scalar(self) -> int:
        return self.private.scalar

    @property
    def public_point(self) -> Point:
        return self.public.point


def generate_keypair(seed: bytes = None) -> KeyPair:
    """Generate a key pair.

    If ``seed`` is provided the key is derived deterministically from it
    (useful for reproducible test clusters); otherwise a cryptographically
    random key is produced.
    """
    if seed is None:
        scalar = secrets.randbelow(CURVE_ORDER - 1) + 1
    else:
        digest = hashlib.sha256(b"fides-keygen:" + seed).digest()
        scalar = int.from_bytes(digest, "big") % (CURVE_ORDER - 1) + 1
    private = PrivateKey(scalar)
    return KeyPair(private, private.public_key())


def keypair_for(identity: str, seed: int = 0) -> KeyPair:
    """Deterministically derive the key pair of participant ``identity``."""
    return generate_keypair(f"{seed}:{identity}".encode("utf-8"))
