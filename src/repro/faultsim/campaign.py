"""The fault-campaign engine: run plans against live systems, measure detection.

A campaign takes declarative :class:`~repro.faultsim.plan.CampaignScenario`
rows, and for each one:

1. builds a fresh :class:`~repro.core.fides.FidesSystem`;
2. injects a :class:`~repro.faultsim.policy.PlannedFaultPolicy` per
   misbehaving server;
3. drives the multi-client background workload through
   ``FidesSystem.run_workload`` (the PR-1 engine), then the scenario's
   *probe* -- a short scripted transaction sequence on a reserved item that
   deterministically surfaces the fault;
4. runs the external auditor with wall-clock timing, and also scans the
   TFCommit round results for protocol-level detection (challenge refusals,
   faulty-signer identification);
5. produces a structured :class:`DetectionResult`: detected or not, by whom,
   whether the culprit attribution is correct, blocks-until-detection, and
   audit wall-time against an honest-run baseline.

One reserved item per shard (the first item) is excluded from the background
workload so probes cannot be clobbered by random traffic and detection stays
deterministic for deterministic triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.report import AuditReport
from repro.audit.violations import ViolationType
from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.faultsim.plan import (
    RESERVED_ITEM,
    CampaignScenario,
    FaultPlan,
    build_fault_matrix,
)
from repro.faultsim.policy import PlannedFaultPolicy
from repro.net.latency import ConstantLatency
from repro.txn.operations import ReadOp, WriteOp
from repro.workload.ycsb import YcsbWorkload


@dataclass(frozen=True)
class CampaignConfig:
    """Sizing of the system and workload every scenario runs against."""

    num_servers: int = 3
    items_per_shard: int = 48
    txns_per_block: int = 2
    ops_per_txn: int = 2
    num_requests: int = 8
    num_clients: int = 2
    message_signing: str = "hash"
    latency_s: float = 0.0002
    seed: int = 2020

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            num_servers=self.num_servers,
            items_per_shard=self.items_per_shard,
            txns_per_block=self.txns_per_block,
            ops_per_txn=self.ops_per_txn,
            # Multi-versioned stores let the audit authenticate every block
            # exhaustively, which pinpoints the corrupted version (Lemma 2).
            multi_versioned=True,
            message_signing=self.message_signing,
            seed=self.seed,
        )

    @property
    def server_ids(self) -> List[str]:
        return self.system_config().server_ids


@dataclass
class DetectionResult:
    """Everything one scenario run produced."""

    scenario: str
    fault_kinds: Tuple[str, ...]
    targets: Tuple[str, ...]
    deterministic: bool
    expected_violation: Optional[ViolationType]
    expected_culprits: Tuple[str, ...]
    liveness: bool = False
    detected: bool = False
    detected_by: str = ""  # "audit", "protocol", "liveness", or ""
    violation_kinds: Tuple[str, ...] = ()
    culprits: Tuple[str, ...] = ()
    culprit_correct: bool = False
    #: Crash scenarios: servers the runner recovered before probing/auditing.
    recovered_servers: Tuple[str, ...] = ()
    #: Peers whose catch-up response a recovering server rejected.
    recovery_rejections: Tuple[str, ...] = ()
    #: True if the audit wrongly pinned a safety violation on a crash target
    #: (crashes are liveness events and must never be misclassified).
    misattributed: bool = False
    #: Failover scenarios: the successor elected by the view change, the new
    #: view number, how many blocks the successor committed after the view
    #: change (probe traffic; stalled-round re-proposals excluded), and
    #: whether the cluster fully recovered (post-view-change commits
    #: succeeded AND the audit came back clean).
    failover: bool = False
    failover_successor: str = ""
    new_view: Optional[int] = None
    post_failover_committed: int = 0
    recovered_after_failover: bool = False
    fault_height: Optional[int] = None
    detection_height: Optional[int] = None
    blocks_until_detection: Optional[int] = None
    audit_time_s: float = 0.0
    honest_audit_time_s: float = 0.0
    committed: int = 0
    aborted: int = 0
    failed: int = 0
    report: Optional[AuditReport] = field(default=None, repr=False)

    @property
    def audit_overhead(self) -> float:
        """Audit wall-time relative to the honest baseline (1.0 = no overhead)."""
        if self.honest_audit_time_s <= 0.0:
            return 0.0
        return self.audit_time_s / self.honest_audit_time_s

    def as_row(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "faults": "+".join(self.fault_kinds),
            "targets": "+".join(self.targets),
            "expected": (
                self.expected_violation.value
                if self.expected_violation
                else ("liveness" if self.liveness else "protocol")
            ),
            "detected": self.detected,
            "detected by": self.detected_by or "-",
            "culprit ok": self.culprit_correct,
            "culprits": ",".join(self.culprits) or "-",
            "fault@block": self.fault_height if self.fault_height is not None else "-",
            "blocks-to-detect": (
                self.blocks_until_detection if self.blocks_until_detection is not None else "-"
            ),
            "view change": (
                f"{self.failover_successor}@v{self.new_view}" if self.failover else "-"
            ),
            "recovered": self.recovered_after_failover if self.failover else "-",
            "audit (ms)": round(self.audit_time_s * 1000.0, 3),
            "audit overhead (x)": round(self.audit_overhead, 2),
            "committed": self.committed,
        }


class CampaignRunner:
    """Runs fault scenarios and reports detection outcomes."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        self._honest_audit_time: Optional[float] = None

    # -- system / workload plumbing ------------------------------------------

    def build_system(self, deployment: str = "classic") -> FidesSystem:
        if deployment == "sharded":
            from repro.core.scaled import ScaledFidesSystem
            from repro.core.sequencing import sharded_sequencer

            return ScaledFidesSystem(
                self.config.system_config(),
                latency=ConstantLatency(self.config.latency_s),
                sequencer=sharded_sequencer(2, epoch_max_blocks=4),
            )
        return FidesSystem(
            self.config.system_config(),
            latency=ConstantLatency(self.config.latency_s),
        )

    @staticmethod
    def reserved_items(system: FidesSystem) -> Dict[str, str]:
        """server_id -> its reserved probe item (first item of the shard)."""
        return {
            server_id: system.shard_map.items_of(server_id)[0]
            for server_id in system.server_ids
        }

    def workload_specs(self, system: FidesSystem):
        reserved = set(self.reserved_items(system).values())
        universe = [item for item in system.shard_map.all_items() if item not in reserved]
        workload = YcsbWorkload(
            item_ids=universe,
            ops_per_txn=self.config.ops_per_txn,
            conflict_free_window=self.config.txns_per_block,
            seed=self.config.seed,
        )
        return workload.generate(self.config.num_requests)

    def _commit_now(self, system: FidesSystem, operations, client_index: int) -> None:
        """Run one probe transaction and force its block out immediately."""
        outcome = system.run_transaction(operations, client_index=client_index)
        if outcome.pending:
            system.flush()

    # -- probes ---------------------------------------------------------------

    def _probe_server(self, system: FidesSystem, scenario: CampaignScenario) -> str:
        """The server whose reserved item the probe exercises.

        For coordinator-side faults the probe must touch the *victim's* shard
        (fake/dropped roots) or any cohort shard (equivocation); for cohort
        faults it is the misbehaving server itself.
        """
        for plan in scenario.plans:
            victim = plan.params.get("victim")
            if victim is not None:
                return victim
        coordinator = system.server_ids[0]
        for plan in scenario.plans:
            if plan.target != coordinator:
                return plan.target
        return system.server_ids[1]

    def _run_probe(self, system: FidesSystem, scenario: CampaignScenario) -> None:
        if scenario.probe == "none":
            return
        reserved = self.reserved_items(system)
        item = reserved[self._probe_server(system, scenario)]
        if scenario.probe == "stale-txn":
            self._probe_stale_txn(system, item, reserved)
            return
        # Default "rw" probe: commit a known write, then read-modify-write it
        # from another client.  This surfaces read corruption (the second
        # read), dropped/corrupted state (both blocks), commitment-layer
        # crypto faults, and coordinator block assembly faults.
        self._commit_now(system, [ReadOp(item), WriteOp(item, 111_111)], client_index=0)
        self._commit_now(system, [ReadOp(item), WriteOp(item, 222_222)], client_index=1)

    def _probe_stale_txn(
        self, system: FidesSystem, item: str, reserved: Dict[str, str]
    ) -> None:
        """The Figure 10 dance: a stale read commits because validation is skipped.

        A helper item on another (honest) shard is written in the interfering
        transaction and read by the stale client, so the stale client's
        Lamport clock reaches the committed frontier and its termination
        request is not rejected as stale before validation would run.
        """
        helper_server = next(
            sid for sid in system.server_ids if reserved[sid] != item
        )
        helper = reserved[helper_server]
        self._commit_now(system, [ReadOp(item), WriteOp(item, 10)], client_index=0)
        client = system.client(1)
        session = client.begin()
        client.read(session, item)
        self._commit_now(
            system,
            [ReadOp(item), WriteOp(item, 20), ReadOp(helper), WriteOp(helper, 21)],
            client_index=0,
        )
        client.read(session, helper)
        client.write(session, item, 30)
        outcome = client.commit(session)
        if outcome.pending:
            system.flush()

    # -- detection ------------------------------------------------------------

    def _honest_baseline(self) -> float:
        """Audit wall-time of an honest run over the same workload (cached)."""
        if self._honest_audit_time is None:
            system = self.build_system()
            system.run_workload(self.workload_specs(system), num_clients=self.config.num_clients)
            report = system.auditor().run_audit(system.servers, datastore_mode="all")
            if not report.ok:  # pragma: no cover - would mean a broken harness
                raise AssertionError(f"honest baseline not clean: {report.summary()}")
            self._honest_audit_time = report.audit_wall_time_s
        return self._honest_audit_time

    def run_scenario(self, scenario: CampaignScenario) -> DetectionResult:
        system = self.build_system(scenario.deployment)
        reserved = self.reserved_items(system)
        policies: Dict[str, PlannedFaultPolicy] = {}
        by_target: Dict[str, List[FaultPlan]] = {}
        # Anchor faults target the ordering service, which has no
        # FaultPolicy hooks; the runner applies them after the workload.
        anchor_plans = [p for p in scenario.plans if p.fault == "anchor-tamper"]
        for plan in scenario.plans:
            if plan.fault == "anchor-tamper":
                continue
            by_target.setdefault(plan.target, []).append(self._resolve(plan, reserved))
        for target, plans in by_target.items():
            policy = PlannedFaultPolicy(plans)
            policies[target] = policy
            system.inject_fault(target, policy)

        workload_result = system.run_workload(
            self.workload_specs(system), num_clients=self.config.num_clients
        )
        recoveries = self._recover_crashed(system, scenario) if scenario.liveness else {}
        # Failover scenarios depose the faulty coordinator once it is back
        # up (or still lying): the view change re-proposes the stalled
        # rounds and the probe below must commit under the successor.
        failover_outcome = system.fail_over() if scenario.failover else None
        pre_probe_results = (
            len(system.coordinator.results) if system.coordinator is not None else 0
        )
        self._run_probe(system, scenario)
        if scenario.liveness:
            # A late trigger (height/phase not reached until the probe) can
            # crash the target mid-probe; recover again so the audit runs on
            # a live cluster.
            recoveries.update(self._recover_crashed(system, scenario))
        if anchor_plans:
            self._tamper_anchors(system)

        report = system.auditor().run_audit(
            system.servers, datastore_mode="all", **self._audit_kwargs(system)
        )

        result = DetectionResult(
            scenario=scenario.name,
            fault_kinds=scenario.fault_kinds,
            targets=scenario.targets,
            deterministic=scenario.deterministic,
            expected_violation=scenario.expected_violation,
            expected_culprits=scenario.expected_culprits,
            liveness=scenario.liveness,
            audit_time_s=report.audit_wall_time_s,
            honest_audit_time_s=self._honest_baseline(),
            committed=workload_result.committed,
            aborted=workload_result.aborted,
            failed=workload_result.failed,
            report=report,
        )
        heights = [p.first_fired_height() for p in policies.values()]
        heights = [h for h in heights if h is not None]
        result.fault_height = min(heights) if heights else None

        if failover_outcome is not None:
            result.failover = True
            result.failover_successor = failover_outcome.successor
            result.new_view = failover_outcome.new_view
            result.post_failover_committed = sum(
                1
                for block_result in system.coordinator.results[pre_probe_results:]
                if block_result.status == "committed"
            )
            result.recovered_after_failover = (
                result.post_failover_committed > 0 and report.ok
            )

        if scenario.liveness:
            self._detect_liveness(system, scenario, result, recoveries, report)
        elif scenario.expected_violation is None:
            self._detect_protocol(system, scenario, result)
        else:
            self._detect_audit(report, scenario, result)
        return result

    def _recover_crashed(self, system: FidesSystem, scenario: CampaignScenario) -> Dict:
        """Recover every crashed server, consulting tampering peers *first*.

        Putting declared catch-up tamperers at the front of the peer order
        guarantees their doctored state response is actually exercised
        (and must be rejected) before an honest peer completes the recovery.
        """
        tamperers = [
            plan.target for plan in scenario.plans if plan.fault == "tamper-catchup"
        ]
        recoveries = {}
        for server_id in system.crashed_servers():
            peers = [peer for peer in tamperers if peer != server_id] + [
                peer
                for peer in system.server_ids
                if peer != server_id
                and peer not in tamperers
                and not system.servers[peer].crashed
            ]
            recoveries[server_id] = system.recover_server(server_id, peer_order=peers)
        return recoveries

    @staticmethod
    def _audit_kwargs(system) -> Dict[str, object]:
        """Anchor-verification arguments for sharded-sequencer deployments."""
        ordering = getattr(system, "ordering", None)
        if ordering is None:
            return {}
        anchors = getattr(ordering, "epoch_anchors", None)
        shard_map = getattr(ordering, "shard_map", None)
        if not anchors or shard_map is None:
            return {}
        return {"epoch_anchors": anchors, "ordering_shard_map": shard_map}

    @staticmethod
    def _tamper_anchors(system) -> None:
        """Doctor the sharded sequencer's last epoch anchor (shard heads).

        The signed blocks themselves stay untouched -- only the service's
        anchor chain lies, which is exactly the misbehaviour the auditor's
        per-shard replay must pin on ``ordserv``.
        """
        from dataclasses import replace as dc_replace

        service = system.ordering
        if not service.epoch_anchors:
            system.flush()
        anchors = service._anchors
        last = anchors[-1]
        anchors[-1] = dc_replace(
            last, shard_heads=tuple(b"\x00" * 32 for _ in last.shard_heads)
        )

    @staticmethod
    def _resolve(plan: FaultPlan, reserved: Dict[str, str]) -> FaultPlan:
        """Substitute ``$reserved`` placeholders with the target's probe item."""
        params = dict(plan.params)
        for key in ("item",):
            if params.get(key) == RESERVED_ITEM:
                params[key] = reserved[plan.target]
        return FaultPlan(
            fault=plan.fault, target=plan.target, trigger=plan.trigger, params=params
        )

    def _detect_audit(
        self, report: AuditReport, scenario: CampaignScenario, result: DetectionResult
    ) -> None:
        result.violation_kinds = tuple(
            dict.fromkeys(v.kind.value for v in report.violations)
        )
        result.culprits = report.culprit_servers()
        matching = report.violations_of(scenario.expected_violation)
        if not matching:
            return
        result.detected = True
        result.detected_by = "audit"
        result.culprit_correct = all(
            any(v.involves(culprit) for v in matching)
            for culprit in scenario.expected_culprits
        )
        heights = [v.block_height for v in matching if v.block_height is not None]
        if heights:
            result.detection_height = min(heights)
            result.blocks_until_detection = report.detection_latency_blocks(
                result.detection_height
            )

    def _detect_protocol(
        self, system: FidesSystem, scenario: CampaignScenario, result: DetectionResult
    ) -> None:
        """Detection inside the TFCommit round: refusals and faulty signers.

        A cohort refusing the challenge phase implicates the *coordinator*
        (it assembled a block inconsistent with the votes, or equivocated);
        an invalid partial signature identifies the lying cohort directly
        (Lemma 4).
        """
        culprits: List[str] = []
        # Retired coordinators are scanned too: after a failover the lying
        # coordinator's failed rounds live in *its* result list, not the
        # successor's, and refusals implicate the server that drove the round.
        for coordinator in system._coordinators():
            for block_result in coordinator.results:
                if block_result.status != "failed":
                    continue
                for culprit in block_result.culprits:
                    if culprit not in culprits:
                        culprits.append(culprit)
                if block_result.refusals and coordinator.coordinator_id not in culprits:
                    culprits.append(coordinator.coordinator_id)
        result.culprits = tuple(culprits)
        if culprits:
            result.detected = True
            result.detected_by = "protocol"
            result.blocks_until_detection = 0
            result.culprit_correct = all(
                culprit in culprits for culprit in scenario.expected_culprits
            )

    def _detect_liveness(
        self,
        system: FidesSystem,
        scenario: CampaignScenario,
        result: DetectionResult,
        recoveries: Dict,
        report: AuditReport,
    ) -> None:
        """Crash/recovery detection: round failures and rejected catch-up.

        A crashed cohort surfaces as an *unreachable* refusal in a failed
        TFCommit round (the liveness signal); a tampering catch-up peer
        surfaces as a rejected state response during recovery.  Neither
        may appear in the audit report as a safety violation pinned on the
        target -- ``misattributed`` records whether that invariant held.
        """
        culprits: List[str] = []
        for coordinator in system._coordinators():
            for block_result in coordinator.results:
                for refusal in block_result.refusals:
                    server_id = refusal.get("server_id")
                    if refusal.get("unreachable") and server_id and server_id not in culprits:
                        culprits.append(server_id)
        for recovery in recoveries.values():
            for peer in recovery.rejected_peers:
                if peer not in culprits:
                    culprits.append(peer)
        result.culprits = tuple(culprits)
        result.recovered_servers = tuple(recoveries)
        result.recovery_rejections = tuple(
            sorted(
                {
                    peer
                    for recovery in recoveries.values()
                    for peer in recovery.rejected_peers
                }
            )
        )
        result.misattributed = any(
            violation.involves(target)
            for violation in report.violations
            for target in scenario.targets
        )
        if culprits:
            result.detected = True
            result.detected_by = "liveness"
            result.blocks_until_detection = 0
            # Liveness attribution covers the *crash* targets (seen as
            # unreachable by the failed rounds).  A catch-up tamperer only
            # becomes observable if its trigger fired during a recovery with
            # a non-empty gap, so it is asserted via ``recovery_rejections``
            # where the scenario makes it deterministic, not here.
            crash_targets = [
                plan.target
                for plan in scenario.plans
                if plan.fault in ("crash", "coordinator-crash")
            ]
            result.culprit_correct = all(
                target in culprits for target in crash_targets
            )

    # -- the matrix ------------------------------------------------------------

    def run_matrix(
        self, scenarios: Optional[Sequence[CampaignScenario]] = None
    ) -> List[DetectionResult]:
        if scenarios is None:
            scenarios = build_fault_matrix(self.config.server_ids)
        return [self.run_scenario(scenario) for scenario in scenarios]


def run_campaign(
    config: Optional[CampaignConfig] = None,
    scenarios: Optional[Sequence[CampaignScenario]] = None,
) -> List[DetectionResult]:
    """Convenience one-shot: build a runner and sweep the matrix."""
    return CampaignRunner(config).run_matrix(scenarios)
