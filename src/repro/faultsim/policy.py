"""Plan-driven fault behaviour: one composable policy per misbehaving server.

:class:`PlannedFaultPolicy` is the bridge between declarative
:class:`~repro.faultsim.plan.FaultPlan` objects and the
:class:`~repro.server.faults.FaultPolicy` hooks the server layers consult.
It materialises each plan's trigger, gates every hook on it, and records
*where* each fault first fired (block height) so the campaign runner can
compute blocks-until-detection.

Several plans can share one policy (a server running multiple misbehaviours,
or a colluding cohort), which is what makes campaigns composable without
hand-writing a new ``FaultPolicy`` subclass per combination.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence

from repro.common.types import ItemId, ServerId, Value
from repro.crypto.cosi import CollectiveSignature
from repro.crypto.group import CURVE_ORDER, Point, generator_multiply
from repro.faultsim.plan import FaultPlan
from repro.faultsim.triggers import Trigger, trigger_from_spec
from repro.ledger.block import BlockDecision
from repro.server.faults import FaultPolicy

#: Value substituted for corrupted integer reads when the plan gives none.
_DEFAULT_CORRUPT_DELTA = 7_777_777


class PlannedFaultPolicy(FaultPolicy):
    """Executes a list of fault plans for one server."""

    def __init__(self, plans: Sequence[FaultPlan]) -> None:
        self._plans: List[FaultPlan] = list(plans)
        self._triggers: List[Trigger] = [trigger_from_spec(p.trigger) for p in self._plans]
        self.name = "+".join(p.fault for p in self._plans) or "honest"
        #: fault kind -> block height of the context when it first fired.
        self.fired_heights: Dict[str, Optional[int]] = {}
        self._log_tampered = False

    # -- bookkeeping ---------------------------------------------------------

    def plans_for(self, fault: str) -> List[int]:
        return [i for i, plan in enumerate(self._plans) if plan.fault == fault]

    def _trigger_fires(self, index: int, item_id: Optional[str] = None) -> bool:
        return self._triggers[index].fires(self.context, item_id=item_id)

    def _mark_fired(self, index: int) -> None:
        plan = self._plans[index]
        if plan.fault not in self.fired_heights:
            self.fired_heights[plan.fault] = self.context.block_height
            obs = getattr(self, "_obs", None)
            if obs is not None:
                obs.metrics.counter("faults.injected")
                obs.tracer.instant(
                    f"inject:{plan.fault}",
                    "fault-inject",
                    plan.target,
                    self.context.sim_time or 0.0,
                    block_height=self.context.block_height,
                )

    def _fire(self, index: int, item_id: Optional[str] = None) -> bool:
        """Consult plan ``index``'s trigger; record the first firing height."""
        if not self._trigger_fires(index, item_id=item_id):
            return False
        self._mark_fired(index)
        return True

    def fired(self, fault: Optional[str] = None) -> bool:
        if fault is None:
            return bool(self.fired_heights)
        return fault in self.fired_heights

    def first_fired_height(self) -> Optional[int]:
        heights = [h for h in self.fired_heights.values() if h is not None]
        return min(heights) if heights else None

    def _item_matches(self, plan: FaultPlan, item_id: ItemId) -> bool:
        wanted = plan.params.get("item")
        return wanted is None or wanted == item_id

    # -- execution-layer hooks -----------------------------------------------

    def corrupt_read_value(self, item_id: ItemId, value: Value) -> Value:
        for index in self.plans_for("read-corruption"):
            plan = self._plans[index]
            if not self._item_matches(plan, item_id):
                continue
            if not self._fire(index, item_id=item_id):
                continue
            if "value" in plan.params:
                return plan.params["value"]
            if isinstance(value, int):
                return value + _DEFAULT_CORRUPT_DELTA
            return "__corrupted__"
        return value

    # ``drop_buffered_write`` is deliberately left honest: the committed
    # state (speculative roots, applied writes) derives from the block's
    # write set, not the execution buffer, so a buffered drop is inert --
    # and consulting the same stateful trigger from two hooks would advance
    # it twice per write.  The declarative "drop-write" kind models the
    # detectable fault: the apply-time drop below.

    # -- commitment-layer hooks ----------------------------------------------

    def skip_validation(self) -> bool:
        return any(self._fire(i) for i in self.plans_for("skip-validation"))

    def corrupt_commitment(self, commitment: Point) -> Point:
        for index in self.plans_for("corrupt-commitment"):
            if self._fire(index):
                return generator_multiply(
                    int(self._plans[index].params.get("scalar", 54321)) % CURVE_ORDER
                )
        return commitment

    def corrupt_response(self, response: int) -> int:
        for index in self.plans_for("corrupt-response"):
            if self._fire(index):
                return (response + int(self._plans[index].params.get("delta", 1))) % CURVE_ORDER
        return response

    def corrupt_root(self, root: bytes) -> bytes:
        for index in self.plans_for("corrupt-root"):
            if self._fire(index):
                return self._plans[index].params.get("root", b"\xfe" * 32)
        return root

    def collude_on_challenge(self) -> bool:
        return any(self._fire(i) for i in self.plans_for("collude"))

    # -- datastore hooks -----------------------------------------------------

    def filter_applied_writes(self, writes: Dict[ItemId, Value]) -> Dict[ItemId, Value]:
        kept = dict(writes)
        for index in self.plans_for("drop-write"):
            plan = self._plans[index]
            for item_id in list(kept):
                if self._item_matches(plan, item_id) and self._fire(index, item_id=item_id):
                    del kept[item_id]
        return kept

    def post_commit_corruption(self) -> Dict[ItemId, Value]:
        # Corruption is persistent: re-applied after every commit once the
        # trigger fires, so honest writes cannot mask it before the audit.
        corruption: Dict[ItemId, Value] = {}
        for index in self.plans_for("post-commit-corruption"):
            plan = self._plans[index]
            if not self._fire(index):
                continue
            if "items" in plan.params:
                corruption.update(plan.params["items"])
            elif "item" in plan.params:
                corruption[plan.params["item"]] = plan.params.get("value", -424242)
        return corruption

    # -- coordinator hooks ---------------------------------------------------

    def equivocate(self) -> bool:
        # "byzantine-coordinator" is the failover-scenario alias of the same
        # hook: equivocate until the view change deposes this server.
        return any(
            self._fire(index)
            for fault in ("equivocate", "byzantine-coordinator")
            for index in self.plans_for(fault)
        )

    def fake_root_for(self, server_id: ServerId, root: Optional[bytes]) -> Optional[bytes]:
        for index in self.plans_for("fake-root"):
            plan = self._plans[index]
            if plan.params.get("victim") == server_id and self._fire(index):
                return plan.params.get("root", b"\x00" * 32)
        for index in self.plans_for("drop-root"):
            plan = self._plans[index]
            if plan.params.get("victim") == server_id and self._fire(index):
                return None
        return root

    # -- crash / recovery hooks ----------------------------------------------

    def crash_now(self) -> bool:
        # One-shot per plan: a recovered server must not crash again the
        # moment it rejoins (the trigger would keep firing forever for
        # "always" / latched-probability / at-height->= specs), so a crash
        # plan that has fired is permanently spent.
        for fault in ("crash", "coordinator-crash"):
            for index in self.plans_for(fault):
                if self.fired(self._plans[index].fault):
                    continue
                if self._fire(index):
                    return True
        return False

    def tamper_state_response(self, blocks: list) -> list:
        """Doctor the catch-up payload served to a recovering peer.

        Flips the first write value of the first served block (wire-dict
        level, so the peer's own log is untouched); the recovering server's
        co-sign verification must reject the whole response.
        """
        for index in self.plans_for("tamper-catchup"):
            if not blocks or not self._fire(index):
                continue
            doctored = [dict(block) for block in blocks]
            body = dict(doctored[0]["body"])
            transactions = [dict(txn) for txn in body["transactions"]]
            tampered = False
            for t_index, txn in enumerate(transactions):
                if txn["write_set"]:
                    write_set = [dict(entry) for entry in txn["write_set"]]
                    write_set[0]["new_value"] = self._plans[index].params.get(
                        "value", "__tampered__"
                    )
                    txn = dict(txn)
                    txn["write_set"] = write_set
                    transactions[t_index] = txn
                    tampered = True
                    break
            if not tampered:
                continue
            body["transactions"] = transactions
            doctored[0] = dict(doctored[0])
            doctored[0]["body"] = body
            return doctored
        return blocks

    # -- log hooks -----------------------------------------------------------

    def maintains_log_integrity(self) -> bool:
        return not self._log_tampered

    def tamper_log(self, log) -> None:
        # One-shot tampers mark themselves fired only once they actually
        # mutated the log; a firing trigger with nothing to tamper yet (e.g.
        # the target block does not exist) retries at the next decision.
        one_shot = (
            ("log-tamper", lambda i: self._forge_write_entry(
                log, int(self._plans[i].params.get("height", 0))
            )),
            ("fork-decision", lambda i: self._fork_decision(
                log, self._plans[i].params.get("height")
            )),
            ("forge-cosign", lambda i: self._forge_cosign(
                log, self._plans[i].params.get("height")
            )),
        )
        for fault, tamper in one_shot:
            for index in self.plans_for(fault):
                if not self.fired(fault) and self._trigger_fires(index) and tamper(index):
                    self._mark_fired(index)
        for index in self.plans_for("log-truncate"):
            # Re-truncate on every decision so blocks appended after the
            # first firing are dropped again: the audited copy stays a short
            # valid prefix (Lemma 7) rather than a broken chain (Lemma 6).
            if self.fired("log-truncate") or self._trigger_fires(index):
                keep = int(self._plans[index].params.get("keep", 1))
                if len(log) > keep:
                    self._log_tampered = True
                    log.truncate(keep)
                    self._mark_fired(index)

    def _forge_write_entry(self, log, height: int) -> bool:
        """Overwrite a logged write value after the fact (Lemma 6)."""
        if len(log) <= height:
            return False
        block = log[height]
        for t_index, txn in enumerate(block.transactions):
            if not txn.write_set:
                continue
            entry = dc_replace(txn.write_set[0], new_value="__forged__")
            forged_txn = dc_replace(
                txn, write_set=(entry,) + tuple(txn.write_set[1:])
            )
            transactions = list(block.transactions)
            transactions[t_index] = forged_txn
            self._log_tampered = True
            log.tamper_replace(height, dc_replace(block, transactions=tuple(transactions)))
            return True
        return False

    def _fork_decision(self, log, height: Optional[int]) -> bool:
        """Flip a committed block's decision, modelling a forked outcome (Lemma 5)."""
        heights = [height] if height is not None else range(len(log) - 1, -1, -1)
        for h in heights:
            if h < len(log) and log[h].is_commit:
                forked = dc_replace(log[h], decision=BlockDecision.ABORT, roots={})
                self._log_tampered = True
                log.tamper_replace(h, forked)
                return True
        return False

    def _forge_cosign(self, log, height: Optional[int]) -> bool:
        """Replace a block's collective signature, keeping the content (Lemma 4)."""
        h = height if height is not None else len(log) - 1
        if h < 0 or h >= len(log):
            return False
        block = log[h]
        if block.cosign is None:
            return False
        bogus = CollectiveSignature(
            challenge=(block.cosign.challenge + 1) % CURVE_ORDER,
            response=(block.cosign.response + 1) % CURVE_ORDER,
            signer_ids=block.cosign.signer_ids,
        )
        self._log_tampered = True
        log.tamper_replace(h, block.with_cosign(bogus))
        return True
