"""Declarative fault plans and the campaign matrix.

A :class:`FaultPlan` says *which* server misbehaves, *which* fault (one entry
per :class:`~repro.server.faults.FaultPolicy` hook), and *when* (a trigger
spec, see :mod:`repro.faultsim.triggers`).  Plans are plain data -- every
field JSON-serialisable -- so campaigns can be written down, diffed, and
swept.

A :class:`CampaignScenario` composes one or more plans (multi-server
collusion needs two) with the probe that surfaces the fault and the
*expectation*: the :class:`~repro.audit.violations.ViolationType` the auditor
must report (or ``None`` for faults the TFCommit round itself must catch)
and the culprit attribution the detection must pin.

:func:`build_fault_matrix` enumerates the full fault x trigger grid -- the
sweepable artifact behind ``python -m repro.bench faultmatrix`` and the
detection-matrix test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.audit.violations import ViolationType
from repro.common.errors import ConfigurationError

#: Placeholder resolved by the campaign runner to the target server's
#: reserved probe item (the first item of its shard, excluded from the
#: background workload so probes stay deterministic).
RESERVED_ITEM = "$reserved"

#: Fault kinds, one per FaultPolicy hook.  ``scope`` says which role the
#: target server must play; ``detected_by`` is where the paper's guarantees
#: catch the misbehaviour ("audit" for the offline auditor, "protocol" for
#: the TFCommit round itself).
FAULT_KINDS: Dict[str, Dict[str, object]] = {
    # -- execution layer ------------------------------------------------------
    "read-corruption": {"hook": "corrupt_read_value", "scope": "cohort", "detected_by": "audit"},
    # drop-write acts at apply time (the server co-signs the correct root,
    # then never persists the write); the buffered-drop hook is inert for
    # committed state, so the plan drives only filter_applied_writes.
    "drop-write": {"hook": "filter_applied_writes", "scope": "cohort", "detected_by": "audit"},
    # -- commitment layer -----------------------------------------------------
    "skip-validation": {"hook": "skip_validation", "scope": "cohort", "detected_by": "audit"},
    "corrupt-commitment": {"hook": "corrupt_commitment", "scope": "cohort", "detected_by": "protocol"},
    "corrupt-response": {"hook": "corrupt_response", "scope": "cohort", "detected_by": "protocol"},
    "corrupt-root": {"hook": "corrupt_root", "scope": "cohort", "detected_by": "audit"},
    "collude": {"hook": "collude_on_challenge", "scope": "cohort", "detected_by": "audit"},
    # -- datastore ------------------------------------------------------------
    "post-commit-corruption": {"hook": "post_commit_corruption", "scope": "cohort", "detected_by": "audit"},
    # -- coordinator ----------------------------------------------------------
    "equivocate": {"hook": "equivocate", "scope": "coordinator", "detected_by": "protocol"},
    "fake-root": {"hook": "fake_root_for", "scope": "coordinator", "detected_by": "protocol"},
    "drop-root": {"hook": "fake_root_for", "scope": "coordinator", "detected_by": "audit"},
    # A coordinator crash stalls every round it was driving: cohorts keep
    # their armed round state (no ROUND_FAILED can arrive -- the sender is
    # dead) until a view change deposes it and the elected successor
    # re-proposes from the certified commit frontier.
    "coordinator-crash": {"hook": "crash_now", "scope": "coordinator", "detected_by": "liveness"},
    # An equivocating coordinator the cluster *deposes*: detection is the
    # cohorts' challenge refusals (protocol), recovery is the view change
    # electing an honest successor that commits where the liar could not.
    "byzantine-coordinator": {"hook": "equivocate", "scope": "coordinator", "detected_by": "protocol"},
    # -- ordering service ------------------------------------------------------
    # A misbehaving sharded ordering service publishing an epoch anchor that
    # does not match the per-shard chains of the blocks it delivered.  Not a
    # server-side FaultPolicy hook: the campaign runner doctors the service's
    # anchor chain directly after the workload (DESIGN.md section 13).
    "anchor-tamper": {"hook": "tamper_anchor", "scope": "ordserv", "detected_by": "audit"},
    # -- log ------------------------------------------------------------------
    "log-tamper": {"hook": "tamper_log", "scope": "log", "detected_by": "audit"},
    "log-truncate": {"hook": "tamper_log", "scope": "log", "detected_by": "audit"},
    "fork-decision": {"hook": "tamper_log", "scope": "log", "detected_by": "audit"},
    "forge-cosign": {"hook": "tamper_log", "scope": "log", "detected_by": "audit"},
    # -- crash / recovery (liveness axis) --------------------------------------
    # A crash is a *liveness* event: it is detected by the TFCommit round
    # failing (the cohort became unreachable) and must never be attributed as
    # a protocol violation by the auditor.
    "crash": {"hook": "crash_now", "scope": "cohort", "detected_by": "liveness"},
    # A malicious peer serving doctored catch-up blocks to a recovering
    # server; detection is the recovering server *rejecting* the response.
    "tamper-catchup": {"hook": "tamper_state_response", "scope": "peer", "detected_by": "recovery"},
}


@dataclass(frozen=True)
class FaultPlan:
    """One server's declared misbehaviour: which fault, where, and when."""

    fault: str
    target: str
    trigger: Mapping = field(default_factory=dict)
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.fault!r}; known: {sorted(FAULT_KINDS)}"
            )
        object.__setattr__(self, "trigger", dict(self.trigger))
        object.__setattr__(self, "params", dict(self.params))

    @property
    def hook(self) -> str:
        return str(FAULT_KINDS[self.fault]["hook"])

    def to_dict(self) -> Dict[str, object]:
        return {
            "fault": self.fault,
            "target": self.target,
            "trigger": dict(self.trigger),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(
            fault=data["fault"],
            target=data["target"],
            trigger=data.get("trigger", {}),
            params=data.get("params", {}),
        )


@dataclass(frozen=True)
class CampaignScenario:
    """One row of the fault matrix: plans + probe + detection expectation."""

    name: str
    plans: Tuple[FaultPlan, ...]
    #: Probe driven after the background workload: "rw" (read-modify-write on
    #: the reserved item), "stale-txn" (the Figure 10 stale-read dance), or
    #: "none" (log faults manifest from the workload history alone).
    probe: str = "rw"
    #: ViolationType the audit must report; None when detection happens
    #: inside the TFCommit round (refusals / faulty-signer identification).
    expected_violation: Optional[ViolationType] = None
    expected_culprits: Tuple[str, ...] = ()
    #: False for seeded-probability variants, where the trigger may simply
    #: never draw -- the sweep reports those rather than asserting on them.
    deterministic: bool = True
    #: True for crash/recovery scenarios: the campaign runner recovers every
    #: crashed server before probing and auditing, and detection is
    #: classified as a liveness event (round failure / rejected catch-up),
    #: never as a safety violation.
    liveness: bool = False
    #: True when the runner must depose the (crashed or Byzantine)
    #: coordinator via ``system.fail_over()`` after recovery, then verify
    #: that post-view-change commits succeed under the elected successor.
    failover: bool = False
    #: Which deployment the scenario runs against: ``"classic"`` (the
    #: default single-coordinator FidesSystem) or ``"sharded"`` (a
    #: ScaledFidesSystem with the sharded sequencer -- the only deployment
    #: where epoch anchors, and hence anchor faults, exist).
    deployment: str = "classic"

    def __post_init__(self) -> None:
        object.__setattr__(self, "plans", tuple(self.plans))
        object.__setattr__(self, "expected_culprits", tuple(self.expected_culprits))
        if not self.plans:
            raise ConfigurationError("a scenario needs at least one fault plan")

    @property
    def fault_kinds(self) -> Tuple[str, ...]:
        return tuple(plan.fault for plan in self.plans)

    @property
    def targets(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(plan.target for plan in self.plans))


def _base_scenarios(server_ids: Sequence[str]) -> List[CampaignScenario]:
    """The per-fault-kind scenarios with always-firing triggers.

    ``server_ids[0]`` is the designated coordinator (as built by
    :class:`~repro.core.fides.FidesSystem`); the standard malicious cohort is
    ``server_ids[1]`` and the coordinator's victim is also ``server_ids[1]``.
    """
    if len(server_ids) < 3:
        raise ConfigurationError("the fault matrix needs at least 3 servers")
    coordinator = server_ids[0]
    cohort = server_ids[1]
    victim = server_ids[1]

    def plan(fault: str, target: str, **params) -> FaultPlan:
        return FaultPlan(fault=fault, target=target, params=params)

    return [
        CampaignScenario(
            name="read-corruption",
            plans=(plan("read-corruption", cohort, item=RESERVED_ITEM),),
            probe="rw",
            expected_violation=ViolationType.INCORRECT_READ,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="drop-write",
            plans=(plan("drop-write", cohort, item=RESERVED_ITEM),),
            probe="rw",
            expected_violation=ViolationType.DATASTORE_CORRUPTION,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="skip-validation",
            plans=(plan("skip-validation", cohort),),
            probe="stale-txn",
            expected_violation=ViolationType.ISOLATION_VIOLATION,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="corrupt-root",
            plans=(plan("corrupt-root", cohort),),
            probe="rw",
            expected_violation=ViolationType.DATASTORE_CORRUPTION,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="post-commit-corruption",
            plans=(plan("post-commit-corruption", cohort, item=RESERVED_ITEM, value=-424242),),
            probe="rw",
            expected_violation=ViolationType.DATASTORE_CORRUPTION,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="corrupt-commitment",
            plans=(plan("corrupt-commitment", cohort),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="corrupt-response",
            plans=(plan("corrupt-response", cohort),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="equivocate",
            plans=(plan("equivocate", coordinator),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(coordinator,),
        ),
        CampaignScenario(
            name="fake-root",
            plans=(plan("fake-root", coordinator, victim=victim),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(coordinator,),
        ),
        CampaignScenario(
            # The coordinator drops the victim's root from the block and the
            # victim colludes by co-signing anyway: the only way a malformed
            # commit block enters the replicated log (Section 4.3.2).  The
            # auditor blames the server whose root is missing.
            name="drop-root-collusion",
            plans=(
                plan("drop-root", coordinator, victim=victim),
                plan("collude", victim),
            ),
            probe="rw",
            expected_violation=ViolationType.MALFORMED_BLOCK,
            expected_culprits=(victim,),
        ),
        CampaignScenario(
            name="log-tamper",
            plans=(plan("log-tamper", cohort, height=0),),
            probe="rw",
            expected_violation=ViolationType.LOG_TAMPERED,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="log-truncate",
            plans=(plan("log-truncate", cohort, keep=1),),
            probe="rw",
            expected_violation=ViolationType.LOG_INCOMPLETE,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="fork-decision",
            plans=(plan("fork-decision", cohort),),
            probe="rw",
            expected_violation=ViolationType.ATOMICITY_VIOLATION,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            name="forge-cosign",
            plans=(plan("forge-cosign", cohort),),
            probe="rw",
            expected_violation=ViolationType.INVALID_COSIGN,
            expected_culprits=(cohort,),
        ),
        CampaignScenario(
            # The sharded ordering service publishes a doctored epoch anchor
            # (its sealed per-shard chain heads do not match the blocks it
            # delivered).  The auditor replays the reference log's per-shard
            # chains and pins the mismatch on the ordering service itself --
            # the one participant whose misbehaviour no server co-sign covers.
            name="anchor-tamper",
            plans=(plan("anchor-tamper", "ordserv"),),
            probe="none",
            expected_violation=ViolationType.ANCHOR_MISMATCH,
            expected_culprits=("ordserv",),
            deployment="sharded",
        ),
        CampaignScenario(
            # The cohort crashes mid-round (vote phase, one-shot): the round
            # fails with the cohort unreachable, the runner recovers it via
            # peer catch-up, and the probe + audit then succeed cleanly.
            name="crash",
            plans=(plan("crash", cohort),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(cohort,),
            liveness=True,
        ),
        CampaignScenario(
            # One cohort crashes; another serves it doctored catch-up blocks
            # during recovery.  The recovering server must reject the
            # tampered state response (its verification catches the forgery)
            # and complete recovery from an honest peer.  The crash fires in
            # the *decision* phase so a block commits cluster-wide that the
            # crashed server missed -- in the classic full-cluster deployment
            # that is the only way a catch-up gap can exist (once a cohort is
            # down, no further round can commit), and a gap is what gives the
            # tamperer something to doctor.  The phase trigger is scenario
            # semantics, so the matrix's trigger variants leave it alone.
            name="tampered-catchup",
            plans=(
                FaultPlan(
                    fault="crash",
                    target=server_ids[2],
                    trigger={"kind": "phase", "phases": ["decision"]},
                ),
                plan("tamper-catchup", cohort),
            ),
            probe="rw",
            expected_violation=None,
            expected_culprits=(server_ids[2], cohort),
            liveness=True,
        ),
        CampaignScenario(
            # The *coordinator* crashes mid-round.  Unlike a cohort crash,
            # no ROUND_FAILED can be sent (the sender is the dead server), so
            # surviving cohorts keep their armed round state and the rounds
            # stall.  The runner recovers the server, deposes it via the view
            # change, and the successor re-proposes the stalled rounds from
            # the certified frontier; the probe then commits under the new
            # coordinator and the audit must stay clean.
            name="coordinator-crash",
            plans=(plan("coordinator-crash", coordinator),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(coordinator,),
            liveness=True,
            failover=True,
        ),
        CampaignScenario(
            # A Byzantine coordinator that equivocates *and is then deposed*:
            # the cohorts' challenge refusals detect it (protocol), the view
            # change elects an honest successor, and the probe verifies the
            # cluster commits again -- turning the paper's "malicious
            # coordinators cost liveness, never safety" into "...and the
            # liveness loss is bounded by one view change".
            name="byzantine-coordinator",
            plans=(plan("byzantine-coordinator", coordinator),),
            probe="rw",
            expected_violation=None,
            expected_culprits=(coordinator,),
            failover=True,
        ),
    ]


#: Trigger variants swept by the full matrix.  ``at-height`` activates the
#: fault only from block 2 on (the first blocks commit honestly, giving the
#: blocks-until-detection metric something to measure); ``probability`` draws
#: per consultation with a fixed seed and latches once fired.
DEFAULT_TRIGGER_VARIANTS: Tuple[Tuple[str, Mapping, bool], ...] = (
    ("always", {}, True),
    ("at-height-2", {"kind": "at-height", "height": 2}, True),
    ("p50", {"kind": "probability", "probability": 0.5, "seed": 77}, False),
)


def build_fault_matrix(
    server_ids: Sequence[str],
    trigger_variants: Optional[Sequence[Tuple[str, Mapping, bool]]] = None,
) -> List[CampaignScenario]:
    """Enumerate the full fault x trigger grid as concrete scenarios."""
    variants = DEFAULT_TRIGGER_VARIANTS if trigger_variants is None else trigger_variants
    matrix: List[CampaignScenario] = []
    for suffix, trigger_spec, deterministic in variants:
        for scenario in _base_scenarios(server_ids):
            plans = tuple(
                FaultPlan(
                    fault=plan.fault,
                    target=plan.target,
                    # A plan whose base scenario already pins a trigger keeps
                    # it (the trigger is part of the scenario's semantics,
                    # e.g. the decision-phase crash of tampered-catchup);
                    # only open triggers are swept across the variants.
                    trigger=plan.trigger if plan.trigger else trigger_spec,
                    params=plan.params,
                )
                for plan in scenario.plans
            )
            matrix.append(
                CampaignScenario(
                    name=f"{scenario.name}@{suffix}",
                    plans=plans,
                    probe=scenario.probe,
                    expected_violation=scenario.expected_violation,
                    expected_culprits=scenario.expected_culprits,
                    deterministic=deterministic and scenario.deterministic,
                    liveness=scenario.liveness,
                    failover=scenario.failover,
                    deployment=scenario.deployment,
                )
            )
    return matrix
