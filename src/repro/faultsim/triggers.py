"""Trigger predicates: *when* a planned fault fires.

A :class:`~repro.faultsim.plan.FaultPlan` pairs a fault kind with a trigger
spec.  Triggers are evaluated against the :class:`~repro.server.faults.FaultContext`
the server layers maintain (protocol phase, block height, transactions in
flight) plus whatever per-call detail the hook itself has (the item being
read, the transaction id), so one declarative schema covers all four firing
modes the campaign engine sweeps:

* ``always`` -- fire on every consultation (the classic hand-wired faults);
* ``at-height`` -- fire at (or from) a given block height;
* ``phase`` -- fire only while the server is in one of the given phases;
* ``txn`` -- fire only for matching transactions / items;
* ``probability`` -- fire with a seeded pseudo-random probability, latching
  on once fired so runs stay deterministic for a given seed;
* ``after-calls`` -- fire from the N-th consultation onwards.

Triggers are *stateful* (probability latches, call counters), so each plan
materialises its own instance via :func:`trigger_from_spec`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.server.faults import FaultContext


class Trigger:
    """Base trigger: always fires."""

    kind = "always"

    def fires(
        self,
        ctx: FaultContext,
        item_id: Optional[str] = None,
        txn_id: Optional[str] = None,
    ) -> bool:
        return True

    def describe(self) -> str:
        return self.kind


@dataclass
class AtHeightTrigger(Trigger):
    """Fire at (``exact=True``) or from (default) a given block height."""

    height: int = 0
    exact: bool = False
    kind = "at-height"

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        if ctx.block_height is None:
            return False
        if self.exact:
            return ctx.block_height == self.height
        return ctx.block_height >= self.height

    def describe(self) -> str:
        op = "==" if self.exact else ">="
        return f"height{op}{self.height}"


@dataclass
class PhaseTrigger(Trigger):
    """Fire only while the server is in one of the given protocol phases."""

    phases: Tuple[str, ...] = ()
    kind = "phase"

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        return ctx.phase in self.phases

    def describe(self) -> str:
        return f"phase:{'|'.join(self.phases)}"


@dataclass
class TxnPredicateTrigger(Trigger):
    """Fire only for hook calls concerning matching transactions or items."""

    txn_prefix: str = ""
    item_ids: Tuple[str, ...] = ()
    kind = "txn"

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        if self.item_ids and item_id is not None:
            return item_id in self.item_ids
        candidates = (txn_id,) if txn_id is not None else tuple(ctx.txn_ids)
        if self.txn_prefix:
            return any(t is not None and t.startswith(self.txn_prefix) for t in candidates)
        return bool(candidates)

    def describe(self) -> str:
        if self.item_ids:
            return f"txn:items={','.join(self.item_ids)}"
        return f"txn:prefix={self.txn_prefix}"


@dataclass
class AtTimeTrigger(Trigger):
    """Fire from a given virtual time on the simulated event timeline.

    ``ctx.sim_time`` is stamped by :meth:`~repro.server.faults.FaultPolicy.observe_phase`
    from the deployment's :class:`~repro.sim.clock.VirtualClock`, so the
    trigger fires based on *when the phase occurs on the timeline*, not on
    Python execution order -- under pipelining the two differ.  Outside a
    simulation context ``sim_time`` is ``None`` and the trigger never fires.
    """

    time: float = 0.0
    kind = "at-time"

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        return ctx.sim_time is not None and ctx.sim_time >= self.time

    def describe(self) -> str:
        return f"t>={self.time}"


@dataclass
class ProbabilisticTrigger(Trigger):
    """Fire with seeded probability; latches on once fired (deterministic runs)."""

    probability: float = 0.5
    seed: int = 2020
    latch: bool = True
    kind = "probability"
    _rng: random.Random = field(default=None, repr=False)
    _fired: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("trigger probability must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        if self.latch and self._fired:
            return True
        if self._rng.random() < self.probability:
            self._fired = True
            return True
        return False

    def describe(self) -> str:
        return f"p={self.probability}"


@dataclass
class AfterCallsTrigger(Trigger):
    """Fire from the (``skip`` + 1)-th consultation onwards."""

    skip: int = 0
    kind = "after-calls"
    _calls: int = field(default=0, repr=False)

    def fires(self, ctx, item_id=None, txn_id=None) -> bool:
        self._calls += 1
        return self._calls > self.skip

    def describe(self) -> str:
        return f"after{self.skip}"


_TRIGGER_KINDS = {
    "always": Trigger,
    "at-height": AtHeightTrigger,
    "at-time": AtTimeTrigger,
    "phase": PhaseTrigger,
    "txn": TxnPredicateTrigger,
    "probability": ProbabilisticTrigger,
    "after-calls": AfterCallsTrigger,
}


def trigger_from_spec(spec: Optional[Mapping]) -> Trigger:
    """Materialise a fresh (stateful) trigger from a declarative spec dict.

    ``None`` or ``{}`` means "always".  Tuple-typed fields accept lists so
    specs round-trip through JSON.
    """
    if not spec:
        return Trigger()
    if isinstance(spec, Trigger):
        return spec
    kind = spec.get("kind", "always")
    cls = _TRIGGER_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown trigger kind {kind!r}; known: {sorted(_TRIGGER_KINDS)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    for tuple_field in ("phases", "item_ids"):
        if tuple_field in kwargs:
            kwargs[tuple_field] = tuple(kwargs[tuple_field])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad trigger spec {spec!r}: {exc}") from None
