"""Declarative fault campaigns: plans, triggers, policies, and the runner.

The paper's central claim is *detection*: any malicious server behaviour is
caught by the external auditor (Lemmas 1-7) or by the TFCommit round itself.
This package turns that guarantee into a measurable, sweepable artifact --
see DESIGN.md ("Fault model & campaign engine") and
``python -m repro.bench faultmatrix``.
"""

from repro.faultsim.campaign import (
    CampaignConfig,
    CampaignRunner,
    DetectionResult,
    run_campaign,
)
from repro.faultsim.plan import (
    FAULT_KINDS,
    RESERVED_ITEM,
    CampaignScenario,
    FaultPlan,
    build_fault_matrix,
)
from repro.faultsim.policy import PlannedFaultPolicy
from repro.faultsim.triggers import (
    AfterCallsTrigger,
    AtHeightTrigger,
    AtTimeTrigger,
    PhaseTrigger,
    ProbabilisticTrigger,
    Trigger,
    TxnPredicateTrigger,
    trigger_from_spec,
)

__all__ = [
    "AfterCallsTrigger",
    "AtHeightTrigger",
    "AtTimeTrigger",
    "CampaignConfig",
    "CampaignRunner",
    "CampaignScenario",
    "DetectionResult",
    "FAULT_KINDS",
    "FaultPlan",
    "PhaseTrigger",
    "PlannedFaultPolicy",
    "ProbabilisticTrigger",
    "RESERVED_ITEM",
    "Trigger",
    "TxnPredicateTrigger",
    "build_fault_matrix",
    "run_campaign",
    "trigger_from_spec",
]
