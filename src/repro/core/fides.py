"""Fides: assembling servers, clients, coordinator, and auditor into a system.

:class:`FidesSystem` is the top-level convenience API of the library: it
builds the whole deployment of Figure 4 from a
:class:`~repro.common.config.SystemConfig` -- the sharded servers, the signed
network, the designated coordinator (running either TFCommit or the 2PC
baseline), and client handles -- and exposes the operations examples,
tests, and benchmarks need: executing transactions, injecting faults,
collecting logs, and running audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.client.client import CommitOutcome, FidesClient
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.types import ClientId, ServerId, Value, make_client_id
from repro.core.tfcommit import BlockCommitResult, TFCommitCoordinator
from repro.core.twopc import TwoPhaseCommitCoordinator
from repro.crypto.keys import keypair_for
from repro.crypto.signing import make_signing_scheme
from repro.ledger.log import TransactionLog
from repro.net.latency import LatencyModel, lan_latency
from repro.net.network import Network
from repro.server.faults import FaultPolicy
from repro.server.server import DatabaseServer
from repro.storage.shard import ShardMap, build_uniform_partition
from repro.txn.operations import Operation
from repro.workload.ycsb import TransactionSpec


#: Supported commit protocols.
PROTOCOL_TFCOMMIT = "tfcommit"
PROTOCOL_2PC = "2pc"


@dataclass
class WorkloadResult:
    """Aggregate outcome of executing a list of transaction specs."""

    outcomes: List[CommitOutcome] = field(default_factory=list)
    block_results: List[BlockCommitResult] = field(default_factory=list)

    @property
    def committed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.committed)

    @property
    def aborted(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "aborted")


class FidesSystem:
    """A complete in-process Fides deployment."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        protocol: str = PROTOCOL_TFCOMMIT,
        latency: Optional[LatencyModel] = None,
        initial_value: Value = 0,
    ) -> None:
        self.config = config or SystemConfig()
        if protocol not in (PROTOCOL_TFCOMMIT, PROTOCOL_2PC):
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        self.protocol = protocol
        self.latency = latency or lan_latency(seed=self.config.seed)
        self.network = Network(
            signing_scheme=make_signing_scheme(self.config.message_signing),
            latency=self.latency,
        )

        per_server_items, self.shard_map = build_uniform_partition(self.config, initial_value)
        self.servers: Dict[ServerId, DatabaseServer] = {}
        for server_id in self.config.server_ids:
            server = DatabaseServer(
                server_id=server_id,
                keypair=keypair_for(server_id, seed=self.config.seed),
                items=per_server_items[server_id],
                multi_versioned=self.config.multi_versioned,
            )
            server.attach(self.network)
            self.servers[server_id] = server

        self.coordinator_id = self.config.server_ids[0]
        coordinator_server = self.servers[self.coordinator_id]
        if protocol == PROTOCOL_TFCOMMIT:
            self.coordinator = TFCommitCoordinator(
                server=coordinator_server,
                network=self.network,
                server_ids=self.config.server_ids,
                txns_per_block=self.config.txns_per_block,
                latency=self.latency,
            )
        else:
            self.coordinator = TwoPhaseCommitCoordinator(
                server=coordinator_server,
                network=self.network,
                server_ids=self.config.server_ids,
                txns_per_block=self.config.txns_per_block,
                latency=self.latency,
            )
        coordinator_server.set_coordinator_role(self.coordinator)

        self._clients: Dict[ClientId, FidesClient] = {}

    # -- clients ----------------------------------------------------------------------

    def client(self, index: int = 0) -> FidesClient:
        """Return (creating on first use) the client with the given index."""
        client_id = make_client_id(index)
        if client_id not in self._clients:
            self._clients[client_id] = FidesClient(
                client_id=client_id,
                keypair=keypair_for(client_id, seed=self.config.seed),
                network=self.network,
                shard_map=self.shard_map,
                coordinator_id=self.coordinator_id,
            )
        return self._clients[client_id]

    # -- transaction execution ----------------------------------------------------------

    def run_transaction(
        self, operations: Sequence[Operation], client_index: int = 0
    ) -> CommitOutcome:
        """Execute one transaction (a list of read/write operations) end to end."""
        outcome, _ = self._run_transaction_raw(operations, client_index)
        return outcome

    def _run_transaction_raw(self, operations: Sequence[Operation], client_index: int = 0):
        client = self.client(client_index)
        session = client.begin()
        for op in operations:
            if op.is_read:
                client.read(session, op.item_id)
            else:
                client.write(session, op.item_id, op.value)
        return client.commit_with_response(session)

    def run_workload(
        self, specs: Sequence[TransactionSpec], client_index: int = 0
    ) -> WorkloadResult:
        """Execute a list of workload transaction specs and flush pending batches.

        With batching enabled most ``commit`` calls return ``queued``; their
        final outcomes arrive in the coordinator response that flushed the
        block containing them, and the runner resolves them from there.
        """
        result = WorkloadResult()
        client = self.client(client_index)
        queued: List[str] = []

        def resolve_from(response: Dict) -> None:
            remaining = []
            for txn_id in queued:
                if txn_id in response.get("results", {}):
                    result.outcomes.append(client.interpret_outcome(txn_id, response))
                else:
                    remaining.append(txn_id)
            queued[:] = remaining

        for spec in specs:
            outcome, response = self._run_transaction_raw(spec.operations, client_index)
            if outcome.pending:
                queued.append(outcome.txn_id)
            else:
                result.outcomes.append(outcome)
            if response.get("status") == "flushed":
                resolve_from(response)
        if queued or self.coordinator.pending_count:
            flushed = self.coordinator.flush()
            resolve_from(flushed)
            for txn_id in queued:
                result.outcomes.append(
                    CommitOutcome(txn_id=txn_id, status="failed", reason="never flushed")
                )
        result.block_results = list(self.coordinator.results)
        return result

    def flush(self) -> Dict:
        """Force the coordinator to commit any partially filled batch."""
        return self.coordinator.flush()

    # -- fault injection and audits ---------------------------------------------------------

    def inject_fault(self, server_id: ServerId, policy: FaultPolicy) -> None:
        """Make ``server_id`` behave according to ``policy`` from now on."""
        self.servers[server_id].set_faults(policy)

    def collect_logs(self) -> Dict[ServerId, TransactionLog]:
        """Gather (copies of) every server's log, as the auditor would."""
        return {server_id: server.log.copy() for server_id, server in self.servers.items()}

    def auditor(self):
        """Build an :class:`~repro.audit.auditor.Auditor` for this system."""
        from repro.audit.auditor import Auditor

        return Auditor(
            network=self.network,
            server_ids=list(self.config.server_ids),
            shard_map=self.shard_map,
        )

    def audit(self):
        """Run a full offline audit and return the report."""
        return self.auditor().run_audit(self.servers)

    # -- introspection -------------------------------------------------------------------------

    @property
    def server_ids(self) -> List[ServerId]:
        return list(self.config.server_ids)

    def server(self, server_id: ServerId) -> DatabaseServer:
        return self.servers[server_id]

    def log_heights(self) -> Dict[ServerId, int]:
        return {server_id: len(server.log) for server_id, server in self.servers.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FidesSystem(protocol={self.protocol!r}, servers={len(self.servers)}, "
            f"items_per_shard={self.config.items_per_shard}, "
            f"txns_per_block={self.config.txns_per_block})"
        )
