"""Fides: assembling servers, clients, coordinator, and auditor into a system.

:class:`FidesSystem` is the top-level convenience API of the library: it
builds the whole deployment of Figure 4 from a
:class:`~repro.common.config.SystemConfig` -- the sharded servers, the signed
network, the designated coordinator (running either TFCommit or the 2PC
baseline), and client handles -- and exposes the operations examples,
tests, and benchmarks need: executing transactions, injecting faults,
collecting logs, and running audits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.mutations import mutation_enabled
from repro.client.client import CommitOutcome, FidesClient
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError, UnreachableError
from repro.common.timestamps import Timestamp
from repro.common.types import ClientId, ServerId, Value, make_client_id
from repro.core.tfcommit import (
    STALE_TIMESTAMP_REASON,
    BlockCommitResult,
    TFCommitCoordinator,
)
from repro.core.twopc import TwoPhaseCommitCoordinator
from repro.core.viewchange import ViewChangeOutcome, elect_successor, run_view_change
from repro.crypto.keys import keypair_for
from repro.crypto.signing import make_signing_scheme
from repro.ledger.checkpoint import Checkpoint, build_checkpoint, cosign_checkpoint
from repro.ledger.log import TransactionLog
from repro.net.latency import LatencyModel, lan_latency
from repro.net.network import Network
from repro.recovery.manager import RecoveryResult
from repro.server.faults import FaultPolicy
from repro.server.server import DatabaseServer
from repro.sim.context import ComputeModel, SimContext
from repro.storage.shard import build_uniform_partition
from repro.txn.operations import Operation
from repro.workload.ycsb import TransactionSpec


#: Supported commit protocols.
PROTOCOL_TFCOMMIT = "tfcommit"
PROTOCOL_2PC = "2pc"


@dataclass
class WorkloadResult:
    """Aggregate outcome of executing a list of transaction specs."""

    outcomes: List[CommitOutcome] = field(default_factory=list)
    block_results: List[BlockCommitResult] = field(default_factory=list)
    #: ``client_id -> committed transaction count`` for multi-client runs.
    committed_by_client: Dict[ClientId, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.committed)

    @property
    def aborted(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "aborted")

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "failed")


class FidesSystem:
    """A complete in-process Fides deployment."""

    #: How many times a transaction failed for a stale commit timestamp is
    #: re-issued before the failure is surfaced to the caller.
    STALE_RETRY_LIMIT = 3

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        protocol: str = PROTOCOL_TFCOMMIT,
        latency: Optional[LatencyModel] = None,
        initial_value: Value = 0,
        state_store_factory=None,
        compute_model: Optional[ComputeModel] = None,
        obs=None,
    ) -> None:
        """``state_store_factory`` maps a server id to the durable
        :class:`~repro.recovery.statestore.StateStore` backing that server's
        crash recovery; the default gives every server an in-memory store
        (pass a :class:`~repro.recovery.statestore.FileStateStore` factory to
        measure real WAL overhead).  ``compute_model`` overrides the measured
        per-phase compute charges on the simulated timeline (pass
        :class:`~repro.sim.context.FixedCompute` for bit-identical repeated
        runs; see DESIGN.md section 7).  ``obs`` replaces the simulation
        context's default :class:`~repro.obs.Observability` bundle -- the
        benchmark harness passes a shared, tracing-enabled bundle so one
        trace covers the whole run."""
        self.config = config or SystemConfig()
        if protocol not in (PROTOCOL_TFCOMMIT, PROTOCOL_2PC):
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        self.protocol = protocol
        self.latency = latency or lan_latency(seed=self.config.seed)
        #: The deployment's discrete-event timeline: every protocol phase is
        #: scheduled on it, and the benchmark harness reads the run's
        #: makespan off it (DESIGN.md section 7).
        self.sim = SimContext(
            seed=self.config.seed,
            pipeline_depth=self.config.pipeline_depth,
            compute_model=compute_model,
        )
        if obs is not None:
            self.sim.obs = obs
        self.network = Network(
            signing_scheme=make_signing_scheme(self.config.message_signing),
            latency=self.latency,
        )
        self.network.attach_sim(self.sim)

        per_server_items, self.shard_map = build_uniform_partition(self.config, initial_value)
        self.servers: Dict[ServerId, DatabaseServer] = {}
        for server_id in self.config.server_ids:
            server = DatabaseServer(
                server_id=server_id,
                keypair=keypair_for(server_id, seed=self.config.seed),
                items=per_server_items[server_id],
                multi_versioned=self.config.multi_versioned,
                state_store=(
                    state_store_factory(server_id) if state_store_factory else None
                ),
            )
            server.attach(self.network)
            server.attach_sim_clock(self.sim.clock)
            server.attach_obs(self.sim.obs)
            self.servers[server_id] = server

        self.coordinator_id = self.config.server_ids[0]
        #: Servers deposed by a view change: they keep serving as cohorts but
        #: never lead rounds again (routing and group formation skip them).
        self._deposed: set = set()
        #: Coordinators replaced by a failover; kept so their block results
        #: stay visible to the workload engine's accounting.
        self._retired_coordinators: List = []
        #: Completed view changes, newest last.
        self.view_changes: List = []
        self._wire_termination()

        self._clients: Dict[ClientId, FidesClient] = {}

    # -- deployment hooks --------------------------------------------------------------

    def _wire_termination(self) -> None:
        """Install the termination layer: one designated coordinator for all servers.

        :class:`~repro.core.scaled.ScaledFidesSystem` overrides this to wire
        per-group coordinators and the ordering service instead.
        """
        coordinator_server = self.servers[self.coordinator_id]
        coordinator_cls = (
            TFCommitCoordinator
            if self.protocol == PROTOCOL_TFCOMMIT
            else TwoPhaseCommitCoordinator
        )
        self.coordinator = coordinator_cls(
            server=coordinator_server,
            network=self.network,
            server_ids=self.config.server_ids,
            txns_per_block=self.config.txns_per_block,
            latency=self.latency,
            sim=self.sim,
        )
        coordinator_server.set_coordinator_role(self.coordinator)

    def _make_client(self, client_id: ClientId) -> FidesClient:
        """Build one client handle, routed per :meth:`_coordinator_router`."""
        return FidesClient(
            client_id=client_id,
            keypair=keypair_for(client_id, seed=self.config.seed),
            network=self.network,
            shard_map=self.shard_map,
            coordinator_id=self.coordinator_id,
            coordinator_router=self._coordinator_router(),
        )

    def _coordinator_router(self):
        """Per-transaction coordinator routing.  The classic deployment has
        one designated coordinator, but reads it dynamically so clients
        follow a view change to the successor; the scaled system routes each
        transaction to its dynamic group's coordinator."""
        return lambda txn: self.coordinator_id

    def _coordinators(self) -> List:
        """Every termination coordinator currently wired into the system."""
        return [self.coordinator] + list(self._retired_coordinators)

    def deposed_servers(self) -> frozenset:
        """Servers stripped of coordinator duty by a view change."""
        return frozenset(self._deposed)

    def _pending_count(self) -> int:
        """Transactions queued but not yet proposed, across all *live* coordinators.

        Transactions stuck in a crashed coordinator's queue cannot be flushed
        until it recovers, so they must not keep the workload loop spinning.
        """
        return sum(
            coordinator.pending_count
            for coordinator in self._coordinators()
            if coordinator.available
        )

    def _flush_pending(self) -> Dict:
        """Flush every coordinator's partial batch; responses are merged."""
        return self.coordinator.flush()

    def _finish_workload(self) -> None:
        """Post-run hook; the scaled system flushes the ordering service here."""

    # -- clients ----------------------------------------------------------------------

    def client(self, index: int = 0) -> FidesClient:
        """Return (creating on first use) the client with the given index."""
        client_id = make_client_id(index)
        if client_id not in self._clients:
            self._clients[client_id] = self._make_client(client_id)
        return self._clients[client_id]

    # -- transaction execution ----------------------------------------------------------

    def run_transaction(
        self, operations: Sequence[Operation], client_index: int = 0
    ) -> CommitOutcome:
        """Execute one transaction (a list of read/write operations) end to end."""
        outcome, _ = self._run_transaction_raw(operations, client_index)
        return outcome

    def _run_transaction_raw(self, operations: Sequence[Operation], client_index: int = 0):
        client = self.client(client_index)
        session = client.begin()
        try:
            for op in operations:
                if op.is_read:
                    client.read(session, op.item_id)
                else:
                    client.write(session, op.item_id, op.value)
            return client.commit_with_response(session)
        except UnreachableError as exc:
            # A server this transaction touches is down (crashed mid-workload
            # or mid-round).  The transaction fails -- the client would retry
            # after recovery -- and the execution state it buffered on the
            # *reachable* servers is released, as their timeouts would.
            for server in self.servers.values():
                if not server.crashed:
                    server.execution.finish(session.txn_id)
            outcome = CommitOutcome(
                txn_id=session.txn_id,
                status="failed",
                reason=f"server unreachable: {exc}",
            )
            return outcome, {}

    def run_workload(
        self,
        specs: Sequence[TransactionSpec],
        client_index: int = 0,
        num_clients: int = 1,
    ) -> WorkloadResult:
        """Execute a list of workload transaction specs and flush pending batches.

        ``num_clients`` distinct client sessions (indices ``client_index`` to
        ``client_index + num_clients - 1``) issue the transactions round-robin,
        each with its own Lamport clock and its own queued-outcome resolution,
        mirroring the paper's multi-client evaluation setup (Section 6).  With
        batching enabled most ``commit`` calls return ``queued``; their final
        outcomes arrive in the coordinator response that flushed the block
        containing them, and the runner resolves each against the client that
        issued it.
        """
        if num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        result = WorkloadResult()
        # Coordinators accumulate block results across their lifetime; snapshot
        # the per-coordinator lengths so this run reports only its own blocks
        # (a second run_workload must not double-count the first run's).
        results_marker = {
            id(coordinator): len(coordinator.results)
            for coordinator in self._coordinators()
        }
        if mutation_enabled("pr3-double-count-blocks"):
            results_marker = {}
        clients = [self.client(client_index + i) for i in range(num_clients)]
        result.committed_by_client = {client.client_id: 0 for client in clients}
        #: Work items are ``(spec, client_slot, attempt)``; stale-failed
        #: transactions are re-enqueued with a bumped attempt count.
        work = deque(
            (spec, position % num_clients, 0) for position, spec in enumerate(specs)
        )
        #: txn_id -> (owning slot, spec, attempt), in issue order.
        queued: Dict[str, Tuple[int, TransactionSpec, int]] = {}

        def record(outcome: CommitOutcome, owner: FidesClient) -> None:
            result.outcomes.append(outcome)
            if outcome.committed:
                result.committed_by_client[owner.client_id] += 1

        def settle(
            outcome: CommitOutcome, slot: int, spec: TransactionSpec, attempt: int, response: Dict
        ) -> None:
            """Record a terminal outcome, or re-enqueue a stale-failed txn.

            A commit timestamp can fall behind the committed frontier when
            other clients' blocks commit between this client's operations and
            its termination request; like any OCC client, it retries with a
            refreshed clock (the coordinator reports the frontier timestamp
            in its response).
            """
            owner = clients[slot]
            stale = outcome.status == "failed" and outcome.reason == STALE_TIMESTAMP_REASON
            if stale:
                # The transaction never entered a block, so no decision
                # broadcast will release its buffered execution state; the
                # real system expires it by timeout, the in-process engine
                # releases it directly.
                for server in self.servers.values():
                    if not server.crashed:
                        server.execution.finish(outcome.txn_id)
            if stale and attempt < self.STALE_RETRY_LIMIT:
                frontier = response.get("latest_committed_ts")
                if frontier is not None:
                    owner.clock.observe(Timestamp(frontier[0], frontier[1]))
                work.append((spec, slot, attempt + 1))
            else:
                record(outcome, owner)

        def resolve_from(response: Dict) -> None:
            flushed = response.get("results", {})
            for txn_id in [t for t in queued if t in flushed]:
                slot, spec, attempt = queued.pop(txn_id)
                outcome = clients[slot].interpret_outcome(txn_id, response)
                settle(outcome, slot, spec, attempt, response)

        while work or queued or self._pending_count():
            if work:
                spec, slot, attempt = work.popleft()
                outcome, response = self._run_transaction_raw(
                    spec.operations, client_index + slot
                )
                if outcome.pending:
                    queued[outcome.txn_id] = (slot, spec, attempt)
                else:
                    settle(outcome, slot, spec, attempt, response)
                if response.get("status") == "flushed":
                    resolve_from(response)
                continue
            # Drain the partially filled final batch (including transactions
            # left pending by earlier calls); resolutions may re-enqueue
            # stale retries, which keeps the loop running.
            unresolved_before = len(queued)
            resolve_from(self._flush_pending())
            if not work and len(queued) == unresolved_before:
                break
        for txn_id, (slot, _spec, _attempt) in queued.items():
            # Like the stale path: a never-flushed transaction terminated
            # without a decision broadcast, so its buffered execution state
            # must be released explicitly on every server.
            for server in self.servers.values():
                if not server.crashed:
                    server.execution.finish(txn_id)
            record(
                CommitOutcome(txn_id=txn_id, status="failed", reason="never flushed"),
                clients[slot],
            )
        self._finish_workload()
        # Fire the timeline's pending events in deterministic order so the
        # run's makespan and event trace are final when the caller reads them.
        self.sim.drain()
        result.block_results = [
            block_result
            for coordinator in self._coordinators()
            for block_result in coordinator.results[results_marker.get(id(coordinator), 0):]
        ]
        return result

    def flush(self) -> Dict:
        """Force the coordinator to commit any partially filled batch."""
        return self.coordinator.flush()

    # -- crash / recovery / checkpointing ------------------------------------------------

    def crash_server(self, server_id: ServerId) -> None:
        """Crash one server: volatile state dropped, handler unregistered."""
        self.servers[server_id].crash()

    def crashed_servers(self) -> List[ServerId]:
        return [sid for sid, server in self.servers.items() if server.crashed]

    def recover_server(
        self, server_id: ServerId, peer_order: Optional[Sequence[ServerId]] = None
    ) -> RecoveryResult:
        """Recover a crashed server: restore, verified peer catch-up, rejoin.

        ``peer_order`` controls which peers the catch-up consults first
        (default: every other live server, in id order) -- tests use it to
        put a malicious peer in front and assert its response is rejected.
        """
        peers = (
            list(peer_order)
            if peer_order is not None
            else [
                sid
                for sid in self.config.server_ids
                if sid != server_id and not self.servers[sid].crashed
            ]
        )
        return self.servers[server_id].recover(peers)

    def fail_over(
        self, server_id: Optional[ServerId] = None, reason: str = ""
    ) -> ViewChangeOutcome:
        """Depose the designated coordinator and elect its successor.

        Runs the view-change protocol of :mod:`repro.core.viewchange`: the
        next-smallest live server solicits every surviving cohort's commit
        frontier and stalled rounds (``VIEW_CHANGE``), verifies the frontier
        certificates, announces the new view (``NEW_VIEW``), and re-proposes
        each stalled round at the new view.  The deposed server keeps serving
        as a cohort -- recover it first if it crashed -- but never leads
        again.  ``reason`` is informational (campaign reports record it).
        """
        deposed = server_id if server_id is not None else self.coordinator_id
        if deposed != self.coordinator_id:
            raise ConfigurationError(
                f"{deposed} is not the designated coordinator ({self.coordinator_id})"
            )
        # Settle in-flight timeline events so the round timers the view
        # change is about to expire reflect every phase that actually ran.
        self.sim.drain()
        excluded = self._deposed | {deposed} | set(self.crashed_servers())
        successor = elect_successor(self.config.server_ids, excluded)
        old = self.coordinator
        outcome = run_view_change(
            self.network,
            self.latency,
            successor,
            members=self.config.server_ids,
            deposed=deposed,
            group=None,
            current_view=old.view,
            successor_log=self.servers[successor].log,
            sim=self.sim,
            clock=self.sim.clock,
            trusted=(self.protocol == PROTOCOL_2PC),
        )
        self._deposed.add(deposed)
        self.coordinator_id = successor
        self._retired_coordinators.append(old)
        self._install_successor(successor, outcome.new_view, old)
        self.view_changes.append(outcome)
        self._repropose(outcome)
        self.sim.drain()
        return outcome

    def _install_successor(self, successor: ServerId, view: int, old) -> None:
        """Stand up the successor's coordinator and migrate the old queue."""
        server = self.servers[successor]
        coordinator_cls = (
            TFCommitCoordinator
            if self.protocol == PROTOCOL_TFCOMMIT
            else TwoPhaseCommitCoordinator
        )
        self.coordinator = coordinator_cls(
            server=server,
            network=self.network,
            server_ids=self.config.server_ids,
            txns_per_block=self.config.txns_per_block,
            latency=self.latency,
            sim=self.sim,
            view=view,
        )
        for block in server.log:
            if block.is_commit:
                self.coordinator.observe_frontier(block.max_commit_ts)
        server.set_coordinator_role(self.coordinator)
        if old is not None:
            self.coordinator.adopt_pending(old.take_pending())

    def _repropose(self, outcome: ViewChangeOutcome) -> None:
        """Re-run every stalled round at the new view."""
        for block, client_requests in outcome.stalled_rounds:
            self.coordinator.commit_batch(list(zip(block.transactions, client_requests)))

    def create_checkpoint(self, install: bool = True) -> Checkpoint:
        """Build, co-sign, and (by default) install a checkpoint of the full log.

        Mirrors the in-process CoSi round of
        :func:`~repro.ledger.checkpoint.cosign_checkpoint`: every server
        contributes its shard root and its signature.  ``install=True``
        truncates every live server's log under the checkpoint and compacts
        its durable state store (Section 3.3's storage bound).
        """
        reference_server = next(
            server for server in self.servers.values() if not server.crashed
        )
        shard_roots = {
            sid: server.store.merkle_root()
            for sid, server in self.servers.items()
            if not server.crashed
        }
        checkpoint = build_checkpoint(
            reference_server.log,
            shard_roots,
            previous=reference_server.latest_checkpoint,
        )
        # Only live servers can contribute to the CoSi round; a crashed
        # machine signs nothing, and cosi_verify checks exactly the signers
        # the signature lists, so the checkpoint still verifies.
        keypairs = {
            sid: server.keypair
            for sid, server in self.servers.items()
            if not server.crashed
        }
        checkpoint = cosign_checkpoint(checkpoint, keypairs)
        if install:
            for server in self.servers.values():
                if not server.crashed:
                    server.install_checkpoint(checkpoint)
        return checkpoint

    # -- fault injection and audits ---------------------------------------------------------

    def inject_fault(self, server_id: ServerId, policy: FaultPolicy) -> None:
        """Make ``server_id`` behave according to ``policy`` from now on."""
        self.servers[server_id].set_faults(policy)

    def collect_logs(self) -> Dict[ServerId, TransactionLog]:
        """Gather (copies of) every server's log, as the auditor would."""
        return {server_id: server.log.copy() for server_id, server in self.servers.items()}

    def auditor(self):
        """Build an :class:`~repro.audit.auditor.Auditor` for this system."""
        from repro.audit.auditor import Auditor

        return Auditor(
            network=self.network,
            server_ids=list(self.config.server_ids),
            shard_map=self.shard_map,
        )

    def audit(self):
        """Run a full offline audit and return the report."""
        return self.auditor().run_audit(self.servers)

    # -- introspection -------------------------------------------------------------------------

    @property
    def server_ids(self) -> List[ServerId]:
        return list(self.config.server_ids)

    def server(self, server_id: ServerId) -> DatabaseServer:
        return self.servers[server_id]

    def log_heights(self) -> Dict[ServerId, int]:
        """Global log height per server (immune to checkpoint truncation)."""
        return {
            server_id: server.log.height for server_id, server in self.servers.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FidesSystem(protocol={self.protocol!r}, servers={len(self.servers)}, "
            f"items_per_shard={self.config.items_per_shard}, "
            f"txns_per_block={self.config.txns_per_block})"
        )
