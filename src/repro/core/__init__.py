"""The paper's primary contribution: TFCommit and the Fides system assembly.

* :mod:`repro.core.tfcommit` -- the TrustFree Commitment protocol (Section 4.3).
* :mod:`repro.core.twopc` -- the trusted Two-Phase Commit baseline (Section 6.1).
* :mod:`repro.core.fides` -- cluster assembly: servers, clients, coordinator, audits.
* :mod:`repro.core.grouping` / :mod:`repro.core.ordserv` -- the scale-out path of
  Section 4.6 (per-group coordinators and the block ordering service).
* :mod:`repro.core.scaled` -- the scaled multi-coordinator deployment wiring
  dynamic groups and the ordering service into a full system.
"""

from repro.core.tfcommit import (
    BatchBuilder,
    BlockCommitResult,
    TFCommitCoordinator,
    TimingBreakdown,
    TxnOutcome,
)
from repro.core.twopc import TwoPhaseCommitCoordinator
from repro.core.fides import FidesSystem
from repro.core.grouping import ServerGroup, group_for_batch, group_for_transaction
from repro.core.ordserv import OrderedBlock, OrderingService
from repro.core.scaled import GroupTFCommitCoordinator, ScaledFidesSystem

__all__ = [
    "BatchBuilder",
    "BlockCommitResult",
    "FidesSystem",
    "GroupTFCommitCoordinator",
    "OrderedBlock",
    "OrderingService",
    "ScaledFidesSystem",
    "ServerGroup",
    "TFCommitCoordinator",
    "TimingBreakdown",
    "TwoPhaseCommitCoordinator",
    "TxnOutcome",
    "group_for_batch",
    "group_for_transaction",
]
