"""The ``Sequencer`` API and the sharded ordering service (DESIGN.md §13).

The paper's global ordering service is its own scalability ceiling: every
co-signed group block funnels through one sequencer, so throughput saturates
long before the per-group TFCommit coordinators do.  This module first pins
down the small surface :class:`~repro.core.scaled.ScaledFidesSystem`
actually needs from an ordering layer -- the :class:`Sequencer` protocol --
and then provides a second implementation,
:class:`ShardedOrderingService`, that moves the ceiling: one logical
sequencer lane per *ordering shard* (a contiguous range of servers, hence of
key ranges), with single-shard blocks ordered locally in their lane and only
cross-shard blocks paying for a global epoch merge.

Why lane-local ordering is dependency-safe: a block's group is exactly the
set of servers storing its items, and ordering shards partition the servers.
Two single-shard blocks of *different* lanes therefore have disjoint server
sets, hence disjoint item sets, hence no data dependency and no group
overlap -- any interleaving of lanes is equivalent under the existing
dependency rules (item-conflict, commit-frontier, chain-at-aggregate).
Within a lane, submission order is preserved, which is always
dependency-safe.  A cross-shard block acts as a barrier: every lane drains
(in a model-checker-choosable lane order) before it finalizes, so anything
it could depend on lands first, and everything published after it lands
after it.

Each merge point seals an :class:`~repro.ledger.anchor.EpochAnchor` binding
the per-shard hash chains to the global height range (see
:mod:`repro.ledger.anchor` for the trust argument).  The global stream
itself remains a single gapless hash chain -- heights are assigned in
finalize order -- so servers, the auditor, and the view-change machinery are
oblivious to how the stream was produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.check.choices import choose
from repro.common.errors import ConfigurationError, ProtocolInvariantError
from repro.core.grouping import ServerGroup, dependency_between
from repro.core.ordserv import (
    OrderedBlock,
    OrderingService,
    _PendingBlock,
    stream_respects_dependencies,
)
from repro.crypto.hashing import EMPTY_HASH
from repro.ledger.anchor import (
    GENESIS_ANCHOR_HASH,
    GENESIS_SHARD_HEAD,
    EpochAnchor,
    fold_shard_head,
)
from repro.ledger.block import Block


@runtime_checkable
class Sequencer(Protocol):
    """What the scaled deployment needs from an ordering layer.

    The contract every implementation must honour:

    * ``publish`` is idempotent per round identity (group membership + txn
      set) and returns ``False`` on a suppressed duplicate;
    * the finalized stream is a single gapless hash chain -- the *n*-th
      delivered :class:`~repro.core.ordserv.OrderedBlock` has
      ``global_height == n`` and extends the previous block's hash;
    * the stream never orders a block before another block it depends on
      when their groups overlap (``verify_dependency_order``);
    * ``flush_conflicting(group)`` lands every floating block whose group
      overlaps ``group`` (plus whatever must precede those blocks) before
      returning, so a coordinator's next round reads a settled prefix;
    * subscribers registered via ``subscribe`` see every finalized block,
      in stream order, exactly once.
    """

    def attach_obs(self, obs) -> None: ...

    def seen(self, block: Block, group: ServerGroup) -> bool: ...

    def publish(self, block: Block, group: ServerGroup) -> bool: ...

    def flush(self) -> None: ...

    def flush_conflicting(self, group: ServerGroup) -> None: ...

    def subscribe(self, callback: Callable[[OrderedBlock], None]) -> None: ...

    @property
    def ordered_blocks(self) -> List[OrderedBlock]: ...

    @property
    def stream_length(self) -> int: ...

    def verify_dependency_order(self) -> bool: ...


#: A factory the deployment calls with its ``SystemConfig`` once the server
#: set is known; keeps ``ScaledFidesSystem`` ignorant of concrete classes.
SequencerFactory = Callable[[object], Sequencer]


@dataclass(frozen=True)
class OrderingShardMap:
    """Key-range → ordering-shard mapping over the deployment's servers.

    Servers are sorted and cut into ``num_shards`` contiguous ranges; since
    the storage layer assigns each server a contiguous item key range, a
    contiguous server range *is* a key range, which is the mapping the
    tentpole asks for.  A group's ordering shards are the shards of its
    member servers.
    """

    shard_by_server: Mapping[str, int]
    num_shards: int

    @classmethod
    def for_servers(cls, server_ids: Iterable[str], num_shards: int) -> "OrderingShardMap":
        ordered = sorted(server_ids)
        if not ordered:
            raise ConfigurationError("ordering shard map needs at least one server")
        count = max(1, min(int(num_shards), len(ordered)))
        mapping = {
            server_id: (index * count) // len(ordered)
            for index, server_id in enumerate(ordered)
        }
        return cls(shard_by_server=mapping, num_shards=count)

    def shard_of(self, server_id: str) -> int:
        try:
            return self.shard_by_server[server_id]
        except KeyError:
            raise ConfigurationError(
                f"server {server_id!r} is not covered by the ordering shard map"
            ) from None

    def shards_of(self, members: Iterable[str]) -> Tuple[int, ...]:
        return tuple(sorted({self.shard_of(member) for member in members}))


class _ShardLane:
    """One shard's local sequencer lane: a submission-ordered buffer + chain."""

    __slots__ = ("index", "buffer", "height", "head")

    def __init__(self, index: int) -> None:
        self.index = index
        self.buffer: List[_PendingBlock] = []
        self.height = 0
        self.head: bytes = GENESIS_SHARD_HEAD


class ShardedOrderingService:
    """One sequencer lane per ordering shard, merged at cross-shard epochs.

    Single-shard blocks buffer in their lane (ordering locally, bounded by
    ``epoch_max_blocks``); a cross-shard publication drains every lane --
    lane order is a model-checker choice point (feature ``"shard-merge"``)
    -- finalizes the cross-shard block, and seals an epoch anchor.
    ``flush()`` seals the final, possibly cross-shard-free epoch so the
    anchor chain always covers the whole stream.
    """

    def __init__(self, shard_map: OrderingShardMap, epoch_max_blocks: int = 32) -> None:
        self._map = shard_map
        self._lanes = [_ShardLane(index) for index in range(shard_map.num_shards)]
        self._epoch_max_blocks = max(1, int(epoch_max_blocks))
        self._ordered: List[OrderedBlock] = []
        self._subscribers: List[Callable[[OrderedBlock], None]] = []
        self._anchor_subscribers: List[Callable[[EpochAnchor], None]] = []
        self._anchors: List[EpochAnchor] = []
        self._identities: set = set()
        self._sequence = 0
        self._epoch_start_height = 0
        self._obs = None

    # -- introspection ---------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self._map.num_shards

    @property
    def shard_map(self) -> OrderingShardMap:
        return self._map

    @property
    def epoch_anchors(self) -> List[EpochAnchor]:
        return list(self._anchors)

    @property
    def pending_count(self) -> int:
        return sum(len(lane.buffer) for lane in self._lanes)

    def shard_heads(self) -> Tuple[Tuple[int, ...], Tuple[bytes, ...]]:
        """Current per-shard (heights, chain heads) -- what the next anchor seals."""
        heights = tuple(lane.height for lane in self._lanes)
        heads = tuple(lane.head for lane in self._lanes)
        return heights, heads

    def shards_of_group(self, group: ServerGroup) -> Tuple[int, ...]:
        return self._map.shards_of(group.members)

    def attach_obs(self, obs) -> None:
        """Report publication/ordering/epoch metrics through ``obs``."""
        self._obs = obs

    # -- publication -----------------------------------------------------------------

    def seen(self, block: Block, group: ServerGroup) -> bool:
        """Whether a block with this round identity was already accepted."""
        return OrderingService.round_identity(block, group) in self._identities

    def publish(self, block: Block, group: ServerGroup) -> bool:
        """A group coordinator hands over a locally co-signed block.

        Same idempotency contract as the single sequencer; routing differs:
        a single-shard block buffers in its lane, a cross-shard block
        triggers the epoch merge.
        """
        identity = OrderingService.round_identity(block, group)
        if identity in self._identities:
            if self._obs is not None:
                self._obs.metrics.counter("ordserv.duplicates_suppressed")
            return False
        self._identities.add(identity)
        if self._obs is not None:
            self._obs.metrics.counter("ordserv.published")
        pending = _PendingBlock(block=block, group=group, sequence=self._sequence)
        self._sequence += 1
        shards = self.shards_of_group(group)
        if len(shards) == 1:
            lane = self._lanes[shards[0]]
            lane.buffer.append(pending)
            if len(lane.buffer) >= self._epoch_max_blocks:
                # Capacity drain: the lane lands its prefix without sealing
                # an epoch (anchors mark merge points, not buffer pressure).
                self._drain_lane(lane)
            return True
        self._merge_lanes()
        self._finalize(pending, shards)
        self._seal_epoch()
        return True

    def flush(self) -> None:
        """Finalise every buffered block and seal the trailing epoch."""
        self._merge_lanes()
        if len(self._ordered) > self._epoch_start_height:
            self._seal_epoch()

    def flush_conflicting(self, group: ServerGroup) -> None:
        """Land all floating blocks overlapping ``group``, per shard.

        Only the lanes of ``group``'s own shards are touched: a buffered
        block can overlap ``group`` only if it shares a server with it,
        which pins it to one of those lanes.  Within each such lane the
        buffered *prefix* up to the last overlapping block lands (lane
        order is submission order, so the prefix contains every in-lane
        block the overlapping ones could depend on); later blocks and other
        lanes keep floating -- this is the per-shard flush the deposed
        coordinator's recovery path relies on.
        """
        for shard in self.shards_of_group(group):
            lane = self._lanes[shard]
            last_overlap = None
            for index, pending in enumerate(lane.buffer):
                if pending.group.overlaps(group):
                    last_overlap = index
            if last_overlap is not None:
                self._drain_lane(lane, count=last_overlap + 1)

    # -- the epoch merge -------------------------------------------------------------

    def _drain_lane(self, lane: _ShardLane, count: Optional[int] = None) -> None:
        take = len(lane.buffer) if count is None else min(count, len(lane.buffer))
        for _ in range(take):
            pending = lane.buffer.pop(0)
            self._finalize(pending, (lane.index,))

    def _merge_lanes(self) -> None:
        """Drain every lane; the lane interleaving is a checker choice point.

        Any interleaving is dependency-safe (disjoint lanes cannot hold
        dependent blocks), so the merge is deterministic in production
        (lowest lane first) and explorable under the model checker.
        """
        while True:
            nonempty = [lane for lane in self._lanes if lane.buffer]
            if not nonempty:
                return
            pick = 0
            if len(nonempty) > 1:
                pick = choose(
                    "ordserv/epoch-merge", len(nonempty), 0, feature="shard-merge"
                )
            self._drain_lane(nonempty[pick])

    def _finalize(self, pending: _PendingBlock, shards: Tuple[int, ...]) -> None:
        for lane in self._lanes:
            for prior in lane.buffer:
                if (
                    prior.sequence < pending.sequence
                    and prior.group.overlaps(pending.group)
                    and dependency_between(
                        prior.block.transactions, pending.block.transactions
                    )
                ):
                    raise ProtocolInvariantError(
                        f"sharded ordering service would finalise block "
                        f"seq={pending.sequence} before buffered dependency "
                        f"seq={prior.sequence} in lane {lane.index}"
                    )
        previous_hash = self._ordered[-1].block_hash if self._ordered else EMPTY_HASH
        chained = replace(
            pending.block, height=len(self._ordered), previous_hash=previous_hash
        )
        for shard in shards:
            lane = self._lanes[shard]
            lane.height += 1
            lane.head = fold_shard_head(lane.head, chained)
        ordered = OrderedBlock(
            global_height=len(self._ordered),
            block=chained,
            group=pending.group,
            shards=shards,
        )
        self._ordered.append(ordered)
        if self._obs is not None:
            self._obs.metrics.counter("ordserv.ordered")
            self._obs.metrics.gauge("ordserv.stream_length", float(len(self._ordered)))
        for subscriber in self._subscribers:
            subscriber(ordered)

    def _seal_epoch(self) -> None:
        previous = self._anchors[-1].anchor_hash() if self._anchors else GENESIS_ANCHOR_HASH
        heights, heads = self.shard_heads()
        anchor = EpochAnchor(
            epoch=len(self._anchors),
            start_height=self._epoch_start_height,
            end_height=len(self._ordered),
            shard_heights=heights,
            shard_heads=heads,
            previous=previous,
        )
        self._anchors.append(anchor)
        self._epoch_start_height = anchor.end_height
        if self._obs is not None:
            self._obs.metrics.counter("ordserv.epochs")
        for subscriber in self._anchor_subscribers:
            subscriber(anchor)

    # -- delivery --------------------------------------------------------------------

    def subscribe(self, callback: Callable[[OrderedBlock], None]) -> None:
        """Register a delivery callback (one per server, typically)."""
        self._subscribers.append(callback)

    def subscribe_anchors(self, callback: Callable[[EpochAnchor], None]) -> None:
        """Register a callback fired once per sealed epoch anchor."""
        self._anchor_subscribers.append(callback)

    @property
    def ordered_blocks(self) -> List[OrderedBlock]:
        return list(self._ordered)

    @property
    def stream_length(self) -> int:
        return len(self._ordered)

    def verify_dependency_order(self) -> bool:
        """See :func:`repro.core.ordserv.stream_respects_dependencies`."""
        return stream_respects_dependencies(self._ordered)

    def verify_shard_chains(self) -> bool:
        """Recompute every lane chain from the finalized stream and compare."""
        heights: Dict[int, int] = {lane.index: 0 for lane in self._lanes}
        heads: Dict[int, bytes] = {lane.index: GENESIS_SHARD_HEAD for lane in self._lanes}
        for ordered in self._ordered:
            for shard in self._map.shards_of(ordered.group.members):
                heights[shard] += 1
                heads[shard] = fold_shard_head(heads[shard], ordered.block)
        return all(
            lane.height == heights[lane.index] and lane.head == heads[lane.index]
            for lane in self._lanes
        )


# -- factories -----------------------------------------------------------------------


def single_sequencer(reorder_window: int = 0) -> SequencerFactory:
    """Factory for the classic single-lane :class:`OrderingService`."""

    def build(config) -> Sequencer:
        del config  # the single sequencer needs no deployment knowledge
        return OrderingService(reorder_window=reorder_window)

    return build


def sharded_sequencer(num_shards: int, epoch_max_blocks: int = 32) -> SequencerFactory:
    """Factory for a :class:`ShardedOrderingService` over the config's servers."""

    def build(config) -> Sequencer:
        shard_map = OrderingShardMap.for_servers(config.server_ids, num_shards)
        return ShardedOrderingService(shard_map, epoch_max_blocks=epoch_max_blocks)

    return build
