"""TFCommit: the TrustFree Commitment protocol (Section 4.3).

TFCommit merges Two-Phase Commit with Collective Signing so that the commit /
abort decision of every distributed transaction is bound to a block that all
servers validated and co-signed.  The protocol has five phases over three
communication rounds (Figure 7):

1. ``<GetVote, SchAnnouncement>`` -- the coordinator builds the partial block
   ``[ts, R/W sets, h_prev]`` and broadcasts it with the encapsulated signed
   client request(s).
2. ``<Vote, SchCommitment>`` -- every cohort computes a Schnorr commitment;
   involved cohorts validate locally and report their speculative Merkle root.
3. ``<null, SchChallenge>`` -- the coordinator aggregates votes, fills in the
   decision and roots, aggregates the Schnorr commitments, and derives the
   challenge ``c = H(X || block)``.
4. ``<null, SchResponse>`` -- cohorts check the completed block against what
   they voted and return their Schnorr responses.
5. ``<Decision, null>`` -- the coordinator aggregates the responses into the
   collective signature, finalises the block, and broadcasts it; servers
   append it to their logs and apply the writes.

This module implements the *coordinator* side (the cohort side lives in
:class:`repro.server.commitment.CommitmentLayer`), plus the batch builder
that packs multiple non-conflicting transactions per block (Section 4.6) and
the timing model used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.choices import choose_order
from repro.check.mutations import mutation_enabled
from repro.common.errors import ProtocolError, ProtocolInvariantError, UnreachableError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import (
    CollectiveSignature,
    aggregate_points,
    aggregate_scalars,
    compute_challenge,
    cosi_verify,
    identify_faulty_signers,
)
from repro.crypto.group import Point, decompress_point
from repro.ledger.block import Block, BlockDecision, make_partial_block
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.obs.timing import Stopwatch
from repro.sim.context import SimContext
from repro.sim.scheduler import KIND_BROADCAST, KIND_COMPUTE, KIND_TERMINAL, BlockTask
from repro.txn.transaction import Transaction


@dataclass
class TimingBreakdown:
    """Simulated-time cost of committing one block.

    ``phases`` maps each communication phase to its simulated latency: the
    network round trip for that phase plus the slowest participant's measured
    compute.  ``mht_time`` is the largest per-cohort Merkle update time
    (cohorts update their trees in parallel on real hardware).  See DESIGN.md
    for the substitution rationale.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    network_time: float = 0.0
    compute_time: float = 0.0
    coordinator_time: float = 0.0
    mht_time: float = 0.0
    mht_hashes: int = 0
    num_txns: int = 0

    @property
    def total(self) -> float:
        """End-to-end simulated latency of the block."""
        return sum(self.phases.values())

    @property
    def per_txn_latency(self) -> float:
        """Amortised latency of a single transaction in the block."""
        if self.num_txns == 0:
            return self.total
        return self.total / self.num_txns


@dataclass(frozen=True)
class TxnOutcome:
    """Outcome of one transaction within a block."""

    txn_id: str
    status: str  # "committed" / "aborted" / "failed"
    block_height: Optional[int] = None
    reason: str = ""
    #: Virtual time at which the block's decision landed (the end of the
    #: round's terminal phase on the simulated timeline); ``None`` when the
    #: coordinator runs without a simulation context.
    decided_at: Optional[float] = None

    def to_wire(self, block_digest: Optional[bytes] = None, cosign=None):
        return {
            "txn_id": self.txn_id,
            "status": self.status,
            "block_height": self.block_height,
            "reason": self.reason,
            "decided_at": self.decided_at,
            "block_digest": block_digest,
            "cosign": cosign,
        }


@dataclass
class BlockCommitResult:
    """Everything TFCommit produces for one block."""

    status: str  # "committed", "aborted", or "failed"
    block: Optional[Block]
    outcomes: List[TxnOutcome]
    timing: TimingBreakdown
    abort_reasons: List[str] = field(default_factory=list)
    refusals: List[Dict] = field(default_factory=list)
    culprits: List[str] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.status == "committed"


class BatchBuilder:
    """Packs pending transactions into non-conflicting batches (Section 4.6).

    "The coordinator collects and inserts a set of non-conflicting client
    generated transactions and orders them within a single block" -- the
    builder walks the pending queue in arrival order and greedily selects
    transactions that neither conflict with one another nor carry a commit
    timestamp at or below the latest committed timestamp.
    """

    def __init__(self, txns_per_block: int) -> None:
        if txns_per_block < 1:
            raise ProtocolError("txns_per_block must be >= 1")
        self.txns_per_block = txns_per_block

    def take_batch(
        self,
        pending: List[Tuple[Transaction, Envelope]],
        latest_committed_ts: Optional[Timestamp] = None,
    ) -> Tuple[List[Tuple[Transaction, Envelope]], List[Tuple[Transaction, Envelope]]]:
        """Remove the next batch from ``pending`` (in place).

        Returns ``(batch, stale)``: the selected transactions, plus any whose
        commit timestamp fell at or below ``latest_committed_ts`` -- these
        became stale when an earlier block of the same flush committed and
        must be failed rather than proposed (Section 4.3.1's staleness rule
        applies at batch-formation time, not only at arrival time).
        """
        batch: List[Tuple[Transaction, Envelope]] = []
        stale: List[Tuple[Transaction, Envelope]] = []
        remaining: List[Tuple[Transaction, Envelope]] = []
        for txn, envelope in pending:
            if latest_committed_ts is not None and txn.commit_ts <= latest_committed_ts:
                stale.append((txn, envelope))
                continue
            if len(batch) >= self.txns_per_block:
                remaining.append((txn, envelope))
                continue
            if any(txn.conflicts_with(selected) for selected, _ in batch):
                remaining.append((txn, envelope))
                continue
            batch.append((txn, envelope))
        pending[:] = remaining
        return batch, stale


#: Failure reason for transactions whose commit timestamp fell at or below
#: the latest committed timestamp.  Clients match on it to decide whether a
#: failed transaction is retryable with a refreshed clock.
STALE_TIMESTAMP_REASON = "stale commit timestamp"


def _stale_outcome(txn: Transaction) -> TxnOutcome:
    return TxnOutcome(txn.txn_id, "failed", reason=STALE_TIMESTAMP_REASON)


def stale_failure_response(txn: Transaction, latest_committed_ts: Timestamp) -> Dict:
    """Coordinator response failing one transaction for a stale timestamp.

    Shared by TFCommit and the 2PC baseline so the staleness contract (the
    failure reason and the ``latest_committed_ts`` clients refresh their
    clocks from) lives in one place.
    """
    outcome = _stale_outcome(txn)
    return {
        "status": "flushed",
        "results": {txn.txn_id: outcome.to_wire()},
        "latest_committed_ts": latest_committed_ts.as_tuple(),
    }


def flushed_response(results: Dict[str, Dict], latest_committed_ts: Timestamp) -> Dict:
    """Coordinator response carrying a flush's outcomes.

    Clients observe ``latest_committed_ts`` to refresh their Lamport clocks,
    exactly as they observe rts/wts on reads; a client retrying a stale
    commit needs it to pick a timestamp above the committed frontier.
    """
    return {
        "status": "flushed",
        "results": results,
        "latest_committed_ts": latest_committed_ts.as_tuple(),
    }


def drain_stale(
    batch_builder: BatchBuilder,
    pending: List[Tuple[Transaction, Envelope]],
    latest_committed_ts: Timestamp,
    results: Dict[str, Dict],
) -> List[Tuple[Transaction, Envelope]]:
    """Take the next batch, recording a failure for every stale transaction."""
    batch, stale = batch_builder.take_batch(pending, latest_committed_ts)
    for txn, _ in stale:
        results[txn.txn_id] = _stale_outcome(txn).to_wire()
    return batch


#: Virtual seconds a participant waits on a phase's response before declaring
#: the peer silent.  This is the round timer of the view-change protocol:
#: cohorts arm it when they first see ``GET_VOTE``/``PREPARE`` (see
#: :class:`repro.server.commitment.RoundState`), and the sender of a phase
#: charges it for every recipient that never answers.  It is deliberately two
#: orders of magnitude above the default network latency (0.2 ms) so honest
#: slow responses never trip it in the simulated deployments.
ROUND_TIMEOUT_S = 0.05


def validate_batch(transactions: Sequence[Transaction]) -> None:
    """Enforce the BatchBuilder contract on a batch about to be proposed.

    Shared by TFCommit and the 2PC baseline: an empty batch or one carrying
    internally conflicting transactions indicates a coordinator-side bug, not
    a recoverable protocol condition.
    """
    if not transactions:
        raise ProtocolInvariantError("commit_batch called with an empty batch")
    for index, txn in enumerate(transactions):
        for earlier in transactions[:index]:
            if txn.conflicts_with(earlier):
                raise ProtocolInvariantError(
                    f"batch contains conflicting transactions "
                    f"{earlier.txn_id} and {txn.txn_id} (BatchBuilder contract)"
                )


def timed_exchange(
    network: Network,
    latency: LatencyModel,
    sender: str,
    recipients: Sequence[str],
    message_type: MessageType,
    payload_for,
    timing: TimingBreakdown,
    phase: str,
    sim: Optional[SimContext] = None,
    task: Optional[BlockTask] = None,
    kind: str = KIND_BROADCAST,
    timeout: float = ROUND_TIMEOUT_S,
    span: Optional[int] = None,
) -> Dict[str, Dict]:
    """Send one phase's (possibly per-recipient) message and charge ``timing``.

    ``payload_for`` maps each recipient to its payload -- the honest phases
    send every cohort the same dict (see :func:`timed_broadcast`), while the
    equivocation fault injection sends different blocks to different halves.
    Routing *every* per-recipient send through here keeps three behaviours in
    one place: the ``choose_order`` branch point the model checker explores,
    the synthesised unreachable refusal, and the simulated-time accounting.

    The simulated-time rule lives here, shared by TFCommit, the 2PC
    baseline, and the ordering service's delivery: each recipient gets its
    own sampled outbound delay, its measured compute, and its own sampled
    inbound delay, and the phase costs the slowest recipient's *round trip*
    -- the coordinator waits for the last response, and a server's reply
    can only travel after its own request arrived and its own compute ran
    (pairing one server's outbound sample with another's inbound sample
    would build a round trip no single machine experienced).  Recipients
    work in parallel on real hardware, so the max is the right aggregate;
    the ``default=0.0`` guards keep empty recipient lists at zero cost.

    When a simulation context and a block task are given, the phase is also
    scheduled as an event window on the shared virtual timeline (its start
    is assigned *before* the messages go out, so fault hooks fire at the
    phase's virtual time); with only ``sim`` given, the context's compute
    model still applies but no window is scheduled (the caller schedules
    the activity itself, e.g. the ordering service's delivery).

    A recipient that is down -- crashed before the send, or crashing while
    handling it -- yields a synthesised ``{"ok": False, "unreachable": True,
    "timed_out": True}`` response instead of an exception: losing a cohort
    mid-round is a liveness event the round must observe and fail on, not a
    crash of the coordinator.  No reply ever travels from a dead peer, so
    the phase charges the sender the full ``timeout`` wait for it rather
    than a phantom ``outbound + 0 + inbound`` round trip.

    When tracing is enabled and a task is given, the phase becomes a span
    (parented under ``span``, the caller's round span) with one child RPC
    span per recipient whose window is that peer's own round trip -- the
    coordinator -> cohort causal edge in the trace.
    """
    if sim is not None and task is not None:
        sim.scheduler.begin_phase(task, phase, kind=kind)
    # Cohorts process a phase's message in no guaranteed order relative to
    # one another; under the model checker that order is a branch point (it
    # decides e.g. which cohorts registered a round before one crashes).
    recipients = choose_order(f"net/phase/{phase}", list(recipients), feature="net-order")
    outbound = {recipient: latency.sample() for recipient in recipients}
    responses: Dict[str, Dict] = {}
    for recipient in recipients:
        try:
            responses[recipient] = network.send(
                sender, recipient, message_type, payload_for(recipient)
            )
        except UnreachableError as exc:
            responses[recipient] = {
                "server_id": recipient,
                "ok": False,
                "unreachable": True,
                "timed_out": True,
                "reason": str(exc),
                "compute_time": 0.0,
            }
    inbound = {recipient: latency.sample() for recipient in recipients}
    slowest = slowest_net = slowest_compute = 0.0
    round_trips: Dict[str, float] = {}
    for recipient in recipients:
        if responses[recipient].get("unreachable"):
            # The sender waits out the round timer on a silent peer; the
            # wait is pure network idle time, no compute ever ran.
            round_trip = net = timeout
            compute = 0.0
        else:
            compute = responses[recipient].get("compute_time", 0.0) or 0.0
            if sim is not None:
                compute = sim.effective_compute(phase, compute)
            round_trip = outbound[recipient] + compute + inbound[recipient]
            net = outbound[recipient] + inbound[recipient]
        round_trips[recipient] = round_trip
        if round_trip >= slowest:
            slowest = round_trip
            slowest_net = net
            slowest_compute = compute
    timing.phases[phase] = slowest
    timing.network_time += slowest_net
    timing.compute_time += slowest_compute
    obs = sim.obs if sim is not None else None
    if obs is not None:
        obs.metrics.counter(f"phase.{phase}.count")
        obs.metrics.observe(f"phase.{phase}.s", slowest)
        for recipient in recipients:
            if responses[recipient].get("unreachable"):
                obs.metrics.counter("net.unreachable")
            else:
                obs.metrics.observe(f"net.rtt.{phase}_s", round_trips[recipient])
    if sim is not None and task is not None:
        window = sim.scheduler.end_phase(task, phase, slowest)
        if obs is not None and obs.tracing and window is not None:
            phase_start, phase_end = window
            timed_out = any(
                responses[recipient].get("timed_out") for recipient in recipients
            )
            phase_span = obs.tracer.add_span(
                phase,
                "phase",
                sender,
                phase_start,
                phase_end,
                parent=span,
                status="timeout" if timed_out else "ok",
            )
            for recipient in recipients:
                obs.tracer.add_span(
                    f"rpc:{message_type.value}",
                    "rpc",
                    recipient,
                    phase_start,
                    phase_start + round_trips[recipient],
                    parent=phase_span,
                    status=(
                        "unreachable"
                        if responses[recipient].get("unreachable")
                        else "ok"
                    ),
                )
    return responses


def timed_broadcast(
    network: Network,
    latency: LatencyModel,
    sender: str,
    recipients: Sequence[str],
    message_type: MessageType,
    payload: Dict,
    timing: TimingBreakdown,
    phase: str,
    sim: Optional[SimContext] = None,
    task: Optional[BlockTask] = None,
    kind: str = KIND_BROADCAST,
    timeout: float = ROUND_TIMEOUT_S,
    span: Optional[int] = None,
) -> Dict[str, Dict]:
    """Broadcast one phase's message to every recipient (same payload each).

    Thin wrapper over :func:`timed_exchange`; see there for the timing and
    unreachable-handling contract.
    """
    return timed_exchange(
        network,
        latency,
        sender,
        recipients,
        message_type,
        lambda _recipient: payload,
        timing,
        phase,
        sim=sim,
        task=task,
        kind=kind,
        timeout=timeout,
        span=span,
    )


class SimScheduledRounds:
    """Mixin: schedule a coordinator's block rounds on the virtual timeline.

    Shared by the TFCommit coordinator and the 2PC baseline -- both chain
    blocks at aggregation time and deliver decisions in order, so the same
    dependency rules govern how far their rounds pipeline.  Requires the
    host class to provide ``coordinator_id``, ``_sim``, ``_sim_task``, and
    ``_sim_blocks``.

    Also hosts the small queue/frontier surface a coordinator failover needs
    (both coordinator classes define ``_pending`` and
    ``_latest_committed_ts`` in their constructors).
    """

    #: Open trace span of the current round, tracked in lockstep with
    #: ``_sim_task`` (the scaled deployment nulls both at the ordering
    #: handoff and closes the span at delivery instead).
    _sim_span: Optional[int] = None

    def take_pending(self) -> List[Tuple[Transaction, "Envelope"]]:
        """Drain and return this coordinator's unproposed queue.

        Used by a view change to migrate transactions stranded on a deposed
        coordinator to its successor.
        """
        items = list(self._pending)
        self._pending.clear()
        return items

    def adopt_pending(self, items: Sequence[Tuple[Transaction, "Envelope"]]) -> None:
        """Append migrated transactions to this coordinator's queue."""
        self._pending.extend(items)

    def observe_frontier(self, stamp: Timestamp) -> None:
        """Raise the committed-frontier watermark (never lowers it).

        A successor coordinator starts from the frontier recorded in its own
        log so the stale-timestamp admission check stays monotone across the
        view change.
        """
        self._latest_committed_ts = max(self._latest_committed_ts, stamp)

    def _begin_sim_block(self, transactions: Sequence[Transaction]) -> Optional[BlockTask]:
        """Admit this round to the virtual timeline (no-op without a sim).

        The task carries the batch's read/write footprint and commit-
        timestamp range so the scheduler can decide how far this round may
        overlap earlier in-flight rounds (see the dependency rules in
        :mod:`repro.sim.scheduler`).
        """
        if self._sim is None:
            self._sim_task = None
            self._sim_span = None
            return None
        self._sim_blocks += 1
        reads = frozenset(
            entry.item_id for txn in transactions for entry in txn.read_set
        )
        writes = frozenset(
            entry.item_id for txn in transactions for entry in txn.write_set
        )
        stamps = [txn.commit_ts for txn in transactions]
        self._sim_task = self._sim.scheduler.begin_block(
            resource=self.coordinator_id,
            label=f"{self.coordinator_id}/round-{self._sim_blocks}",
            read_items=reads,
            write_items=writes,
            min_commit_ts=min(stamps).as_tuple() if stamps else None,
            max_commit_ts=max(stamps).as_tuple() if stamps else None,
            chained=self._sim_chained(),
            group_members=self._sim_group_members(),
        )
        self._sim_span = self._sim.obs.tracer.open_span(
            self._sim_task.label,
            "round",
            self.coordinator_id,
            self._sim_task.ready_at,
            txns=[txn.txn_id for txn in transactions],
            view=getattr(self, "view", 0),
        )
        return self._sim_task

    def _sim_chained(self) -> bool:
        """Whether this coordinator's blocks chain onto its local log at
        proposal time (the classic deployment); group blocks do not -- the
        ordering service assigns their chain metadata later."""
        return True

    def _sim_group_members(self):
        """The dynamic group this round covers (scaled deployment only)."""
        return None

    def _end_sim_block(self, status: str) -> Optional[float]:
        """Finish the round on the timeline; returns its virtual end time."""
        task, self._sim_task = self._sim_task, None
        span, self._sim_span = self._sim_span, None
        if self._sim is not None:
            self._sim.obs.metrics.counter(f"rounds.{status}")
        if task is None or self._sim is None:
            return None
        done_at = self._sim.scheduler.end_block(task, status=status)
        self._sim.obs.tracer.close_span(span, done_at, status=status)
        return done_at

    def _effective_compute(self, phase: str, measured: float) -> float:
        """Measured coordinator compute, overridden by the sim's compute model."""
        if self._sim is None:
            return measured
        return self._sim.effective_compute(phase, measured)

    def _obs_crypto(self, op: str, seconds: float) -> None:
        """Charge one coordinator-side crypto operation to the crypto
        micro-timer (op count + wall seconds, kept out of virtual time)."""
        if self._sim is not None:
            self._sim.obs.metrics.counter(f"crypto.{op}.ops")
            self._sim.obs.metrics.counter(f"crypto.{op}.s", seconds)

    def _obs_compute_phase(self, phase: str, window) -> None:
        """Trace one coordinator compute phase (aggregate/finalize) as a span."""
        if self._sim is not None and window is not None:
            start, end = window
            self._sim.obs.tracer.add_span(
                phase, "phase", self.coordinator_id, start, end, parent=self._sim_span
            )


class TFCommitCoordinator(SimScheduledRounds):
    """The designated coordinator driving TFCommit rounds.

    The coordinator is itself an untrusted database server with additional
    responsibilities during termination (Section 4.1); it participates in
    every round as a cohort via the same network messages as everyone else.
    """

    def __init__(
        self,
        server,
        network: Network,
        server_ids: Sequence[str],
        txns_per_block: int = 1,
        latency: Optional[LatencyModel] = None,
        sim: Optional[SimContext] = None,
        view: int = 0,
    ) -> None:
        self.server = server
        self.network = network
        self.server_ids = list(server_ids)
        self.batch_builder = BatchBuilder(txns_per_block)
        self._latency = latency or network.latency_model
        self._pending: List[Tuple[Transaction, Envelope]] = []
        self._latest_committed_ts = Timestamp.zero()
        #: Coordinator view this instance proposes in: 0 for the original
        #: coordinator, bumped per view change.  Stamped into every proposed
        #: block (and hence into ``round_key``), so cohorts can refuse
        #: proposals from a deposed coordinator's stale view.
        self.view = view
        #: Simulation context: when present, every phase of every round is
        #: scheduled as an event window on the shared virtual timeline and
        #: consecutive rounds pipeline per the scheduler's dependency rules.
        self._sim = sim
        self._sim_task: Optional[BlockTask] = None
        self._sim_blocks = 0
        #: History of every block round driven by this coordinator.
        self.results: List[BlockCommitResult] = []

    @property
    def coordinator_id(self) -> str:
        return self.server.server_id

    @property
    def available(self) -> bool:
        """False while the coordinator's own server is crashed.

        A crashed server cannot drive rounds; its queued transactions stay
        pending until it recovers (clients see them fail / retry), and the
        workload engine must not try to flush through it.
        """
        return not getattr(self.server, "crashed", False)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- client entry point -------------------------------------------------------

    def on_end_transaction(self, envelope: Envelope) -> Dict:
        """Handle a client's ``end_transaction`` request.

        Stale requests (commit timestamp at or below the latest committed
        timestamp) are ignored, as specified in Section 4.3.1.  Otherwise the
        transaction is queued; once a full batch is available the coordinator
        runs TFCommit and returns the outcomes.
        """
        txn: Transaction = envelope.payload["transaction"]
        if txn.commit_ts <= self._latest_committed_ts:
            return stale_failure_response(txn, self._latest_committed_ts)
        self._pending.append((txn, envelope))
        if len(self._pending) >= self.batch_builder.txns_per_block:
            return self.flush()
        return {"status": "queued"}

    def flush(self) -> Dict:
        """Commit every pending transaction (possibly across several blocks)."""
        results: Dict[str, Dict] = {}
        while self._pending:
            batch = drain_stale(
                self.batch_builder, self._pending, self._latest_committed_ts, results
            )
            if not batch:
                # Every remaining transaction was stale; nothing left to commit.
                break
            result = self.commit_batch(batch)
            digest = result.block.signing_digest() if result.block is not None else None
            cosign = result.block.cosign if result.block is not None else None
            for outcome in result.outcomes:
                results[outcome.txn_id] = outcome.to_wire(block_digest=digest, cosign=cosign)
        return flushed_response(results, self._latest_committed_ts)

    # -- the protocol ----------------------------------------------------------------

    def commit_batch(self, batch: Sequence[Tuple[Transaction, Envelope]]) -> BlockCommitResult:
        """Run one full TFCommit round over ``batch`` and return the result."""
        transactions = [txn for txn, _ in batch]
        validate_batch(transactions)
        client_requests = [envelope for _, envelope in batch]
        timing = TimingBreakdown(num_txns=len(transactions))
        faults = self.server.faults
        self._begin_sim_block(transactions)

        # Phase 1+2: <GetVote, SchAnnouncement> / <Vote, SchCommitment>.
        # Block assembly (and hence encoding the transactions) happens here,
        # on the coordinator, when the get_vote message is built; its compute
        # is charged to the "aggregate" phase entry together with the vote
        # aggregation below, keeping every second of coordinator work in
        # exactly one phase entry.
        assembly_watch = Stopwatch()
        partial_block = self._make_partial_block(transactions)
        partial_block.signing_digest()
        assembly_elapsed = assembly_watch.elapsed()
        votes = self._broadcast_phase(
            "get_vote",
            MessageType.GET_VOTE,
            {"block": partial_block, "client_requests": client_requests},
            timing,
        )
        unreachable = [resp for resp in votes.values() if resp.get("unreachable")]
        refused = [
            resp
            for resp in votes.values()
            if resp.get("ok") is False and not resp.get("unreachable")
        ]
        if unreachable or refused:
            # A cohort crashed before or during the vote, or refused the
            # proposal outright (e.g. it already moved to a newer view): the
            # block cannot be co-signed by the full signer set, so the round
            # fails and its transactions are retried (liveness, not safety --
            # nobody is accused).  When the *coordinator itself* is the
            # crashed party, the cohorts must keep their armed round state:
            # it is exactly what the view change collects and re-proposes, so
            # no ROUND_FAILED release is broadcast on its behalf.
            timing.coordinator_time += self._effective_compute("aggregate", assembly_elapsed)
            return self._failed_result(
                transactions,
                timing,
                partial_block,
                abort_reasons=[],
                refusals=unreachable + refused,
                culprits=[],
                notify_cohorts=not self._self_unreachable(unreachable),
            )

        # Phase 3: <null, SchChallenge> -- aggregate votes into the block.
        if self._sim_task is not None:
            self._sim.scheduler.begin_phase(self._sim_task, "aggregate", kind=KIND_COMPUTE)
        coordinator_watch = Stopwatch()
        faults.observe_phase(
            "coordinate", partial_block.height, tuple(t.txn_id for t in transactions)
        )
        decision = BlockDecision.COMMIT
        abort_reasons: List[str] = []
        roots: Dict[str, bytes] = {}
        commitments: Dict[str, Point] = {}
        for server_id, vote in votes.items():
            commitments[server_id] = decompress_point(vote["commitment"])
            if vote["involved"]:
                if vote["decision"] == BlockDecision.ABORT.value:
                    decision = BlockDecision.ABORT
                    if vote["abort_reason"]:
                        abort_reasons.append(f"{server_id}: {vote['abort_reason']}")
                elif vote["root"] is not None:
                    # A malicious coordinator can record a bogus root for a
                    # victim (Scenario 2) or drop it from the block entirely
                    # (returning None), producing a malformed commit block.
                    recorded = faults.fake_root_for(server_id, vote["root"])
                    if recorded is not None:
                        roots[server_id] = recorded
            timing.mht_time = max(timing.mht_time, vote["mht_time"])
            timing.mht_hashes += vote["mht_hashes"]
        if decision is BlockDecision.ABORT:
            # Aborted blocks must be missing at least one involved root
            # (Section 4.3.2); drop the roots of servers that voted abort.
            roots = {
                server_id: root
                for server_id, root in roots.items()
                if votes[server_id]["decision"] == BlockDecision.COMMIT.value
            }
        block = partial_block.with_decision(decision, roots)
        crypto_watch = Stopwatch()
        aggregate_commitment = aggregate_points(commitments.values())
        challenge = compute_challenge(aggregate_commitment, block.signing_digest())
        self._obs_crypto("aggregate_commitments", crypto_watch.elapsed())
        aggregate_elapsed = self._effective_compute(
            "aggregate", assembly_elapsed + coordinator_watch.elapsed()
        )
        timing.coordinator_time += aggregate_elapsed
        timing.phases["aggregate"] = aggregate_elapsed
        if self._sim_task is not None:
            self._obs_compute_phase(
                "aggregate",
                self._sim.scheduler.end_phase(self._sim_task, "aggregate", aggregate_elapsed),
            )

        # Phase 4: <null, SchResponse>.
        if faults.equivocate() and decision is BlockDecision.COMMIT:
            responses = self._equivocate_challenge(
                block, aggregate_commitment, challenge, timing
            )
        else:
            responses = self._broadcast_phase(
                "challenge",
                MessageType.CHALLENGE,
                {
                    "challenge": challenge,
                    "aggregate_commitment": aggregate_commitment.encode(),
                    "block": block,
                },
                timing,
            )
        refusals = [resp for resp in responses.values() if not resp["ok"]]
        if refusals:
            unreachable = [resp for resp in refusals if resp.get("unreachable")]
            return self._failed_result(
                transactions, timing, block, abort_reasons, refusals, [],
                notify_cohorts=not self._self_unreachable(unreachable),
            )

        # Phase 5: <Decision, null> -- aggregate the collective signature.
        coordinator_watch = Stopwatch()
        response_scalars = {sid: resp["response"] for sid, resp in responses.items()}
        crypto_watch = Stopwatch()
        cosign = CollectiveSignature(
            challenge=challenge,
            response=aggregate_scalars(response_scalars.values()),
            signer_ids=tuple(sorted(response_scalars)),
        )
        self._obs_crypto("aggregate_responses", crypto_watch.elapsed())
        final_block = block.with_cosign(cosign)
        if set(cosign.signer_ids) != set(self.server_ids):
            raise ProtocolInvariantError(
                f"collective signature covers {sorted(cosign.signer_ids)} "
                f"but the round's cohort set is {sorted(self.server_ids)}"
            )
        public_keys = self.network.public_key_directory()
        crypto_watch = Stopwatch()
        verified = cosi_verify(cosign, final_block.signing_digest(), public_keys)
        self._obs_crypto("cosi_verify", crypto_watch.elapsed())
        if not verified:
            # Lemma 4: the coordinator checks partial signatures to identify
            # exactly which server(s) sent bogus cryptographic values.
            culprits = identify_faulty_signers(
                commitments, response_scalars, challenge, public_keys
            )
            self._record_finalize_time(timing, coordinator_watch)
            return self._failed_result(
                transactions, timing, block, abort_reasons, [], culprits
            )
        self._record_finalize_time(timing, coordinator_watch)

        decision_failures = self._deliver_block(final_block, timing)

        if final_block.is_commit:
            self._latest_committed_ts = max(
                self._latest_committed_ts, final_block.max_commit_ts
            )
        status = "committed" if final_block.is_commit else "aborted"
        decided_at = self._end_sim_block(status)
        outcomes = [
            TxnOutcome(
                txn_id=txn.txn_id,
                status=status,
                block_height=final_block.height,
                reason="; ".join(abort_reasons),
                decided_at=decided_at,
            )
            for txn in transactions
        ]
        result = BlockCommitResult(
            status=status,
            block=final_block,
            outcomes=outcomes,
            timing=timing,
            abort_reasons=abort_reasons,
            refusals=decision_failures,
        )
        self.results.append(result)
        return result

    # -- deployment hooks ----------------------------------------------------------------

    def _make_partial_block(self, transactions: Sequence[Transaction]) -> Block:
        """Phase-1 block construction: chained onto the coordinator's log.

        The scaled per-group coordinator overrides this to build group blocks
        whose chain metadata the ordering service assigns later.
        """
        return make_partial_block(
            height=self.server.log.height,
            transactions=transactions,
            previous_hash=self.server.log.head_hash,
            view=self.view,
        )

    def _deliver_block(self, final_block: Block, timing: TimingBreakdown) -> List[Dict]:
        """Phase 5 delivery: broadcast the decision to every cohort.

        Returns the per-server failure responses.  The scaled per-group
        coordinator overrides this to publish the co-signed group block to
        the ordering service instead, which delivers the globally chained
        stream to all servers.
        """
        decisions = self._broadcast_phase(
            "decision", MessageType.DECISION, {"block": final_block}, timing,
            kind=KIND_TERMINAL,
        )
        return [resp for resp in decisions.values() if not resp.get("ok")]

    # -- helpers -------------------------------------------------------------------------

    def _record_finalize_time(self, timing: TimingBreakdown, watch: Stopwatch) -> None:
        """Charge the phase-5 coordinator work (signature aggregation and
        co-sign verification) to both ``coordinator_time`` and a ``finalize``
        phase entry so :attr:`TimingBreakdown.total` accounts for it."""
        elapsed = self._effective_compute("finalize", watch.elapsed())
        timing.coordinator_time += elapsed
        timing.phases["finalize"] = timing.phases.get("finalize", 0.0) + elapsed
        if self._sim_task is not None:
            self._sim.scheduler.begin_phase(self._sim_task, "finalize", kind=KIND_COMPUTE)
            self._obs_compute_phase(
                "finalize",
                self._sim.scheduler.end_phase(self._sim_task, "finalize", elapsed),
            )

    def _broadcast_phase(
        self,
        phase: str,
        message_type: MessageType,
        payload: Dict,
        timing: TimingBreakdown,
        kind: str = KIND_BROADCAST,
    ) -> Dict[str, Dict]:
        """Send one phase's message to every cohort via :func:`timed_broadcast`."""
        return timed_broadcast(
            self.network,
            self._latency,
            self.coordinator_id,
            self.server_ids,
            message_type,
            payload,
            timing,
            phase,
            sim=self._sim,
            task=self._sim_task,
            kind=kind,
            span=self._sim_span,
        )

    def _equivocate_challenge(
        self,
        commit_block: Block,
        aggregate_commitment: Point,
        challenge: int,
        timing: TimingBreakdown,
    ) -> Dict[str, Dict]:
        """Fault injection: send a commit block to one half and an abort block to the other.

        This reproduces Figure 8 (Case 1: the same challenge is sent to both
        groups).  Correct cohorts in the abort group detect that the
        challenge does not correspond to the block they received and refuse
        to respond, so the round cannot produce a valid signature.

        The split payload still travels through :func:`timed_exchange`: a
        cohort crashing mid-challenge becomes a synthesised unreachable
        refusal (not an exception through the equivocating coordinator), and
        the per-recipient delivery order stays a model-checker branch point.
        """
        abort_block = commit_block.with_decision(BlockDecision.ABORT, {})
        half = len(self.server_ids) // 2 or 1
        commit_group = set(self.server_ids[:half])

        def payload_for(server_id: str) -> Dict:
            block = commit_block if server_id in commit_group else abort_block
            return {
                "challenge": challenge,
                "aggregate_commitment": aggregate_commitment.encode(),
                "block": block,
            }

        return timed_exchange(
            self.network,
            self._latency,
            self.coordinator_id,
            self.server_ids,
            MessageType.CHALLENGE,
            payload_for,
            timing,
            "challenge",
            sim=self._sim,
            task=self._sim_task,
            span=self._sim_span,
        )

    def _self_unreachable(self, unreachable: List[Dict]) -> bool:
        """Whether the coordinator's *own* server is among the silent peers."""
        return any(
            resp.get("server_id") == self.coordinator_id for resp in unreachable
        )

    def _failed_result(
        self,
        transactions: Sequence[Transaction],
        timing: TimingBreakdown,
        block: Optional[Block],
        abort_reasons: List[str],
        refusals: List[Dict],
        culprits: List[str],
        notify_cohorts: bool = True,
    ) -> BlockCommitResult:
        reasons = [r.get("reason", "") for r in refusals] or abort_reasons
        if self._sim is not None:
            # Detection events: whatever made this round fail (a silent
            # peer, a refusing cohort, an identified faulty signer) becomes
            # a trace instant so the fault campaign's injections can be
            # matched against the protocol's detections on one timeline.
            obs = self._sim.obs
            now = self._sim.clock.now
            for culprit in culprits:
                obs.metrics.counter("faults.culprits_identified")
                obs.tracer.instant(
                    f"detect:faulty-signer:{culprit}", "fault-detect", culprit, now
                )
            for refusal in refusals:
                peer = refusal.get("server_id", "?")
                event = "unreachable" if refusal.get("unreachable") else "refusal"
                obs.metrics.counter(f"faults.detected_{event}")
                obs.tracer.instant(
                    f"detect:{event}:{peer}",
                    "fault-detect",
                    str(peer),
                    now,
                    reason=refusal.get("reason", ""),
                )
        if (
            block is not None
            and notify_cohorts
            and not mutation_enabled("pr3-round-failed-leak")
        ):
            # The round will never see a decision; tell the cohorts to drop
            # the state (witness nonce, speculative root) they buffered for
            # it, so failed rounds do not leak RoundState forever.  A crashed
            # cohort (possibly the very reason the round failed) is skipped:
            # it lost its round state with the rest of its volatile memory.
            # When the coordinator itself died (``notify_cohorts=False``) the
            # release is deliberately *not* sent: the armed round state is
            # what the surviving cohorts hand the view change for re-proposal.
            self.network.broadcast(
                self.coordinator_id,
                self.server_ids,
                MessageType.ROUND_FAILED,
                {"round_key": block.round_key()},
                skip_unreachable=True,
            )
        failed_at = self._end_sim_block("failed")
        outcomes = [
            TxnOutcome(
                txn_id=txn.txn_id,
                status="failed",
                reason="; ".join(filter(None, reasons)),
                decided_at=failed_at,
            )
            for txn in transactions
        ]
        result = BlockCommitResult(
            status="failed",
            block=None,
            outcomes=outcomes,
            timing=timing,
            abort_reasons=abort_reasons,
            refusals=refusals,
            culprits=culprits,
        )
        self.results.append(result)
        return result
