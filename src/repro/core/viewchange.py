"""Coordinator failover: the per-group view-change protocol.

The paper's threat model lets *any* server misbehave, coordinators included
(Section 4.1: the coordinator "is itself an untrusted database server").
Crash recovery handles cohorts, but a dead or Byzantine coordinator stalls
its group's whole queue: rounds it armed never decide, and its pending
transactions wait forever.  The view change turns that permanent loss into a
bounded one:

1. Cohorts arm a **round timer** when they first see ``GET_VOTE``/``PREPARE``
   (:class:`repro.server.commitment.RoundState.deadline`) and refresh it on
   each later phase message.  A round past its deadline with no decision is
   *stalled*.
2. The next-smallest live group member becomes the **successor**.  It
   broadcasts ``VIEW_CHANGE``; every surviving cohort answers with a
   :class:`FrontierCertificate` -- its commit frontier, carried as untrusted
   wire bytes -- plus the stalled rounds the deposed coordinator left armed.
3. The successor **verifies** each certificate (strict decode, head-block
   co-sign, hash consistency) and adopts the *maximum certified frontier*.
   Certificates that fail verification are discarded: a lying cohort cannot
   drag the new view backwards (the frontier is monotone) or forwards (a
   claimed-ahead frontier needs a co-signed head block it cannot forge).
4. The successor broadcasts ``NEW_VIEW``.  Cohorts bump their per-group view
   gate -- proposals from the deposed view are refused from here on -- and
   release pre-new-view round state.
5. The successor **re-proposes** each distinct stalled round at ``view + 1``.
   Re-proposals cannot double-commit: a round whose decision *did* land is
   already in every live log (the successor skips it via
   :func:`already_committed`), and even a racing re-proposal aborts at OCC
   validation because the original commit advanced the write timestamps the
   re-proposed transactions read.

This module implements steps 2-4 (the wire protocol and the certificate
trust argument); the deployment classes own election, coordinator
construction, and the re-proposal loop, because those touch routing state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.choices import choose_order
from repro.common.errors import ProtocolError, ProtocolInvariantError, ValidationError
from repro.core.tfcommit import ROUND_TIMEOUT_S, TimingBreakdown, timed_broadcast
from repro.crypto.cosi import cosi_verify
from repro.ledger.block import Block
from repro.ledger.log import TransactionLog
from repro.net.message import MessageType
from repro.recovery.wire import block_from_wire


@dataclass(frozen=True)
class FrontierCertificate:
    """One cohort's signed-evidence claim of its commit frontier.

    ``head`` is the cohort's last log block in wire form; the block's
    collective signature is the certificate's authority -- the successor
    believes ``height``/``head_hash`` only after re-verifying the co-sign
    and recomputing the hash, so a Byzantine cohort cannot fabricate a
    frontier it never committed.  A height-0 certificate (empty log) carries
    no head and claims nothing that needs proving.
    """

    server_id: str
    view: int
    height: int
    head_hash: bytes
    head: Optional[dict] = None

    def to_wire(self) -> dict:
        return {
            "server_id": self.server_id,
            "view": self.view,
            "height": self.height,
            "head_hash": self.head_hash,
            "head": self.head,
        }


@dataclass
class ViewChangeOutcome:
    """Everything one completed view change produced."""

    group: Optional[Tuple[str, ...]]
    deposed: str
    successor: str
    new_view: int
    #: Certificates that survived verification, by reporting cohort.
    certificates: Dict[str, FrontierCertificate] = field(default_factory=dict)
    #: Cohorts whose certificate failed verification (discarded, reported).
    rejected_certificates: List[str] = field(default_factory=list)
    #: The maximum certified frontier height.
    frontier_height: int = 0
    #: Distinct stalled rounds to re-propose: ``(block, client_requests)``.
    stalled_rounds: List[Tuple[Block, list]] = field(default_factory=list)
    #: Simulated-time cost of the solicitation + announcement phases.
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)


def decode_certificate(data, expected_server: str) -> Optional[FrontierCertificate]:
    """Strict-decode a certificate without co-sign verification (2PC mode)."""
    from repro.recovery.wire import frontier_certificate_from_wire

    try:
        cert = frontier_certificate_from_wire(data)
    except ValidationError:
        return None
    return cert if cert.server_id == expected_server else None


def verify_certificate(
    data, public_keys, expected_server: str
) -> Optional[FrontierCertificate]:
    """Decode and verify one untrusted certificate; ``None`` if it lies.

    The trust argument mirrors the recovery catch-up: anything crossing the
    wire may be attacker-chosen, so the certificate is believed only to the
    extent its co-signed head block backs it -- the head must decode, its
    collective signature must verify over its signing digest (with the
    signer set equal to its recorded group, for group blocks), its hash must
    equal the claimed ``head_hash``, and a non-empty frontier must carry a
    head at all.
    """
    cert = decode_certificate(data, expected_server)
    if cert is None:
        return None
    if cert.height <= 0:
        return cert if cert.height == 0 and cert.head is None else None
    if cert.head is None:
        return None
    try:
        head = block_from_wire(cert.head)
    except ValidationError:
        return None
    if head.block_hash() != cert.head_hash:
        return None
    if head.cosign is None or not cosi_verify(
        head.cosign, head.signing_digest(), public_keys
    ):
        return None
    if head.group is not None and set(head.cosign.signer_ids) != set(head.group):
        return None
    return cert


def elect_successor(members: Sequence[str], excluded: Sequence[str]) -> str:
    """The next-smallest live group member (deterministic, no extra round).

    Every cohort can compute the same answer locally, so election needs no
    leader race: it is the same min-rule that picked the original coordinator,
    restricted to members that are neither deposed nor crashed.
    """
    candidates = sorted(set(members) - set(excluded))
    if not candidates:
        raise ProtocolError(
            f"no live successor candidate among {sorted(members)} "
            f"(excluded: {sorted(set(excluded))})"
        )
    return candidates[0]


def already_committed(log: TransactionLog, block: Block) -> bool:
    """Whether any of ``block``'s transactions already decided in ``log``.

    The double-commit guard of re-proposal: if the deposed coordinator's
    decision *did* land before it died, every live server (the successor
    included) applied it, so the stalled-round report is a ghost and the
    round must not run again.
    """
    proposed = {txn.txn_id for txn in block.transactions}
    for committed in log:
        for txn in committed.transactions:
            if txn.txn_id in proposed:
                return True
    return False


def run_view_change(
    network,
    latency,
    successor_id: str,
    members: Sequence[str],
    deposed: str,
    group: Optional[Tuple[str, ...]],
    current_view: int,
    successor_log: TransactionLog,
    sim=None,
    clock=None,
    trusted: bool = False,
) -> ViewChangeOutcome:
    """Drive one view change from the successor's side (steps 2-4 above).

    ``group`` is ``None`` for the classic full-cluster deployment (and for
    the scaled one, where it means "every group the deposed coordinator
    led").  The caller passes the view being left behind; the protocol
    installs ``current_view + 1`` everywhere it can reach and returns the
    verified frontier plus the deduplicated stalled rounds for the caller to
    re-propose.

    ``trusted=True`` is the 2PC baseline's mode: its blocks carry no
    collective signature, so certificates are strict-decoded but not
    co-sign-verified -- consistent with 2PC modelling the trusted
    infrastructure the paper compares against.
    """
    new_view = current_view + 1
    outcome = ViewChangeOutcome(
        group=tuple(group) if group is not None else None,
        deposed=deposed,
        successor=successor_id,
        new_view=new_view,
    )
    obs = sim.obs if sim is not None else None
    started = clock.now if clock is not None else None
    live = [member for member in members if member != deposed]
    if clock is not None:
        # Time the stalled rounds out for real: the cohorts' deadlines are
        # virtual-clock instants, and a view change begins only after the
        # round timer genuinely elapsed with no decision.
        clock.advance(ROUND_TIMEOUT_S)
    payload = {
        "group": list(group) if group is not None else None,
        "deposed": deposed,
        "view": new_view,
    }
    responses = timed_broadcast(
        network,
        latency,
        successor_id,
        live,
        MessageType.VIEW_CHANGE,
        payload,
        outcome.timing,
        "view-change",
        sim=sim,
    )
    public_keys = network.public_key_directory()
    stalled: Dict[tuple, Tuple[Block, list]] = {}
    for server_id, response in responses.items():
        if not response.get("ok"):
            continue
        cert = (
            decode_certificate(response["certificate"], server_id)
            if trusted
            else verify_certificate(response["certificate"], public_keys, server_id)
        )
        if cert is None:
            outcome.rejected_certificates.append(server_id)
            continue
        outcome.certificates[server_id] = cert
        for entry in response.get("stalled", ()):
            block = entry["block"]
            stalled.setdefault(
                block.round_key(), (block, list(entry.get("client_requests", ())))
            )
    outcome.frontier_height = max(
        (cert.height for cert in outcome.certificates.values()), default=0
    )
    if successor_log.height < outcome.frontier_height:
        # Certified frontiers only ever name blocks every live server applied
        # (decisions broadcast to the full cohort set), so a successor behind
        # the maximum certified frontier indicates a wiring bug, not a
        # runtime condition to paper over.
        raise ProtocolInvariantError(
            f"successor {successor_id} log height {successor_log.height} is behind "
            f"the certified frontier {outcome.frontier_height}"
        )
    timed_broadcast(
        network,
        latency,
        successor_id,
        live,
        MessageType.NEW_VIEW,
        payload,
        outcome.timing,
        "new-view",
        sim=sim,
    )
    # Re-proposal order is a liveness-only freedom the model checker may
    # explore; committed rounds are skipped by the caller regardless.
    ordered_keys = choose_order(
        "view-change/repropose", sorted(stalled), feature="view-change"
    )
    outcome.stalled_rounds = [
        stalled[key]
        for key in ordered_keys
        if not already_committed(successor_log, stalled[key][0])
    ]
    if obs is not None:
        obs.metrics.counter("viewchange.count")
        obs.metrics.counter(
            "viewchange.rejected_certificates",
            float(len(outcome.rejected_certificates)),
        )
        obs.metrics.counter(
            "viewchange.stalled_reproposed", float(len(outcome.stalled_rounds))
        )
        if started is not None:
            # The span covers the timeout wait plus both broadcasts; it is
            # top-level (the stalled round it supersedes is a different
            # coordinator's span tree).
            obs.tracer.add_span(
                f"view-change:v{new_view}",
                "viewchange",
                successor_id,
                started,
                clock.now,
                deposed=deposed,
                rejected=len(outcome.rejected_certificates),
            )
    return outcome
