"""OrdServ: the block ordering service for scaled TFCommit (Section 4.6, Figure 9).

When different server groups terminate transactions concurrently, someone has
to merge their per-group blocks into the single, consistently ordered,
globally replicated log.  The paper abstracts this as an ordering service
("OrdServ") that atomically broadcasts a single stream of blocks and fills in
the hash-of-previous-block pointers; it can be realised with PBFT among the
coordinators, with Kafka (as in Veritas), or with a dependency-tracking
scheme such as ParBlockchain.

This module implements the abstraction directly (see the DESIGN.md
substitution table): a sequencer that

* accepts blocks published by group coordinators together with the group that
  produced them,
* preserves submission order between blocks of *overlapping* groups (and, more
  strongly, between blocks with data dependencies), while freely ordering
  blocks of disjoint groups,
* assigns global heights, chains the blocks with hash pointers, and
* delivers the finalised stream to every subscribed server.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Sequence, Tuple

from repro.check.choices import choose
from repro.common.errors import ProtocolInvariantError
from repro.core.grouping import ServerGroup, dependency_between
from repro.crypto.hashing import EMPTY_HASH
from repro.ledger.block import Block


@dataclass(frozen=True)
class OrderedBlock:
    """A block as finalised by the ordering service.

    ``shards`` names the ordering shards the block involved (empty for the
    single-sequencer service, where the stream has no shard structure); the
    deployment layer uses it to charge the delivery to per-shard timeline
    resources.
    """

    global_height: int
    block: Block
    group: ServerGroup
    shards: Tuple[int, ...] = field(default=())

    @property
    def block_hash(self) -> bytes:
        return self.block.block_hash()


def stream_respects_dependencies(ordered: Sequence[OrderedBlock]) -> bool:
    """Check a finalised stream never reorders dependent blocks.

    For every pair of ordered blocks from overlapping groups, the data
    dependencies must point forward in the stream.  Shared by every
    :class:`~repro.core.sequencing.Sequencer` implementation's
    ``verify_dependency_order`` and by the test suites.
    """
    for later_index, later in enumerate(ordered):
        for earlier in ordered[:later_index]:
            if earlier.group.overlaps(later.group):
                if dependency_between(
                    later.block.transactions, earlier.block.transactions
                ) and not dependency_between(
                    earlier.block.transactions, later.block.transactions
                ):
                    return False
    return True


@dataclass
class _PendingBlock:
    block: Block
    group: ServerGroup
    sequence: int


class OrderingService:
    """A dependency-preserving atomic broadcast of per-group blocks.

    ``reorder_window`` controls how aggressively independent blocks may be
    reordered relative to submission order; 0 (the default) keeps submission
    order, which is always dependency-safe, while larger windows let the
    tests exercise the "disjoint groups may be ordered arbitrarily" freedom.
    """

    def __init__(self, reorder_window: int = 0) -> None:
        self._ordered: List[OrderedBlock] = []
        self._subscribers: List[Callable[[OrderedBlock], None]] = []
        self._sequence = 0
        self._reorder_window = max(0, reorder_window)
        self._pending: List[_PendingBlock] = []
        #: Round identities already accepted (pending or finalised); see
        #: :func:`round_identity`.
        self._identities: set = set()
        #: Observability bundle (attached by the deployment layer).
        self._obs = None

    def attach_obs(self, obs) -> None:
        """Report publication/ordering metrics through ``obs``."""
        self._obs = obs

    # -- publication ---------------------------------------------------------------

    @staticmethod
    def round_identity(block: Block, group: ServerGroup):
        """What makes two published blocks "the same round".

        Group membership plus the transaction set -- the view is deliberately
        *excluded*: a successor coordinator re-proposes a stalled round at a
        higher view, and if the original publication is still floating in the
        reorder window (the deposed coordinator died after publishing but
        before anyone saw the stream), both copies reach the service.  Only
        one may enter the global log.
        """
        return (
            tuple(sorted(group.members)),
            tuple(sorted(txn.txn_id for txn in block.transactions)),
        )

    def seen(self, block: Block, group: ServerGroup) -> bool:
        """Whether a block with this round identity was already accepted."""
        return self.round_identity(block, group) in self._identities

    def publish(self, block: Block, group: ServerGroup) -> bool:
        """A group coordinator hands over a locally co-signed block.

        Returns ``False`` (publication ignored) when a block with the same
        round identity was already accepted -- the dedup that makes
        coordinator failover's re-proposal idempotent at the ordering layer.
        """
        identity = self.round_identity(block, group)
        if identity in self._identities:
            if self._obs is not None:
                self._obs.metrics.counter("ordserv.duplicates_suppressed")
            return False
        self._identities.add(identity)
        if self._obs is not None:
            self._obs.metrics.counter("ordserv.published")
        self._pending.append(_PendingBlock(block=block, group=group, sequence=self._sequence))
        self._sequence += 1
        if len(self._pending) > self._reorder_window:
            self._drain()
        return True

    def flush(self) -> None:
        """Finalise every pending block."""
        self._drain(force=True)

    def flush_conflicting(self, group: ServerGroup) -> None:
        """Finalise every pending block whose group overlaps ``group``.

        A group coordinator calls this before starting a new TFCommit round:
        the speculative Merkle roots its cohorts are about to compute must
        reflect every already-published block touching the same shards, so
        blocks of overlapping groups cannot be left floating in the reorder
        window.  Blocks of disjoint groups stay pending and keep their
        reordering freedom -- unless an overlapping block depends on them, in
        which case they must land first to keep the stream dependency-safe.
        """
        must_land = [p for p in self._pending if p.group.overlaps(group)]
        changed = True
        while changed:
            changed = False
            for pending in self._pending:
                if pending in must_land:
                    continue
                feeds_into = any(
                    pending.sequence < landing.sequence
                    and pending.group.overlaps(landing.group)
                    and dependency_between(
                        pending.block.transactions, landing.block.transactions
                    )
                    for landing in must_land
                )
                if feeds_into:
                    must_land.append(pending)
                    changed = True
        # Submission order within the selected subset is always
        # dependency-safe, and every upstream dependency was pulled in above.
        for pending in sorted(must_land, key=lambda p: p.sequence):
            self._pending.remove(pending)
            self._finalize(pending)

    def _drain(self, force: bool = False) -> None:
        while self._pending and (force or len(self._pending) > self._reorder_window):
            candidate_index = self._pick_next()
            pending = self._pending.pop(candidate_index)
            self._finalize(pending)

    def _pick_next(self) -> int:
        """Pick the next pending block to finalise.

        Any pending block may go next as long as no *earlier-submitted*
        pending block has a dependency flowing into it; with the default
        window of 0 this is always index 0.  Under the model checker the
        pick among all eligible candidates is a branch point, so every
        dependency-safe release order of the reorder window gets explored.
        """
        eligible: List[int] = []
        for index, candidate in enumerate(self._pending):
            earlier = self._pending[:index]
            if not any(
                prior.group.overlaps(candidate.group)
                and dependency_between(prior.block.transactions, candidate.block.transactions)
                for prior in earlier
            ):
                eligible.append(index)
        if not eligible:
            return 0
        pick = choose("ordserv/pick-next", len(eligible), 0, feature="ordserv-pick")
        return eligible[pick]

    def _finalize(self, pending: _PendingBlock) -> None:
        for prior in self._pending:
            if (
                prior.sequence < pending.sequence
                and prior.group.overlaps(pending.group)
                and dependency_between(prior.block.transactions, pending.block.transactions)
            ):
                raise ProtocolInvariantError(
                    f"ordering service would finalise block seq={pending.sequence} "
                    f"before pending dependency seq={prior.sequence} of an "
                    "overlapping group"
                )
        previous_hash = self._ordered[-1].block_hash if self._ordered else EMPTY_HASH
        chained = replace(
            pending.block, height=len(self._ordered), previous_hash=previous_hash
        )
        ordered = OrderedBlock(
            global_height=len(self._ordered), block=chained, group=pending.group
        )
        self._ordered.append(ordered)
        if self._obs is not None:
            self._obs.metrics.counter("ordserv.ordered")
            self._obs.metrics.gauge("ordserv.stream_length", float(len(self._ordered)))
        for subscriber in self._subscribers:
            subscriber(ordered)

    # -- delivery --------------------------------------------------------------------

    def subscribe(self, callback: Callable[[OrderedBlock], None]) -> None:
        """Register a delivery callback (one per server, typically)."""
        self._subscribers.append(callback)

    @property
    def ordered_blocks(self) -> List[OrderedBlock]:
        return list(self._ordered)

    @property
    def stream_length(self) -> int:
        return len(self._ordered)

    def verify_dependency_order(self) -> bool:
        """Check that the finalised stream never reorders dependent blocks.

        Used by tests and by the auditor-style sanity check; see
        :func:`stream_respects_dependencies`.
        """
        return stream_respects_dependencies(self._ordered)
