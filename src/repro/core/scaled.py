"""The scaled multi-coordinator deployment (Section 4.6, Figure 9).

The basic protocol drags every server into every TFCommit round through one
fixed coordinator.  To scale, "servers are divided into small dynamic groups.
The servers accessed by a transaction form one group, in which one server
acts as the coordinator to terminate that transaction"; the per-group blocks
are then merged into the single consistently ordered global log by an
ordering service (realisable with Kafka as in Veritas, or with
dependency-tracking as in ParBlockchain -- here
:class:`~repro.core.ordserv.OrderingService`).

:class:`ScaledFidesSystem` wires the pieces together:

* clients route each ``end_transaction`` to the coordinator of the
  transaction's dynamic group (:func:`~repro.core.grouping.group_for_transaction`);
* each group coordinator runs TFCommit over *only* the group's members
  (:class:`GroupTFCommitCoordinator`), producing a block co-signed by the
  group;
* instead of a per-coordinator decision broadcast, the co-signed group block
  is published to the ordering service, which assigns the global height and
  hash pointer and atomically broadcasts the chained stream to **every**
  server;
* every server applies the globally ordered stream, so all logs converge to
  the same dependency-respecting chain, which the auditor verifies -- hash
  pointers over the full body *and* the group co-sign over the chain-free
  group body digest (see :mod:`repro.ledger.block` on the identity split).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError, ProtocolInvariantError
from repro.common.types import ServerId, Value
from repro.core.fides import PROTOCOL_TFCOMMIT, FidesSystem
from repro.core.grouping import ServerGroup, group_for_batch, group_for_transaction
from repro.core.ordserv import OrderedBlock, OrderingService
from repro.core.sequencing import Sequencer, SequencerFactory, single_sequencer
from repro.core.tfcommit import TFCommitCoordinator, TimingBreakdown, timed_broadcast
from repro.core.viewchange import ViewChangeOutcome, elect_successor, run_view_change
from repro.crypto.keys import keypair_for
from repro.ledger.anchor import EpochAnchor
from repro.ledger.block import Block, make_group_partial_block
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.sim.context import SimContext
from repro.sim.scheduler import ORDSERV_RESOURCE, BlockTask
from repro.storage.shard import ShardMap
from repro.txn.transaction import Transaction

#: Identity under which the ordering service broadcasts on the network.
ORDSERV_ID = "ordserv"


class GroupTFCommitCoordinator(TFCommitCoordinator):
    """A TFCommit coordinator terminating transactions for dynamic groups.

    One instance lives on every server that is the designated coordinator of
    at least one group (the member with the smallest id).  Per batch it forms
    the covering group (:func:`~repro.core.grouping.group_for_batch`), runs
    the five TFCommit phases over only the group's members, and publishes the
    co-signed block to the ordering service instead of broadcasting a
    decision itself.
    """

    def __init__(
        self,
        server,
        network: Network,
        shard_map: ShardMap,
        ordering: Sequencer,
        system: "ScaledFidesSystem",
        txns_per_block: int = 1,
        latency: Optional[LatencyModel] = None,
        sim: Optional[SimContext] = None,
    ) -> None:
        super().__init__(
            server=server,
            network=network,
            server_ids=[server.server_id],
            txns_per_block=txns_per_block,
            latency=latency,
            sim=sim,
        )
        self._shard_map = shard_map
        self._ordering = ordering
        self._system = system
        self._current_group: Optional[ServerGroup] = None

    def commit_batch(self, batch) -> object:
        """Run one TFCommit round over the batch's dynamic group."""
        group = group_for_batch(
            [txn for txn, _ in batch],
            self._shard_map,
            exclude=self._system.deposed_servers(),
        )
        if group.coordinator != self.coordinator_id:
            # The union of per-transaction groups always has this server as
            # its smallest member, because every transaction was routed here
            # for exactly that reason; a mismatch means the shard map and the
            # client router disagree.
            raise ProtocolInvariantError(
                f"batch group coordinator {group.coordinator} is not {self.coordinator_id}"
            )
        # Blocks of overlapping groups still floating in the ordering
        # service's reorder window must land first: the speculative roots
        # this round is about to compute have to reflect their writes.
        self._ordering.flush_conflicting(group)
        self._current_group = group
        self.server_ids = sorted(group.members)
        try:
            result = super().commit_batch(batch)
        finally:
            # A round that raised (or failed) must not leave this group's
            # membership behind: the next batch may form a *different* group,
            # and stale ``server_ids`` would drag the wrong cohort set into
            # its phases.
            self._current_group = None
            self.server_ids = [self.coordinator_id]
        if result.block is not None:
            # If the ordering service already finalised the block (always
            # true with a reorder window of 0), the system restamps the
            # result with the chained block, the real global height, and any
            # delivery failures now; otherwise the result is registered and
            # restamped when the stream delivers it.  Until then outcomes
            # carry ``None`` rather than the misleading placeholder 0.
            result.outcomes = [
                replace(outcome, block_height=None) for outcome in result.outcomes
            ]
            self._system.attach_round_result(result.block.signing_digest(), result)
        return result

    # -- deployment hooks overridden for the scaled path ----------------------------

    def _make_partial_block(self, transactions: Sequence[Transaction]) -> Block:
        return make_group_partial_block(
            transactions,
            group_members=sorted(self._current_group.members),
            view=self.view,
        )

    def _sim_chained(self) -> bool:
        # Group blocks carry no chain metadata at proposal time (the
        # ordering service assigns height and hash pointer), so consecutive
        # rounds of one group coordinator have no chaining dependency.
        return False

    def _sim_group_members(self):
        if self._current_group is None:
            return None
        return frozenset(self._current_group.members)

    def _deliver_block(self, final_block: Block, timing: TimingBreakdown) -> List[Dict]:
        """Publish the co-signed group block; delivery happens via OrdServ.

        The ordering service may hold the block in its reorder window, so the
        delivery cost is charged to this round's timing when the block is
        actually finalised (the system keeps the timing registered until
        then).  The round's timeline task is handed over with it: the
        ordering service's delivery is the round's terminal phase, scheduled
        on the shared ``ordserv`` resource when the block lands in the
        stream.
        """
        if self._ordering.seen(final_block, self._current_group):
            # The round was already published: the deposed coordinator died
            # *after* handing its block to the ordering service, and this is
            # a successor's re-proposal racing the original through the
            # reorder window.  The original publication carries the decision;
            # the duplicate must not enter the stream twice.
            return []
        self._system.register_inflight(
            final_block.signing_digest(), timing, self._sim_task, span=self._sim_span
        )
        # The round's trace span crosses the handoff with the task: it stays
        # open until the ordering service delivers the chained block.
        self._sim_task = None
        self._sim_span = None
        self._ordering.publish(final_block, self._current_group)
        return []


class GroupDispatcher:
    """Per-server termination role: route each request to its group coordinator.

    A server can coordinate many dynamic groups (every group whose smallest
    member it is).  The dispatcher keeps one
    :class:`GroupTFCommitCoordinator` per server and hands it every
    ``end_transaction`` that clients routed here.
    """

    def __init__(self, system: "ScaledFidesSystem", server_id: ServerId) -> None:
        self._system = system
        self._server_id = server_id

    def on_end_transaction(self, envelope: Envelope) -> Dict:
        return self._system.group_coordinator(self._server_id).on_end_transaction(envelope)

    @property
    def pending_count(self) -> int:
        coordinator = self._system._group_coordinators.get(self._server_id)
        return coordinator.pending_count if coordinator is not None else 0


class ScaledFidesSystem(FidesSystem):
    """A Fides deployment terminating transactions in dynamic server groups.

    Drop-in alternative to :class:`~repro.core.fides.FidesSystem` (TFCommit
    only -- the 2PC baseline has no co-signed blocks to order): same client
    API, same workload engine, same auditor, but transactions touching
    disjoint shard sets commit through distinct group coordinators and the
    global log is produced by the ordering service's atomic broadcast.

    The ordering layer is pluggable through ``sequencer``, a
    :data:`~repro.core.sequencing.SequencerFactory` called with the system's
    config once the server set is known.  The default,
    ``single_sequencer(reorder_window)``, reproduces the classic
    single-lane :class:`OrderingService` bit-for-bit;
    :func:`~repro.core.sequencing.sharded_sequencer` swaps in the sharded
    service (DESIGN.md §13).  ``reorder_window`` only applies to the
    default factory: 0 keeps submission order; larger windows let blocks of
    disjoint groups be reordered, exercising the freedom the paper grants
    OrdServ.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        latency: Optional[LatencyModel] = None,
        initial_value: Value = 0,
        reorder_window: int = 0,
        state_store_factory=None,
        compute_model=None,
        obs=None,
        sequencer: Optional[SequencerFactory] = None,
    ) -> None:
        self._reorder_window = reorder_window
        self._sequencer_factory = sequencer
        super().__init__(
            config=config,
            protocol=PROTOCOL_TFCOMMIT,
            latency=latency,
            initial_value=initial_value,
            state_store_factory=state_store_factory,
            compute_model=compute_model,
            obs=obs,
        )

    # -- wiring ---------------------------------------------------------------------

    def _wire_termination(self) -> None:
        factory = self._sequencer_factory or single_sequencer(self._reorder_window)
        self.ordering: Sequencer = factory(self.config)
        self.ordering.attach_obs(self.sim.obs)
        self._group_coordinators: Dict[ServerId, GroupTFCommitCoordinator] = {}
        #: signing digest -> the round timing awaiting its delivery charge.
        self._inflight_timings: Dict[bytes, TimingBreakdown] = {}
        #: signing digest -> the round's timeline task awaiting its terminal
        #: ``order`` phase (scheduled when the stream delivers the block).
        self._inflight_tasks: Dict[bytes, BlockTask] = {}
        #: signing digest -> the round's open trace span, closed at delivery.
        self._inflight_spans: Dict[bytes, int] = {}
        #: signing digest -> virtual time the ordered delivery completed.
        #: Bounded: a result is restamped at (or within the same round as)
        #: its block's delivery, so only a recent window is ever read.
        self._decided_at_by_digest: Dict[bytes, float] = {}
        #: signing digest -> the chained block as finalised by the ordering
        #: service (the group digest is untouched by re-chaining, so it is a
        #: stable key from publication through delivery).
        self._chained_by_digest: Dict[bytes, Block] = {}
        #: signing digest -> per-server delivery failure responses.
        self._failures_by_digest: Dict[bytes, List[Dict]] = {}
        #: signing digest -> round result awaiting delivery (reorder window).
        self._pending_results: Dict[bytes, object] = {}
        #: Global height the next ordered delivery must carry (the stream is
        #: an atomic broadcast: no gaps, no replays).
        self._next_delivery_height = 0
        self.delivery_failures: List[Dict] = []
        self.network.register_observer(
            ORDSERV_ID, keypair_for(ORDSERV_ID, seed=self.config.seed)
        )
        self.ordering.subscribe(self._deliver_ordered)
        subscribe_anchors = getattr(self.ordering, "subscribe_anchors", None)
        if subscribe_anchors is not None:
            subscribe_anchors(self._broadcast_anchor)
        for server_id, server in self.servers.items():
            server.set_coordinator_role(GroupDispatcher(self, server_id))
        #: No single designated coordinator exists in the scaled deployment.
        self.coordinator = None
        #: The highest view any failover installed; newly created group
        #: coordinators start here so their proposals pass the cohorts'
        #: per-group view gates.
        self._current_view = 0

    def _coordinator_router(self):
        return lambda txn: group_for_transaction(
            txn, self.shard_map, exclude=self._deposed
        ).coordinator

    def group_coordinator(self, server_id: ServerId) -> GroupTFCommitCoordinator:
        """The (lazily created) coordinator for groups led by ``server_id``."""
        if server_id not in self._group_coordinators:
            coordinator = GroupTFCommitCoordinator(
                server=self.servers[server_id],
                network=self.network,
                shard_map=self.shard_map,
                ordering=self.ordering,
                system=self,
                txns_per_block=self.config.txns_per_block,
                latency=self.latency,
                sim=self.sim,
            )
            coordinator.view = self._current_view
            self._group_coordinators[server_id] = coordinator
        return self._group_coordinators[server_id]

    def fail_over(
        self, server_id: Optional[ServerId] = None, reason: str = ""
    ) -> ViewChangeOutcome:
        """Depose one group-leading server across *all* the groups it leads.

        Dynamic groups share coordinators by the min-member rule, so a single
        view change (``group=None`` = every group the deposed server drove)
        fences it everywhere at once; afterwards routing and group formation
        exclude it, and each stalled round is re-proposed -- at the new view
        -- by the coordinator of its re-formed group.
        """
        if server_id is None:
            raise ConfigurationError(
                "the scaled deployment has no designated coordinator; "
                "name the server to depose"
            )
        deposed = server_id
        self.sim.drain()
        excluded = self._deposed | {deposed} | set(self.crashed_servers())
        successor = elect_successor(self.config.server_ids, excluded)
        old = self._group_coordinators.get(deposed)
        current_view = max(
            (c.view for c in self._group_coordinators.values()), default=0
        )
        outcome = run_view_change(
            self.network,
            self.latency,
            successor,
            members=self.config.server_ids,
            deposed=deposed,
            group=None,
            current_view=current_view,
            successor_log=self.servers[successor].log,
            sim=self.sim,
            clock=self.sim.clock,
        )
        self._deposed.add(deposed)
        self._current_view = max(self._current_view, outcome.new_view)
        for coordinator in self._group_coordinators.values():
            coordinator.view = max(coordinator.view, outcome.new_view)
        if old is not None:
            # Transactions stranded in the deposed leader's queue re-route
            # through the post-failover group formation, one by one -- their
            # groups may now elect different coordinators.
            for txn, envelope in old.take_pending():
                target = group_for_transaction(
                    txn, self.shard_map, exclude=self._deposed
                ).coordinator
                self.group_coordinator(target).adopt_pending([(txn, envelope)])
        self.view_changes.append(outcome)
        for block, client_requests in outcome.stalled_rounds:
            batch = list(zip(block.transactions, client_requests))
            target = group_for_batch(
                [txn for txn, _ in batch], self.shard_map, exclude=self._deposed
            ).coordinator
            self.group_coordinator(target).commit_batch(batch)
        self.ordering.flush()
        self.sim.drain()
        return outcome

    # -- ordered-stream delivery ------------------------------------------------------

    def register_inflight(
        self,
        signing_digest: bytes,
        timing: TimingBreakdown,
        task: Optional[BlockTask] = None,
        span: Optional[int] = None,
    ) -> None:
        """Remember a published block's timing (and its timeline task and
        trace span) until the stream delivers it."""
        self._inflight_timings[signing_digest] = timing
        if task is not None:
            self._inflight_tasks[signing_digest] = task
        if span is not None:
            self._inflight_spans[signing_digest] = span

    def chained_block(self, signing_digest: bytes) -> Optional[Block]:
        """The globally chained block for a group digest, once delivered."""
        return self._chained_by_digest.get(signing_digest)

    def attach_round_result(self, signing_digest: bytes, result) -> None:
        """Bind a round's result to its published block.

        If the block was already delivered (reorder window 0) the result is
        restamped immediately with the chained block, its global height, and
        any per-server delivery failures; otherwise the restamp happens when
        the ordering service delivers it.
        """
        chained = self._chained_by_digest.get(signing_digest)
        if chained is not None:
            self._restamp_result(result, chained)
        else:
            self._pending_results[signing_digest] = result

    def _restamp_result(self, result, chained: Block) -> None:
        result.block = chained
        decided_at = self._decided_at_by_digest.get(chained.signing_digest())
        result.outcomes = [
            replace(outcome, block_height=chained.height, decided_at=decided_at)
            for outcome in result.outcomes
        ]
        # A server that rejected the ordered block (diverged log, bad
        # signature under fault injection) surfaces exactly like a phase-5
        # decision failure does in the classic deployment.
        result.refusals = list(result.refusals) + self._failures_by_digest.pop(
            chained.signing_digest(), []
        )

    def _deliver_ordered(self, ordered: OrderedBlock) -> None:
        """Atomically broadcast one finalised block to every server.

        Simulated-time accounting mirrors a coordinator phase: one outbound
        delay, the slowest server's measured apply compute, one inbound
        delay; the cost is charged to the originating round's ``order`` phase.
        """
        block = ordered.block
        digest = block.signing_digest()
        if ordered.global_height != self._next_delivery_height:
            raise ProtocolInvariantError(
                f"ordered stream delivered height {ordered.global_height}, "
                f"expected {self._next_delivery_height} (gap or replay in the "
                "atomic broadcast)"
            )
        self._next_delivery_height += 1
        # The delivery is the round's terminal phase on the virtual timeline:
        # it serializes on the shared "ordserv" resource (the service emits
        # one stream) and cannot start before the publishing round's
        # co-signing finished.  Assigning the start before the sends lets
        # fault hooks inside the apply handlers fire at the delivery's time.
        task = self._inflight_tasks.pop(digest, None)
        span = self._inflight_spans.pop(digest, None)
        label = f"ordserv/deliver-{ordered.global_height}"
        # A sharded sequencer stamps the block's ordering shards: its
        # delivery occupies only those lanes' timeline resources, so
        # disjoint shards interleave and a cross-shard block barriers.
        resources = tuple(
            f"{ORDSERV_RESOURCE}/s{shard}" for shard in ordered.shards
        ) or (ORDSERV_RESOURCE,)
        start = self.sim.scheduler.begin_delivery(task, label, resources=resources)
        # A scratch breakdown lets the shared helper do the accounting even
        # when no round timing is registered (blocks published directly by
        # tests); the charge is transferred to the originating round's if any.
        scratch = TimingBreakdown()
        responses = timed_broadcast(
            self.network,
            self.latency,
            ORDSERV_ID,
            list(self.config.server_ids),
            MessageType.ORDERED_BLOCK,
            {"block": block},
            scratch,
            "order",
            sim=self.sim,
        )
        _, delivered_at = self.sim.scheduler.end_delivery(
            task,
            label,
            start,
            scratch.phases["order"],
            read_items=frozenset(
                entry.item_id for txn in block.transactions for entry in txn.read_set
            ),
            write_items=frozenset(
                entry.item_id for txn in block.transactions for entry in txn.write_set
            ),
            status="committed" if block.is_commit else "aborted",
            resources=resources,
        )
        status = "committed" if block.is_commit else "aborted"
        tracer = self.sim.obs.tracer
        span_actor = (
            f"{ORDSERV_ID}/s" + "+".join(str(shard) for shard in ordered.shards)
            if ordered.shards
            else ORDSERV_ID
        )
        tracer.add_span(
            "order",
            "delivery",
            span_actor,
            start,
            delivered_at,
            parent=span,
            global_height=ordered.global_height,
        )
        # Close the round span handed over at publication: the ordered
        # delivery is the round's terminal phase, so the round's causal
        # window ends here, not at the group co-sign.
        tracer.close_span(span, delivered_at, status=status)
        self.sim.obs.metrics.counter(f"rounds.delivered_{status}")
        self._decided_at_by_digest[digest] = delivered_at
        while len(self._decided_at_by_digest) > 256:
            self._decided_at_by_digest.pop(next(iter(self._decided_at_by_digest)))
        failures = [resp for resp in responses.values() if not resp.get("ok")]
        self.delivery_failures.extend(failures)
        if failures:
            self._failures_by_digest[digest] = failures
        self._chained_by_digest[digest] = block
        timing = self._inflight_timings.pop(digest, None)
        if timing is not None:
            timing.phases["order"] = scratch.phases["order"]
            timing.network_time += scratch.network_time
            timing.compute_time += scratch.compute_time
        result = self._pending_results.pop(digest, None)
        if result is not None:
            self._restamp_result(result, block)

    def _broadcast_anchor(self, anchor: EpochAnchor) -> None:
        """Publish one sealed epoch anchor to every server.

        Servers record the anchor chain so a later audit (or an external
        verifier holding only the thin chain) can check the per-shard
        ordering without trusting the sequencer; crashed servers are
        skipped -- anchor gaps are tolerated by the handler and the
        auditor verifies against the service's full chain.
        """
        responses = self.network.broadcast(
            ORDSERV_ID,
            list(self.config.server_ids),
            MessageType.EPOCH_ANCHOR,
            {"anchor": anchor},
            skip_unreachable=True,
        )
        self.delivery_failures.extend(
            response for response in responses.values() if not response.get("ok")
        )

    def audit(self):
        """Run the full offline audit, including epoch-anchor verification.

        With the default single sequencer this is exactly the base audit;
        a sharded sequencer additionally has its anchor chain replayed
        against the reference log (DESIGN.md §13).
        """
        anchors = getattr(self.ordering, "epoch_anchors", None)
        shard_map = getattr(self.ordering, "shard_map", None)
        if not anchors or shard_map is None:
            return super().audit()
        return self.auditor().run_audit(
            self.servers, epoch_anchors=anchors, ordering_shard_map=shard_map
        )

    # -- workload-engine hooks ----------------------------------------------------------

    def _coordinators(self) -> List[GroupTFCommitCoordinator]:
        return list(self._group_coordinators.values())

    def _flush_pending(self) -> Dict:
        """Flush every group coordinator's partial batch and merge the responses.

        The merged frontier is the maximum across coordinators -- observing a
        larger committed timestamp is always safe for a retrying client.
        """
        merged: Dict[str, Dict] = {}
        frontier: Optional[Tuple[int, str]] = None
        for coordinator in self._coordinators():
            if not coordinator.available:
                # The coordinator's server is down; its queue waits for
                # recovery (clients routed here already saw failures).
                continue
            response = coordinator.flush()
            merged.update(response.get("results", {}))
            reported = response.get("latest_committed_ts")
            if reported is not None:
                reported = tuple(reported)
                if frontier is None or reported > frontier:
                    frontier = reported
        return {
            "status": "flushed",
            "results": merged,
            "latest_committed_ts": frontier,
        }

    def _finish_workload(self) -> None:
        self.ordering.flush()

    def flush(self) -> Dict:
        """Flush every coordinator and finalise the ordering service's stream."""
        response = self._flush_pending()
        self.ordering.flush()
        return response

    # -- introspection ---------------------------------------------------------------------

    @property
    def active_group_coordinators(self) -> List[ServerId]:
        """Servers that actually coordinated at least one block round."""
        return sorted(
            server_id
            for server_id, coordinator in self._group_coordinators.items()
            if coordinator.results
        )

    def groups_used(self) -> List[Tuple[ServerId, ...]]:
        """Every distinct dynamic group that produced an ordered block."""
        return sorted(
            {
                tuple(sorted(ordered.group.members))
                for ordered in self.ordering.ordered_blocks
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScaledFidesSystem(servers={len(self.servers)}, "
            f"group_coordinators={len(self._group_coordinators)}, "
            f"txns_per_block={self.config.txns_per_block}, "
            f"ordered_blocks={self.ordering.stream_length})"
        )
