"""The trusted baseline: Two-Phase Commit (Section 6.1).

The paper contrasts TFCommit with its trusted counterpart 2PC to quantify the
overhead of operating in an untrusted setting.  This implementation mirrors
the structure of :class:`~repro.core.tfcommit.TFCommitCoordinator` -- same
batching, same block-sequential execution, same timing model -- but performs
none of the cryptographic work: no Merkle roots, no collective signing, and
only two communication rounds (prepare/vote and decision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.mutations import mutation_enabled
from repro.common.timestamps import Timestamp
from repro.core.tfcommit import (
    BatchBuilder,
    BlockCommitResult,
    SimScheduledRounds,
    TimingBreakdown,
    TxnOutcome,
    drain_stale,
    flushed_response,
    stale_failure_response,
    timed_broadcast,
    validate_batch,
)
from repro.ledger.block import Block, BlockDecision, make_partial_block
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.obs.timing import Stopwatch
from repro.sim.context import SimContext
from repro.sim.scheduler import KIND_BROADCAST, KIND_COMPUTE, KIND_TERMINAL, BlockTask
from repro.txn.transaction import Transaction


class TwoPhaseCommitCoordinator(SimScheduledRounds):
    """Classic 2PC over the same servers, clients, and network as TFCommit."""

    def __init__(
        self,
        server,
        network: Network,
        server_ids: Sequence[str],
        txns_per_block: int = 1,
        latency: Optional[LatencyModel] = None,
        sim: Optional[SimContext] = None,
        view: int = 0,
    ) -> None:
        self.server = server
        self.network = network
        self.server_ids = list(server_ids)
        self.batch_builder = BatchBuilder(txns_per_block)
        self._latency = latency or network.latency_model
        self._pending: List[Tuple[Transaction, Envelope]] = []
        self._latest_committed_ts = Timestamp.zero()
        #: Coordinator view (same contract as the TFCommit coordinator's).
        self.view = view
        self._sim = sim
        self._sim_task: Optional[BlockTask] = None
        self._sim_blocks = 0
        self.results: List[BlockCommitResult] = []

    @property
    def coordinator_id(self) -> str:
        return self.server.server_id

    @property
    def available(self) -> bool:
        """False while the coordinator's own server is crashed (same
        contract as the TFCommit coordinator's)."""
        return not getattr(self.server, "crashed", False)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- client entry point -----------------------------------------------------------

    def on_end_transaction(self, envelope: Envelope) -> Dict:
        """Queue a terminated transaction; commit a block once the batch is full."""
        txn: Transaction = envelope.payload["transaction"]
        if txn.commit_ts <= self._latest_committed_ts:
            return stale_failure_response(txn, self._latest_committed_ts)
        self._pending.append((txn, envelope))
        if len(self._pending) >= self.batch_builder.txns_per_block:
            return self.flush()
        return {"status": "queued"}

    def flush(self) -> Dict:
        """Commit every pending transaction."""
        results: Dict[str, Dict] = {}
        while self._pending:
            batch = drain_stale(
                self.batch_builder, self._pending, self._latest_committed_ts, results
            )
            if not batch:
                break
            result = self.commit_batch(batch)
            for outcome in result.outcomes:
                results[outcome.txn_id] = outcome.to_wire()
        return flushed_response(results, self._latest_committed_ts)

    # -- the protocol -------------------------------------------------------------------

    def commit_batch(self, batch: Sequence[Tuple[Transaction, Envelope]]) -> BlockCommitResult:
        """One 2PC round: prepare/vote then decision."""
        transactions = [txn for txn, _ in batch]
        validate_batch(transactions)
        timing = TimingBreakdown(num_txns=len(transactions))
        self._begin_sim_block(transactions)

        assembly_watch = Stopwatch()
        block = make_partial_block(
            height=self.server.log.height,
            transactions=transactions,
            previous_hash=self.server.log.head_hash,
            view=self.view,
        )
        assembly_elapsed = assembly_watch.elapsed()

        votes = self._broadcast_phase(
            "prepare",
            MessageType.PREPARE,
            {"block": block, "client_requests": [envelope for _, envelope in batch]},
            timing,
        )
        unreachable = [resp for resp in votes.values() if resp.get("unreachable")]
        refused = [
            resp
            for resp in votes.values()
            if resp.get("ok") is False and not resp.get("unreachable")
        ]
        if (unreachable or refused) and not mutation_enabled("pr7-2pc-vote-keyerror"):
            # A cohort crashed mid-round (its synthesised response carries no
            # vote fields) or refused a stale-view proposal: fail the round
            # exactly like TFCommit's phase-1 unreachable check instead of
            # KeyError-ing on ``vote["involved"]`` in the tally below.
            timing.coordinator_time += self._effective_compute(
                "aggregate", assembly_elapsed
            )
            return self._failed_result(
                transactions, timing, block, unreachable + refused
            )

        if self._sim_task is not None:
            self._sim.scheduler.begin_phase(self._sim_task, "aggregate", kind=KIND_COMPUTE)
        coordinator_watch = Stopwatch()
        decision = BlockDecision.COMMIT
        abort_reasons: List[str] = []
        for server_id, vote in votes.items():
            if mutation_enabled("pr7-2pc-vote-keyerror"):
                # The pre-fix tally: a bare subscript that KeyErrors on the
                # synthesized response of a cohort that died mid-round.
                involved = vote["involved"]
            else:
                involved = vote.get("involved")
            if involved and vote["decision"] == BlockDecision.ABORT.value:
                decision = BlockDecision.ABORT
                if vote["reason"]:
                    abort_reasons.append(f"{server_id}: {vote['reason']}")
        final_block = block.with_decision(decision, {})
        aggregate_elapsed = self._effective_compute(
            "aggregate", assembly_elapsed + coordinator_watch.elapsed()
        )
        timing.coordinator_time += aggregate_elapsed
        timing.phases["aggregate"] = aggregate_elapsed
        if self._sim_task is not None:
            self._obs_compute_phase(
                "aggregate",
                self._sim.scheduler.end_phase(self._sim_task, "aggregate", aggregate_elapsed),
            )

        self._broadcast_phase(
            "decision", MessageType.COMMIT_DECISION, {"block": final_block}, timing,
            kind=KIND_TERMINAL,
        )

        if final_block.is_commit:
            self._latest_committed_ts = max(
                self._latest_committed_ts, final_block.max_commit_ts
            )
        status = "committed" if final_block.is_commit else "aborted"
        decided_at = self._end_sim_block(status)
        outcomes = [
            TxnOutcome(
                txn_id=txn.txn_id,
                status=status,
                block_height=final_block.height,
                reason="; ".join(abort_reasons),
                decided_at=decided_at,
            )
            for txn in transactions
        ]
        result = BlockCommitResult(
            status=status,
            block=final_block,
            outcomes=outcomes,
            timing=timing,
            abort_reasons=abort_reasons,
        )
        self.results.append(result)
        return result

    # -- helpers ---------------------------------------------------------------------------

    def _failed_result(
        self,
        transactions: Sequence[Transaction],
        timing: TimingBreakdown,
        block: Block,
        refusals: List[Dict],
    ) -> BlockCommitResult:
        """Fail the round without a decision (mirrors TFCommit's shape).

        Cohorts that saw the ``PREPARE`` are told to release their armed
        round state -- unless the coordinator itself is the crashed party, in
        which case the state is kept for the view change to collect.
        """
        self_down = any(
            resp.get("unreachable") and resp.get("server_id") == self.coordinator_id
            for resp in refusals
        )
        if not self_down:
            self.network.broadcast(
                self.coordinator_id,
                self.server_ids,
                MessageType.ROUND_FAILED,
                {"round_key": block.round_key()},
                skip_unreachable=True,
            )
        failed_at = self._end_sim_block("failed")
        outcomes = [
            TxnOutcome(
                txn_id=txn.txn_id,
                status="failed",
                reason="; ".join(
                    filter(None, (resp.get("reason", "") for resp in refusals))
                ),
                decided_at=failed_at,
            )
            for txn in transactions
        ]
        result = BlockCommitResult(
            status="failed",
            block=None,
            outcomes=outcomes,
            timing=timing,
            refusals=refusals,
        )
        self.results.append(result)
        return result

    def _broadcast_phase(
        self,
        phase: str,
        message_type: MessageType,
        payload: Dict,
        timing: TimingBreakdown,
        kind: str = KIND_BROADCAST,
    ) -> Dict[str, Dict]:
        """Send one phase's message via :func:`timed_broadcast`.

        The shared helper carries the ``default=0.0`` guards (ported from
        TFCommit in PR 1): an empty cohort list or a compute-free response
        set must cost zero, not raise ``ValueError: max() arg is an empty
        sequence``.
        """
        return timed_broadcast(
            self.network,
            self._latency,
            self.coordinator_id,
            self.server_ids,
            message_type,
            payload,
            timing,
            phase,
            sim=self._sim,
            task=self._sim_task,
            kind=kind,
            span=self._sim_span,
        )
