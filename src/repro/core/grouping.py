"""Dynamic server groups for scaled TFCommit (Section 4.6).

To avoid dragging every server into every termination, "servers are divided
into small dynamic groups.  The servers accessed by a transaction form one
group, in which one server acts as the coordinator to terminate that
transaction."  Each group runs TFCommit internally; the resulting blocks are
handed to the ordering service (:mod:`repro.core.ordserv`) which broadcasts a
single consistently ordered block stream to all servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Set

from repro.common.errors import ValidationError
from repro.storage.shard import ShardMap
from repro.txn.transaction import Transaction


def _pick_coordinator(servers: Set[str], exclude: Iterable[str]) -> str:
    """Deterministic coordinator choice: the smallest member not excluded.

    ``exclude`` names servers deposed by a view change (or currently
    crashed): they stay group *members* -- the transaction still touches
    their shards and their co-sign is still required -- but they no longer
    lead rounds.  If every member is excluded the plain minimum is returned
    so group formation itself never fails; the round will fail (and surface)
    on its own.
    """
    candidates = set(servers) - set(exclude)
    return min(candidates) if candidates else min(servers)


@dataclass(frozen=True)
class ServerGroup:
    """One dynamic group: the servers a transaction (or batch) touches."""

    members: FrozenSet[str]
    coordinator: str

    def __post_init__(self) -> None:
        if self.coordinator not in self.members:
            raise ValidationError("coordinator must be a member of its group")

    def overlaps(self, other: "ServerGroup") -> bool:
        """True iff the two groups share at least one server (Gi ∩ Gj ≠ ∅)."""
        return bool(self.members & other.members)

    def __len__(self) -> int:
        return len(self.members)

    def to_wire(self):
        return {"members": sorted(self.members), "coordinator": self.coordinator}


def group_for_transaction(
    txn: Transaction, shard_map: ShardMap, exclude: Iterable[str] = ()
) -> ServerGroup:
    """Form the dynamic group of a transaction: the servers storing its items.

    The group's coordinator is chosen deterministically (smallest server id
    not in ``exclude``) so that all participants agree on it without extra
    coordination; ``exclude`` carries servers deposed by a view change.
    """
    servers = shard_map.servers_for(txn.items_accessed())
    if not servers:
        raise ValidationError(f"transaction {txn.txn_id} accesses no known items")
    return ServerGroup(
        members=frozenset(servers), coordinator=_pick_coordinator(servers, exclude)
    )


def group_for_batch(
    transactions: Sequence[Transaction], shard_map: ShardMap, exclude: Iterable[str] = ()
) -> ServerGroup:
    """Form the group covering a whole batch of transactions."""
    servers: Set[str] = set()
    for txn in transactions:
        servers.update(shard_map.servers_for(txn.items_accessed()))
    if not servers:
        raise ValidationError("batch accesses no known items")
    return ServerGroup(
        members=frozenset(servers), coordinator=_pick_coordinator(servers, exclude)
    )


def dependency_between(
    earlier: Sequence[Transaction], later: Sequence[Transaction]
) -> bool:
    """True iff any transaction in ``later`` depends on one in ``earlier``.

    Two blocks from overlapping groups may carry a data dependency (e.g. Tj
    wrote an item after Ti read it); the ordering service must preserve the
    order of such blocks.  Disjoint item sets mean the blocks can be ordered
    arbitrarily.
    """
    earlier_items: Set[str] = set()
    earlier_writes: Set[str] = set()
    for txn in earlier:
        earlier_items.update(txn.items_accessed())
        earlier_writes.update(txn.items_written())
    for txn in later:
        accessed = txn.items_accessed()
        if accessed & earlier_writes:
            return True
        if txn.items_written() & earlier_items:
            return True
    return False
