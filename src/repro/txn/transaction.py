"""Transactions and their read / write sets.

These structures carry exactly the per-transaction information that ends up
inside a block (Table 1 of the paper):

* the commit timestamp that identifies the transaction,
* the read set: ``<id : value, rts, wts>`` for every item read,
* the write set: ``<id : new_val, old_val, rts, wts>`` for every item
  written (``old_val`` is only populated for blind writes -- items written
  without being read first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set

from repro.common.timestamps import Timestamp
from repro.common.types import ClientId, ItemId, TxnId, Value


@dataclass(frozen=True)
class ReadSetEntry:
    """One read-set entry: the value observed and its timestamps at read time."""

    item_id: ItemId
    value: Value
    rts: Timestamp
    wts: Timestamp

    def to_wire(self):
        return {
            "item_id": self.item_id,
            "value": self.value,
            "rts": self.rts.as_tuple(),
            "wts": self.wts.as_tuple(),
        }


@dataclass(frozen=True)
class WriteSetEntry:
    """One write-set entry: the new value and, for blind writes, the old value."""

    item_id: ItemId
    new_value: Value
    old_value: Value = None
    rts: Timestamp = Timestamp.zero()
    wts: Timestamp = Timestamp.zero()
    blind: bool = False

    def to_wire(self):
        return {
            "item_id": self.item_id,
            "new_value": self.new_value,
            "old_value": self.old_value,
            "rts": self.rts.as_tuple(),
            "wts": self.wts.as_tuple(),
            "blind": self.blind,
        }


@dataclass(frozen=True)
class Transaction:
    """A terminated (ready-to-commit) transaction.

    This is the object a client sends to the coordinator in its
    ``end_transaction`` request and the unit that TFCommit batches into
    blocks.
    """

    txn_id: TxnId
    client_id: ClientId
    commit_ts: Timestamp
    read_set: Sequence[ReadSetEntry] = field(default_factory=tuple)
    write_set: Sequence[WriteSetEntry] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "read_set", tuple(self.read_set))
        object.__setattr__(self, "write_set", tuple(self.write_set))

    # -- derived views -------------------------------------------------------

    def items_read(self) -> Set[ItemId]:
        return {entry.item_id for entry in self.read_set}

    def items_written(self) -> Set[ItemId]:
        return {entry.item_id for entry in self.write_set}

    def items_accessed(self) -> Set[ItemId]:
        return self.items_read() | self.items_written()

    def writes_as_dict(self) -> Dict[ItemId, Value]:
        """``item_id -> new_value`` for every written item."""
        return {entry.item_id: entry.new_value for entry in self.write_set}

    def read_entry(self, item_id: ItemId) -> Optional[ReadSetEntry]:
        for entry in self.read_set:
            if entry.item_id == item_id:
                return entry
        return None

    def write_entry(self, item_id: ItemId) -> Optional[WriteSetEntry]:
        for entry in self.write_set:
            if entry.item_id == item_id:
                return entry
        return None

    def is_read_only(self) -> bool:
        return not self.write_set

    def conflicts_with(self, other: "Transaction") -> bool:
        """True if the two transactions access a common item and at least one writes it.

        Used by the coordinator's batch builder: only *non-conflicting*
        transactions may share a block (Section 4.6).
        """
        mine_w = self.items_written()
        theirs_w = other.items_written()
        if mine_w & theirs_w:
            return True
        if mine_w & other.items_read():
            return True
        if theirs_w & self.items_read():
            return True
        return False

    def to_wire(self):
        return {
            "txn_id": self.txn_id,
            "client_id": self.client_id,
            "commit_ts": self.commit_ts.as_tuple(),
            "read_set": [entry.to_wire() for entry in self.read_set],
            "write_set": [entry.to_wire() for entry in self.write_set],
        }

    def encoded(self) -> bytes:
        """Canonical byte encoding of this transaction, cached per instance.

        Transactions are immutable once terminated, and the same transaction
        object is hashed repeatedly while its block moves through the
        TFCommit phases; caching the encoding keeps block hashing linear in
        the number of *new* transactions.  The encoding is a flat,
        length-prefixed field list (cheaper than the generic nested-dict
        encoding of :meth:`to_wire` while remaining unambiguous).
        """
        cached = getattr(self, "_encoded_cache", None)
        if cached is None:
            from repro.common.encoding import canonical_encode

            parts = [
                self.txn_id,
                self.client_id,
                self.commit_ts.counter,
                self.commit_ts.client_id,
                len(self.read_set),
                len(self.write_set),
            ]
            for entry in self.read_set:
                parts.extend(
                    (
                        entry.item_id,
                        entry.value,
                        entry.rts.counter,
                        entry.rts.client_id,
                        entry.wts.counter,
                        entry.wts.client_id,
                    )
                )
            for entry in self.write_set:
                parts.extend(
                    (
                        entry.item_id,
                        entry.new_value,
                        entry.old_value,
                        entry.blind,
                        entry.rts.counter,
                        entry.rts.client_id,
                        entry.wts.counter,
                        entry.wts.client_id,
                    )
                )
            cached = canonical_encode(parts)
            object.__setattr__(self, "_encoded_cache", cached)
        return cached


def partition_by_server(txn: Transaction, shard_map) -> Dict[str, Dict[str, list]]:
    """Split a transaction's read/write sets by owning server.

    Returns ``{server_id: {"reads": [...], "writes": [...]}}`` -- the shape
    cohorts need when validating and applying their slice of a transaction.
    """
    per_server: Dict[str, Dict[str, list]] = {}
    for entry in txn.read_set:
        server = shard_map.server_for(entry.item_id)
        per_server.setdefault(server, {"reads": [], "writes": []})["reads"].append(entry)
    for entry in txn.write_set:
        server = shard_map.server_for(entry.item_id)
        per_server.setdefault(server, {"reads": [], "writes": []})["writes"].append(entry)
    return per_server
