"""Read and write operations issued by clients.

Clients interact with the data "via transactions consisting of read and write
operations" (Section 3.1).  Operations are what the workload generator
produces and what a :class:`~repro.client.session.TransactionSession` turns
into per-server read/write requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.common.types import ItemId, Value


@dataclass(frozen=True)
class ReadOp:
    """Read the current value of ``item_id``."""

    item_id: ItemId

    @property
    def is_read(self) -> bool:
        return True

    @property
    def is_write(self) -> bool:
        return False

    def to_wire(self):
        return {"op": "read", "item_id": self.item_id}


@dataclass(frozen=True)
class WriteOp:
    """Write ``value`` to ``item_id``."""

    item_id: ItemId
    value: Value

    @property
    def is_read(self) -> bool:
        return False

    @property
    def is_write(self) -> bool:
        return True

    def to_wire(self):
        return {"op": "write", "item_id": self.item_id, "value": self.value}


Operation = Union[ReadOp, WriteOp]
