"""Timestamp-ordering optimistic concurrency control.

Fides provides serializable executions: "at commit time, a server checks if
the data accessed in the terminating transaction has been updated since they
were read.  If yes, the server chooses to abort" (Section 4.3.1).  The same
timestamp rules drive the auditor's isolation check (Lemma 3), which looks
for three classes of conflicting access inconsistent with timestamp order:

* **RW-conflict** -- a transaction with a smaller timestamp read an item that
  already carries a larger write timestamp;
* **WW-conflict** -- a transaction with a smaller timestamp wrote an item
  already written at a larger timestamp;
* **WR-conflict** -- a transaction with a smaller timestamp wrote an item
  after it was read by a transaction with a larger timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence

from repro.common.timestamps import Timestamp
from repro.storage.datastore import DataStore
from repro.txn.transaction import Transaction


class ConflictKind(Enum):
    """The three timestamp-order conflicts of Lemma 3."""

    READ_WRITE = "rw-conflict"
    WRITE_WRITE = "ww-conflict"
    WRITE_READ = "wr-conflict"
    STALE_READ = "stale-read"


@dataclass(frozen=True)
class Conflict:
    """One detected conflict, naming the item and the timestamps involved."""

    kind: ConflictKind
    item_id: str
    txn_ts: Timestamp
    existing_ts: Timestamp

    def describe(self) -> str:
        return (
            f"{self.kind.value} on {self.item_id}: transaction at {self.txn_ts} vs "
            f"existing timestamp {self.existing_ts}"
        )


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of validating one transaction against one server's datastore."""

    commit: bool
    conflicts: Sequence[Conflict] = field(default_factory=tuple)

    @property
    def abort(self) -> bool:
        return not self.commit

    def reason(self) -> str:
        if self.commit:
            return "ok"
        return "; ".join(conflict.describe() for conflict in self.conflicts)


class OccValidator:
    """Commit-time validation of a transaction against local shard state.

    The validator only inspects items stored locally (entries whose item ids
    are present in the datastore); a cohort is only responsible for its own
    shard.
    """

    def __init__(self, store: DataStore) -> None:
        self._store = store

    def validate(self, txn: Transaction) -> ValidationOutcome:
        """Apply the timestamp-ordering checks of Section 4.3.1.

        A transaction commits locally iff, for every locally stored item it
        accessed, the item has not been read or written by a newer
        transaction since the values/timestamps in the request were observed.
        """
        conflicts: List[Conflict] = []
        commit_ts = txn.commit_ts
        for entry in txn.read_set:
            if entry.item_id not in self._store:
                continue
            current = self._store.read(entry.item_id)
            # The commit timestamp must exceed whatever is already committed.
            if commit_ts <= current.wts:
                conflicts.append(
                    Conflict(ConflictKind.READ_WRITE, entry.item_id, commit_ts, current.wts)
                )
            # The value read must still be the latest committed version,
            # otherwise the transaction read data that has since changed.
            elif current.wts != entry.wts:
                conflicts.append(
                    Conflict(ConflictKind.STALE_READ, entry.item_id, commit_ts, current.wts)
                )
        for entry in txn.write_set:
            if entry.item_id not in self._store:
                continue
            current = self._store.read(entry.item_id)
            if commit_ts <= current.wts:
                conflicts.append(
                    Conflict(ConflictKind.WRITE_WRITE, entry.item_id, commit_ts, current.wts)
                )
            if commit_ts <= current.rts:
                conflicts.append(
                    Conflict(ConflictKind.WRITE_READ, entry.item_id, commit_ts, current.rts)
                )
        return ValidationOutcome(commit=not conflicts, conflicts=tuple(conflicts))


def classify_conflicts(txn: Transaction) -> List[Conflict]:
    """Classify conflicts visible purely from a transaction's own read/write sets.

    The auditor applies this to *logged* transactions (it has no datastore):
    the timestamps recorded in the read/write sets must all be strictly
    smaller than the transaction's commit timestamp, otherwise the server
    that committed it violated timestamp ordering (Lemma 3).
    """
    conflicts: List[Conflict] = []
    commit_ts = txn.commit_ts
    for entry in txn.read_set:
        if entry.wts >= commit_ts:
            conflicts.append(Conflict(ConflictKind.READ_WRITE, entry.item_id, commit_ts, entry.wts))
    for entry in txn.write_set:
        if entry.wts >= commit_ts:
            conflicts.append(
                Conflict(ConflictKind.WRITE_WRITE, entry.item_id, commit_ts, entry.wts)
            )
        if entry.rts >= commit_ts:
            conflicts.append(
                Conflict(ConflictKind.WRITE_READ, entry.item_id, commit_ts, entry.rts)
            )
    return conflicts
