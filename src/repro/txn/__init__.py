"""Transactions: operations, read/write sets, and concurrency control.

The structures here mirror Table 1 of the paper: a transaction is identified
by its client-assigned commit timestamp and carries a read set of
``<id : value, rts, wts>`` entries and a write set of
``<id : new_val, old_val, rts, wts>`` entries.
"""

from repro.txn.operations import Operation, ReadOp, WriteOp
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry
from repro.txn.occ import ConflictKind, OccValidator, ValidationOutcome

__all__ = [
    "ConflictKind",
    "OccValidator",
    "Operation",
    "ReadOp",
    "ReadSetEntry",
    "Transaction",
    "ValidationOutcome",
    "WriteOp",
    "WriteSetEntry",
]
