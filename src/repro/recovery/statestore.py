"""The durable state layer behind crash recovery.

A :class:`StateStore` persists, for one server, everything its *volatile*
process state can be rebuilt from:

* a **snapshot** record -- the datastore's full version chains plus the
  latest collectively signed checkpoint (``None`` at genesis) and the height
  of the next block the snapshot expects;
* one **block** record per log block applied since the snapshot, together
  with the shard's Merkle root *after* applying it (recovery replays the
  blocks and refuses to proceed if the roots do not line up -- a corrupted
  WAL must not silently resurrect a diverged server).

Two implementations share all logic and differ only in where the encoded
records live: :class:`MemoryStateStore` keeps them in a list (the "durable
RAM disk" used by tests and the in-memory benchmark arm), and
:class:`FileStateStore` appends them to a write-ahead log file with CRC-framed
records and atomic snapshot compaction (crashes mid-append leave a truncated
tail that loading simply ignores).

Both stores hold **encoded bytes**, never live objects: state only survives a
crash by round-tripping through :func:`~repro.common.encoding.canonical_encode`,
so a recovered server provably rebuilt itself from serialised state rather
than from aliased Python references.

Installing a checkpoint compacts the store: one fresh snapshot (carrying the
checkpoint and the current datastore) replaces the initial snapshot and every
block record the checkpoint covers, which is exactly the Section 3.3 storage
bound -- WAL size is O(blocks since last checkpoint), not O(history).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.encoding import canonical_decode, canonical_encode
from repro.common.errors import RecoveryError
from repro.ledger.block import Block
from repro.ledger.checkpoint import Checkpoint
from repro.recovery.wire import block_from_wire, checkpoint_from_wire


@dataclass
class PersistedState:
    """Everything :meth:`StateStore.load` recovers.

    ``blocks`` carries ``(block, shard_root_after_apply)`` pairs in append
    order; blocks with ``height >= snapshot_next_height`` must be replayed
    into the restored datastore, earlier ones (a retained log suffix already
    reflected in the snapshot) only restore log content.
    """

    server_id: str
    datastore_state: Dict
    checkpoint: Optional[Checkpoint]
    snapshot_next_height: int
    blocks: List[Tuple[Block, bytes]] = field(default_factory=list)

    @property
    def log_base_height(self) -> int:
        """Truncation boundary of the restored log (0 without a checkpoint)."""
        return self.checkpoint.height + 1 if self.checkpoint is not None else 0


class StateStore:
    """Base class: record encoding/decoding over an abstract byte journal."""

    # -- primitive journal operations (implemented by subclasses) --------------

    def _append(self, payload: bytes) -> None:
        raise NotImplementedError

    def _replace(self, payloads: List[bytes]) -> None:
        raise NotImplementedError

    def _iter_payloads(self) -> Iterable[bytes]:
        raise NotImplementedError

    def size_bytes(self) -> int:
        raise NotImplementedError

    # -- recording -------------------------------------------------------------

    @staticmethod
    def _snapshot_record(
        server_id: str,
        datastore_state: Dict,
        checkpoint: Optional[Checkpoint],
        next_height: int,
    ) -> Dict:
        return {
            "kind": "snapshot",
            "server_id": server_id,
            "next_height": next_height,
            "datastore": datastore_state,
            "checkpoint": checkpoint.to_wire() if checkpoint is not None else None,
        }

    def initialize(self, server_id: str, datastore_state: Dict) -> None:
        """Record the genesis snapshot; a no-op on a store that already has state.

        The no-op path is what lets a restarted process point a fresh server
        at an existing WAL file and recover from it instead of clobbering it.
        """
        if self.is_initialized():
            return
        self._append(
            canonical_encode(
                self._snapshot_record(server_id, datastore_state, None, 0)
            )
        )

    def is_initialized(self) -> bool:
        for _ in self._iter_payloads():
            return True
        return False

    def record_block(self, block: Block, shard_root: bytes) -> None:
        """Persist one applied block and the shard root it produced.

        The block is passed to the encoder as the object (not pre-flattened
        with ``to_wire()``) so its cached canonical encoding is reused when
        many servers persist the same delivered block.
        """
        self._append(
            canonical_encode({"kind": "block", "block": block, "shard_root": shard_root})
        )

    def install_checkpoint(
        self,
        checkpoint: Checkpoint,
        datastore_state: Dict,
        next_height: int,
        server_id: str,
    ) -> None:
        """Compact the journal under ``checkpoint``.

        Writes a fresh snapshot (checkpoint + current datastore) and retains
        only block records the checkpoint does *not* cover, atomically
        replacing the journal contents.
        """
        retained: List[bytes] = []
        for record in self._iter_records():
            if record["kind"] != "block":
                continue
            if int(record["block"]["body"]["height"]) > checkpoint.height:
                retained.append(canonical_encode(record))
        snapshot = canonical_encode(
            self._snapshot_record(server_id, datastore_state, checkpoint, next_height)
        )
        self._replace([snapshot] + retained)

    # -- loading ---------------------------------------------------------------

    def _iter_records(self) -> Iterable[Dict]:
        for payload in self._iter_payloads():
            try:
                record = canonical_decode(payload)
            except ValueError as exc:
                raise RecoveryError(f"corrupt state-store record: {exc}") from None
            if not isinstance(record, dict) or "kind" not in record:
                raise RecoveryError("state-store record is not a tagged dict")
            yield record

    def load(self) -> PersistedState:
        """Decode the journal into a :class:`PersistedState`.

        The *last* snapshot record wins (compaction rewrites the journal, so
        normally there is exactly one); block records after it are returned
        in journal order.
        """
        state: Optional[PersistedState] = None
        for record in self._iter_records():
            if record["kind"] == "snapshot":
                checkpoint = (
                    checkpoint_from_wire(record["checkpoint"])
                    if record["checkpoint"] is not None
                    else None
                )
                state = PersistedState(
                    server_id=record["server_id"],
                    datastore_state=record["datastore"],
                    checkpoint=checkpoint,
                    snapshot_next_height=int(record["next_height"]),
                )
            elif record["kind"] == "block":
                if state is None:
                    raise RecoveryError("state store has block records before any snapshot")
                state.blocks.append(
                    (block_from_wire(record["block"]), record["shard_root"])
                )
            else:
                raise RecoveryError(f"unknown state-store record kind {record['kind']!r}")
        if state is None:
            raise RecoveryError("state store holds no snapshot; nothing to recover from")
        return state

    def close(self) -> None:  # pragma: no cover - only FileStateStore needs it
        pass


class MemoryStateStore(StateStore):
    """Journal in a list of encoded records (simulated durable storage)."""

    def __init__(self) -> None:
        self._payloads: List[bytes] = []

    def _append(self, payload: bytes) -> None:
        self._payloads.append(payload)

    def _replace(self, payloads: List[bytes]) -> None:
        self._payloads = list(payloads)

    def _iter_payloads(self) -> Iterable[bytes]:
        return iter(list(self._payloads))

    def size_bytes(self) -> int:
        return sum(len(p) for p in self._payloads)


#: Frame header: payload length + CRC32 of the payload.
_FRAME_HEADER = struct.Struct(">II")


class FileStateStore(StateStore):
    """Append-only write-ahead log file with CRC framing and atomic compaction.

    Each record is framed as ``length || crc32 || payload``.  Loading stops
    silently at the first truncated or CRC-corrupt frame: that is the frame a
    crash interrupted, and everything before it is intact by construction.
    Compaction writes the replacement journal to ``<path>.tmp`` and
    ``os.replace``\\ s it into place, so a crash during compaction leaves
    either the old journal or the new one, never a mix.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "ab")

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def _append(self, payload: bytes) -> None:
        self._handle.write(self._frame(payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _replace(self, payloads: List[bytes]) -> None:
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as tmp:
            for payload in payloads:
                tmp.write(self._frame(payload))
            tmp.flush()
            os.fsync(tmp.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        self._handle = open(self.path, "ab")

    def _iter_payloads(self) -> Iterable[bytes]:
        self._handle.flush()
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _FRAME_HEADER.size <= len(data):
            length, crc = _FRAME_HEADER.unpack_from(data, offset)
            start = offset + _FRAME_HEADER.size
            end = start + length
            if end > len(data):
                break  # torn tail: the frame a crash interrupted
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            yield payload
            offset = end

    def size_bytes(self) -> int:
        self._handle.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        self._handle.close()
