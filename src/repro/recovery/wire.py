"""Decoding untrusted wire/WAL structures back into domain objects.

The recovery subsystem is the one place where blocks and checkpoints cross a
*byte* boundary: the write-ahead log persists them across a crash, and the
catch-up protocol ships them from peers that may lie.  Every ``to_wire()``
producer in the library therefore gets its inverse here, in one module, so
the trust boundary is explicit: anything built by these functions came from
bytes an attacker could have chosen and **must** still pass hash-chain,
co-sign, and root-replay verification before it is believed (see
:mod:`repro.recovery.manager`).

Decoders are strict -- missing fields, wrong types, or malformed nesting
raise :class:`~repro.common.errors.ValidationError` -- because a garbled
record must never half-materialise into a plausible-looking block.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CollectiveSignature
from repro.ledger.block import Block, BlockDecision
from repro.ledger.checkpoint import Checkpoint
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry


def _fail(what: str, exc: Exception) -> ValidationError:
    return ValidationError(f"malformed wire encoding of {what}: {exc}")


def timestamp_from_wire(pair) -> Timestamp:
    """Inverse of :meth:`Timestamp.as_tuple` (tuples arrive as lists)."""
    try:
        counter, client_id = pair
        return Timestamp(int(counter), str(client_id))
    except (TypeError, ValueError) as exc:
        raise _fail("timestamp", exc) from None


def read_entry_from_wire(data: Mapping) -> ReadSetEntry:
    try:
        return ReadSetEntry(
            item_id=data["item_id"],
            value=data["value"],
            rts=timestamp_from_wire(data["rts"]),
            wts=timestamp_from_wire(data["wts"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("read-set entry", exc) from None


def write_entry_from_wire(data: Mapping) -> WriteSetEntry:
    try:
        return WriteSetEntry(
            item_id=data["item_id"],
            new_value=data["new_value"],
            old_value=data["old_value"],
            rts=timestamp_from_wire(data["rts"]),
            wts=timestamp_from_wire(data["wts"]),
            blind=bool(data["blind"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("write-set entry", exc) from None


def transaction_from_wire(data: Mapping) -> Transaction:
    try:
        return Transaction(
            txn_id=data["txn_id"],
            client_id=data["client_id"],
            commit_ts=timestamp_from_wire(data["commit_ts"]),
            read_set=tuple(read_entry_from_wire(entry) for entry in data["read_set"]),
            write_set=tuple(write_entry_from_wire(entry) for entry in data["write_set"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("transaction", exc) from None


def cosign_from_wire(data: Optional[Mapping]) -> Optional[CollectiveSignature]:
    if data is None:
        return None
    try:
        return CollectiveSignature(
            challenge=int(data["challenge"]),
            response=int(data["response"]),
            signer_ids=tuple(str(signer) for signer in data["signers"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("collective signature", exc) from None


def block_from_wire(data: Mapping) -> Block:
    """Inverse of :meth:`Block.to_wire`."""
    try:
        body = data["body"]
        group = body["group"]
        roots = body["roots"]
        if not isinstance(roots, Mapping) or not all(
            isinstance(root, bytes) for root in roots.values()
        ):
            raise ValidationError("block roots must map server ids to bytes")
        if not isinstance(body["previous_hash"], bytes):
            raise ValidationError("block previous_hash must be bytes")
        return Block(
            height=int(body["height"]),
            transactions=tuple(
                transaction_from_wire(txn) for txn in body["transactions"]
            ),
            roots=dict(roots),
            decision=BlockDecision(body["decision"]),
            previous_hash=body["previous_hash"],
            cosign=cosign_from_wire(data["cosign"]),
            group=tuple(group) if group is not None else None,
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("block", exc) from None


def checkpoint_from_wire(data: Mapping) -> Checkpoint:
    """Inverse of :meth:`Checkpoint.to_wire`."""
    try:
        if not isinstance(data["head_hash"], bytes):
            raise ValidationError("checkpoint head_hash must be bytes")
        return Checkpoint(
            height=int(data["height"]),
            head_hash=data["head_hash"],
            shard_roots=dict(data["shard_roots"]),
            latest_commit_ts=timestamp_from_wire(data["latest_commit_ts"]),
            transactions_covered=int(data["transactions_covered"]),
            cosign=cosign_from_wire(data["cosign"]),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("checkpoint", exc) from None
