"""Decoding untrusted wire/WAL structures back into domain objects.

The recovery subsystem is the one place where blocks and checkpoints cross a
*byte* boundary: the write-ahead log persists them across a crash, and the
catch-up protocol ships them from peers that may lie.  Every ``to_wire()``
producer in the library therefore gets its inverse here, in one module, so
the trust boundary is explicit: anything built by these functions came from
bytes an attacker could have chosen and **must** still pass hash-chain,
co-sign, and root-replay verification before it is believed (see
:mod:`repro.recovery.manager`).

Decoders are strict -- missing fields, wrong types, or malformed nesting
raise :class:`~repro.common.errors.ValidationError` -- because a garbled
record must never half-materialise into a plausible-looking block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CollectiveSignature
from repro.crypto.merkle import VerificationObject
from repro.ledger.anchor import EpochAnchor
from repro.ledger.block import Block, BlockDecision
from repro.ledger.checkpoint import Checkpoint
from repro.storage.datastore import ReadResult
from repro.storage.record import RecordVersion
from repro.txn.operations import ReadOp, WriteOp
from repro.txn.transaction import ReadSetEntry, Transaction, WriteSetEntry

if TYPE_CHECKING:  # pragma: no cover - type-only; see the deferred imports below
    from repro.core.grouping import ServerGroup
    from repro.core.tfcommit import TxnOutcome
    from repro.net.message import Envelope
    from repro.server.commitment import VoteResult


def _fail(what: str, exc: Exception) -> ValidationError:
    return ValidationError(f"malformed wire encoding of {what}: {exc}")


def timestamp_from_wire(pair) -> Timestamp:
    """Inverse of :meth:`Timestamp.as_tuple` (tuples arrive as lists)."""
    try:
        counter, client_id = pair
        return Timestamp(int(counter), str(client_id))
    except (TypeError, ValueError) as exc:
        raise _fail("timestamp", exc) from None


def read_entry_from_wire(data: Mapping) -> ReadSetEntry:
    try:
        return ReadSetEntry(
            item_id=data["item_id"],
            value=data["value"],
            rts=timestamp_from_wire(data["rts"]),
            wts=timestamp_from_wire(data["wts"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("read-set entry", exc) from None


def write_entry_from_wire(data: Mapping) -> WriteSetEntry:
    try:
        return WriteSetEntry(
            item_id=data["item_id"],
            new_value=data["new_value"],
            old_value=data["old_value"],
            rts=timestamp_from_wire(data["rts"]),
            wts=timestamp_from_wire(data["wts"]),
            blind=bool(data["blind"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("write-set entry", exc) from None


def transaction_from_wire(data: Mapping) -> Transaction:
    try:
        return Transaction(
            txn_id=data["txn_id"],
            client_id=data["client_id"],
            commit_ts=timestamp_from_wire(data["commit_ts"]),
            read_set=tuple(read_entry_from_wire(entry) for entry in data["read_set"]),
            write_set=tuple(write_entry_from_wire(entry) for entry in data["write_set"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("transaction", exc) from None


def cosign_from_wire(data: Optional[Mapping]) -> Optional[CollectiveSignature]:
    if data is None:
        return None
    try:
        return CollectiveSignature(
            challenge=int(data["challenge"]),
            response=int(data["response"]),
            signer_ids=tuple(str(signer) for signer in data["signers"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("collective signature", exc) from None


def block_from_wire(data: Mapping) -> Block:
    """Inverse of :meth:`Block.to_wire`."""
    try:
        body = data["body"]
        group = body["group"]
        roots = body["roots"]
        if not isinstance(roots, Mapping) or not all(
            isinstance(root, bytes) for root in roots.values()
        ):
            raise ValidationError("block roots must map server ids to bytes")
        if not isinstance(body["previous_hash"], bytes):
            raise ValidationError("block previous_hash must be bytes")
        return Block(
            height=int(body["height"]),
            transactions=tuple(
                transaction_from_wire(txn) for txn in body["transactions"]
            ),
            roots=dict(roots),
            decision=BlockDecision(body["decision"]),
            previous_hash=body["previous_hash"],
            cosign=cosign_from_wire(data["cosign"]),
            group=tuple(group) if group is not None else None,
            view=int(body["view"]),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("block", exc) from None


def checkpoint_from_wire(data: Mapping) -> Checkpoint:
    """Inverse of :meth:`Checkpoint.to_wire`."""
    try:
        if not isinstance(data["head_hash"], bytes):
            raise ValidationError("checkpoint head_hash must be bytes")
        return Checkpoint(
            height=int(data["height"]),
            head_hash=data["head_hash"],
            shard_roots=dict(data["shard_roots"]),
            latest_commit_ts=timestamp_from_wire(data["latest_commit_ts"]),
            transactions_covered=int(data["transactions_covered"]),
            cosign=cosign_from_wire(data["cosign"]),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("checkpoint", exc) from None


def envelope_from_wire(data: Mapping) -> "Envelope":
    """Inverse of :meth:`Envelope.to_wire`.

    The payload is kept as the plain wire data it arrived as; nested domain
    objects inside payloads are decoded by whoever consumes the message, at
    which point they go through their own strict decoder above.
    """
    # Deferred: this module is imported during recovery.manager's own
    # initialization, and repro.net transitively reaches back into it.
    from repro.net.message import Envelope, MessageType

    try:
        content = data["content"]
        signature = data["signature"]
        if signature is not None and not isinstance(signature, bytes):
            raise ValidationError("envelope signature must be bytes or None")
        return Envelope(
            sender=str(content["sender"]),
            recipient=str(content["recipient"]),
            message_type=MessageType(content["type"]),
            payload=content["payload"],
            signature=signature,
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("envelope", exc) from None


def operation_from_wire(data: Mapping) -> Union[ReadOp, WriteOp]:
    """Inverse of ``ReadOp.to_wire`` / ``WriteOp.to_wire`` (tag dispatch)."""
    try:
        op = data["op"]
        if op == "read":
            return ReadOp(item_id=data["item_id"])
        if op == "write":
            return WriteOp(item_id=data["item_id"], value=data["value"])
        raise ValidationError(f"unknown operation tag {op!r}")
    except ValidationError:
        raise
    except (KeyError, TypeError) as exc:
        raise _fail("operation", exc) from None


def vote_result_from_wire(data: Mapping) -> "VoteResult":
    """Inverse of :meth:`VoteResult.to_wire`."""
    # Deferred: repro.server imports recovery.manager, which imports us.
    from repro.server.commitment import VoteResult

    try:
        root = data["root"]
        if root is not None and not isinstance(root, bytes):
            raise ValidationError("vote result root must be bytes or None")
        if not isinstance(data["commitment"], bytes):
            raise ValidationError("vote result commitment must be bytes")
        return VoteResult(
            server_id=str(data["server_id"]),
            involved=bool(data["involved"]),
            decision=str(data["decision"]),
            commitment=data["commitment"],
            root=root,
            compute_time=float(data["compute_time"]),
            mht_time=float(data["mht_time"]),
            mht_hashes=int(data["mht_hashes"]),
            abort_reason=str(data["abort_reason"]),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("vote result", exc) from None


def verification_object_from_wire(data: Mapping) -> VerificationObject:
    """Inverse of :meth:`VerificationObject.to_wire`."""
    try:
        siblings = []
        for entry in data["siblings"]:
            sibling, is_left = entry
            if not isinstance(sibling, bytes):
                raise ValidationError("verification object siblings must be bytes")
            siblings.append((sibling, bool(is_left)))
        return VerificationObject(
            item_id=data["item_id"],
            leaf_index=int(data["leaf_index"]),
            siblings=tuple(siblings),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("verification object", exc) from None


def record_version_from_wire(data: Mapping) -> RecordVersion:
    """Inverse of :meth:`RecordVersion.to_wire`."""
    try:
        return RecordVersion(
            value=data["value"],
            wts=timestamp_from_wire(data["wts"]),
            rts=timestamp_from_wire(data["rts"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("record version", exc) from None


def read_result_from_wire(data: Mapping) -> ReadResult:
    """Inverse of :meth:`ReadResult.to_wire`."""
    try:
        return ReadResult(
            item_id=data["item_id"],
            value=data["value"],
            rts=timestamp_from_wire(data["rts"]),
            wts=timestamp_from_wire(data["wts"]),
        )
    except (KeyError, TypeError) as exc:
        raise _fail("read result", exc) from None


def epoch_anchor_from_wire(data: Mapping) -> EpochAnchor:
    """Inverse of :meth:`EpochAnchor.to_wire`."""
    try:
        heads = data["shard_heads"]
        if not all(isinstance(head, bytes) for head in heads):
            raise ValidationError("anchor shard_heads must be bytes")
        if not isinstance(data["previous"], bytes):
            raise ValidationError("anchor previous must be bytes")
        return EpochAnchor(
            epoch=int(data["epoch"]),
            start_height=int(data["start_height"]),
            end_height=int(data["end_height"]),
            shard_heights=tuple(int(height) for height in data["shard_heights"]),
            shard_heads=tuple(heads),
            previous=data["previous"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("epoch anchor", exc) from None


def server_group_from_wire(data: Mapping) -> "ServerGroup":
    """Inverse of :meth:`ServerGroup.to_wire`."""
    # Deferred: repro.core imports recovery.manager, which imports us.
    from repro.core.grouping import ServerGroup

    try:
        return ServerGroup(
            members=frozenset(str(member) for member in data["members"]),
            coordinator=str(data["coordinator"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("server group", exc) from None


def frontier_certificate_from_wire(data: Mapping) -> "FrontierCertificate":
    """Inverse of :meth:`FrontierCertificate.to_wire`.

    Decoding is only the first half of believing a certificate; the head
    block it carries stays in wire form here and is verified (decode,
    co-sign, hash match) by :func:`repro.core.viewchange.verify_certificate`.
    """
    # Deferred: repro.core imports recovery.manager, which imports us.
    from repro.core.viewchange import FrontierCertificate

    try:
        if not isinstance(data["head_hash"], bytes):
            raise ValidationError("frontier certificate head_hash must be bytes")
        head = data["head"]
        if head is not None and not isinstance(head, Mapping):
            raise ValidationError("frontier certificate head must be a mapping or None")
        return FrontierCertificate(
            server_id=str(data["server_id"]),
            view=int(data["view"]),
            height=int(data["height"]),
            head_hash=data["head_hash"],
            head=dict(head) if head is not None else None,
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("frontier certificate", exc) from None


def txn_outcome_from_wire(data: Mapping) -> "TxnOutcome":
    """Inverse of :meth:`TxnOutcome.to_wire`.

    The wire form carries two advisory extras (``block_digest``, ``cosign``)
    that are not outcome state; they are verified by the client layer and
    intentionally dropped here.
    """
    # Deferred: repro.core imports recovery.manager, which imports us.
    from repro.core.tfcommit import TxnOutcome

    try:
        block_height = data["block_height"]
        decided_at = data["decided_at"]
        return TxnOutcome(
            txn_id=str(data["txn_id"]),
            status=str(data["status"]),
            block_height=int(block_height) if block_height is not None else None,
            reason=str(data["reason"]),
            decided_at=float(decided_at) if decided_at is not None else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("transaction outcome", exc) from None


def histogram_from_wire(data: Mapping) -> "Histogram":
    """Inverse of :meth:`repro.obs.metrics.Histogram.to_wire`.

    ``mean`` is derived state and deliberately recomputed, not decoded.
    """
    from repro.obs.metrics import Histogram

    try:
        histogram = Histogram(bounds=tuple(float(bound) for bound in data["bounds"]))
        buckets = [int(count) for count in data["buckets"]]
        if len(buckets) != len(histogram.buckets):
            raise ValidationError("histogram bucket count does not match its bounds")
        histogram.buckets = buckets
        histogram.count = int(data["count"])
        histogram.total = float(data["sum"])
        histogram.minimum = float(data["min"]) if data["min"] is not None else None
        histogram.maximum = float(data["max"]) if data["max"] is not None else None
        return histogram
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("metrics histogram", exc) from None


def span_from_wire(data: Mapping) -> "Span":
    """Inverse of :meth:`repro.obs.trace.Span.to_wire` (strict variant).

    :meth:`Span.from_wire` tolerates missing optional fields (it also loads
    Chrome-trace conversions); this decoder is the WAL/peer-boundary strict
    twin the registry requires.
    """
    from repro.obs.trace import Span

    try:
        parent = data["parent"]
        end = data["end"]
        return Span(
            span_id=int(data["id"]),
            parent=int(parent) if parent is not None else None,
            kind=str(data["kind"]),
            name=str(data["name"]),
            category=str(data["cat"]),
            resource=str(data["resource"]),
            pid=int(data["pid"]),
            start=float(data["start"]),
            end=float(end) if end is not None else None,
            status=str(data["status"]),
            attrs=dict(data["attrs"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail("trace span", exc) from None


#: Every ``to_wire`` class in the library, keyed by class name, mapped to its
#: strict decoder.  ``repro.check.lint`` extracts the keys of this dict
#: *statically* (a literal dict, parsed via AST, no import needed) to enforce
#: that no encoder ships without its inverse; the round-trip property test in
#: ``tests/check`` exercises the values dynamically.
WIRE_DECODERS = {
    "Block": block_from_wire,
    "Checkpoint": checkpoint_from_wire,
    "EpochAnchor": epoch_anchor_from_wire,
    "CollectiveSignature": cosign_from_wire,
    "Envelope": envelope_from_wire,
    "FrontierCertificate": frontier_certificate_from_wire,
    "Histogram": histogram_from_wire,
    "ReadOp": operation_from_wire,
    "ReadResult": read_result_from_wire,
    "ReadSetEntry": read_entry_from_wire,
    "RecordVersion": record_version_from_wire,
    "ServerGroup": server_group_from_wire,
    "Span": span_from_wire,
    "Transaction": transaction_from_wire,
    "TxnOutcome": txn_outcome_from_wire,
    "VerificationObject": verification_object_from_wire,
    "VoteResult": vote_result_from_wire,
    "WriteOp": operation_from_wire,
    "WriteSetEntry": write_entry_from_wire,
}
