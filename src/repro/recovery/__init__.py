"""Crash recovery: durable server state, verified catch-up, rejoin.

The subsystem behind ``DatabaseServer.crash()`` / ``recover()``:

* :mod:`repro.recovery.statestore` -- the durable state layer (in-memory and
  append-only file WAL with snapshot compaction);
* :mod:`repro.recovery.wire` -- strict decoders for the byte boundary;
* :mod:`repro.recovery.manager` -- restore-and-verify plus the
  ``STATE_REQUEST`` catch-up protocol against untrusted peers (each peer's
  state response travels as the RPC return payload).

See DESIGN.md section 6 for the recovery state machine and the trust
argument.
"""

from repro.recovery.manager import (
    RecoveryResult,
    catch_up_from_peers,
    recover_server_state,
    restore_from_state,
    verify_and_apply_catchup,
)
from repro.recovery.statestore import (
    FileStateStore,
    MemoryStateStore,
    PersistedState,
    StateStore,
)
from repro.recovery.wire import (
    block_from_wire,
    checkpoint_from_wire,
    cosign_from_wire,
    transaction_from_wire,
)

__all__ = [
    "RecoveryResult",
    "catch_up_from_peers",
    "recover_server_state",
    "restore_from_state",
    "verify_and_apply_catchup",
    "FileStateStore",
    "MemoryStateStore",
    "PersistedState",
    "StateStore",
    "block_from_wire",
    "checkpoint_from_wire",
    "cosign_from_wire",
    "transaction_from_wire",
]
