"""Restoring a crashed server and catching it up from untrusted peers.

The recovery pipeline has two halves:

* :func:`restore_from_state` -- rebuild the datastore and the tamper-proof
  log from the :class:`~repro.recovery.statestore.PersistedState` a
  state store loaded.  The WAL is *trusted but verified*: every replayed
  block must reproduce the shard Merkle root recorded next to it, so silent
  WAL corruption (or a bug that diverged the live store from the log) fails
  loudly instead of resurrecting a wrong server.

* :func:`catch_up_from_peers` -- fetch the block range the WAL does not
  cover.  Peers are **untrusted** (the whole point of Fides), so a fetched
  range is believed only if (1) heights are sequential and the hash chain
  extends the local head, (2) every block's collective signature verifies --
  for dynamic-group blocks over the group body digest with the signer set
  equal to the recorded group -- and (3) replaying each commit block onto
  the restored shard reproduces the root the block advertises for this
  server *before* the writes are applied.  A response failing any check is
  rejected wholesale and the next peer is tried; blocks verified before the
  failure stay applied (each one was individually proven correct).

Check (1) anchors the range in state this server already trusts (its own
checkpoint / WAL head), (2) proves the whole cluster once agreed on every
block, and (3) closes the loop between log and datastore -- together a
tampering peer would need to forge a collective signature or find a hash
collision to make a recovering server accept a wrong block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigurationError,
    RecoveryError,
    UnreachableError,
    ValidationError,
)
from repro.ledger.block import Block
from repro.ledger.log import TransactionLog, verify_block_cosign
from repro.net.message import MessageType
from repro.net.network import Network
from repro.obs.timing import Stopwatch
from repro.recovery.statestore import PersistedState, StateStore
from repro.recovery.wire import block_from_wire
from repro.storage.apply import block_local_writes, block_store_commits
from repro.storage.datastore import DataStore


@dataclass
class RecoveryResult:
    """What one crash-recovery pass did, for tests and the benchmark sweep."""

    server_id: str
    from_checkpoint_height: Optional[int] = None
    #: Blocks restored into the log straight from the state store.
    restored_blocks: int = 0
    #: Subset of restored blocks whose writes were replayed into the store.
    replayed_blocks: int = 0
    #: Blocks fetched from peers, verified, and applied.
    fetched_blocks: int = 0
    #: Peer that completed the catch-up (last useful response).
    served_by: str = ""
    #: ``(peer, reason)`` for every response that failed verification.
    rejected: List[Tuple[str, str]] = field(default_factory=list)
    caught_up: bool = True
    wall_time_s: float = 0.0

    @property
    def rejected_peers(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(peer for peer, _ in self.rejected))


def restore_from_state(
    state: PersistedState, result: Optional[RecoveryResult] = None
) -> Tuple[DataStore, TransactionLog]:
    """Rebuild (datastore, log) from persisted state, verifying replay roots."""
    store = DataStore.import_state(state.datastore_state)
    log = TransactionLog(
        base_height=state.log_base_height,
        base_hash=state.checkpoint.head_hash if state.checkpoint is not None else None,
    )
    for block, recorded_root in state.blocks:
        try:
            log.append(block)
        except ValidationError as exc:
            raise RecoveryError(f"persisted log does not chain: {exc}") from None
        if block.height >= state.snapshot_next_height:
            if block.is_commit:
                store.apply_batch(block_store_commits(block, store))
            if store.merkle_root() != recorded_root:
                raise RecoveryError(
                    f"replaying persisted block {block.height} does not reproduce "
                    "the recorded shard root (corrupt WAL or diverged store)"
                )
            if result is not None:
                result.replayed_blocks += 1
        if result is not None:
            result.restored_blocks += 1
    return store, log


def verify_and_apply_catchup(
    server_id: str,
    store: DataStore,
    log: TransactionLog,
    blocks: Sequence[Block],
    public_keys: Dict,
    state_store: Optional[StateStore] = None,
    result: Optional[RecoveryResult] = None,
) -> int:
    """Apply a peer-served block range after full verification; returns count.

    Each block is verified *then* applied, one at a time, so a failure
    mid-range leaves the server in a consistent state at a higher height
    (everything already applied passed all three checks independently).
    ``result.fetched_blocks`` is advanced per applied block, so blocks that
    stay applied before a mid-range rejection are still accounted for.
    """
    applied = 0
    for block in blocks:
        if block.height != log.height:
            raise RecoveryError(
                f"catch-up block height {block.height} does not extend local height {log.height}"
            )
        if block.previous_hash != log.head_hash:
            raise RecoveryError(
                f"catch-up block {block.height} does not chain onto the local head"
            )
        reason = verify_block_cosign(block, public_keys)
        if reason:
            raise RecoveryError(f"catch-up block {block.height}: {reason}")
        if block.is_commit and server_id in block.roots:
            local_writes = block_local_writes(block.transactions, store)
            replayed_root, _ = store.speculative_root(local_writes)
            if replayed_root != block.roots[server_id]:
                raise RecoveryError(
                    f"replaying catch-up block {block.height} does not reproduce the "
                    "advertised shard root"
                )
        if block.is_commit:
            store.apply_batch(block_store_commits(block, store))
        log.append(block)
        if state_store is not None:
            state_store.record_block(block, store.merkle_root())
        applied += 1
        if result is not None:
            result.fetched_blocks += 1
    return applied


def catch_up_from_peers(
    server_id: str,
    store: DataStore,
    log: TransactionLog,
    network: Network,
    peers: Sequence[str],
    state_store: Optional[StateStore] = None,
    result: Optional[RecoveryResult] = None,
) -> RecoveryResult:
    """Fetch and verify the missing block range, consulting every peer.

    Every peer is consulted: a peer's claimed ``head_height`` is just
    another untrusted statement, so an early-exit on the first "you are
    caught up" answer would let a malicious (or merely lagging) first peer
    terminate recovery prematurely and have the server rejoin stale.
    Responses failing verification are recorded in ``result.rejected`` and
    the remaining peers are still consulted -- one honest reachable peer
    suffices, exactly the failure model's guarantee.  ``caught_up`` is
    judged against the *largest* head any well-formed response claimed.
    """
    if result is None:
        result = RecoveryResult(server_id=server_id)
    public_keys = network.public_key_directory()
    #: True once verified blocks reached some well-formed peer's claimed
    #: head.  An *unreached* claim carries no weight either way: crediting it
    #: would let a lagging/lying peer end recovery stale, and requiring it
    #: would let a peer claiming an absurd head deny recovery -- every honest
    #: peer's claim is reachable through its own served blocks, and every
    #: peer gets consulted, so one honest peer settles it.
    satisfied = False
    for peer in peers:
        try:
            response = network.send(
                server_id,
                peer,
                MessageType.STATE_REQUEST,
                {"from_height": log.height},
            )
        except (UnreachableError, ConfigurationError) as exc:
            result.rejected.append((peer, f"peer unreachable: {exc}"))
            continue
        if not response.get("ok"):
            result.rejected.append(
                (peer, response.get("reason", "peer refused the state request"))
            )
            continue
        try:
            claimed_head = int(response.get("head_height", 0))
            blocks = [block_from_wire(wire) for wire in response.get("blocks", ())]
            applied = verify_and_apply_catchup(
                server_id,
                store,
                log,
                blocks,
                public_keys,
                state_store=state_store,
                result=result,
            )
        except (RecoveryError, ValidationError) as exc:
            result.rejected.append((peer, str(exc)))
            continue
        if applied:
            result.served_by = peer
        if log.height >= claimed_head:
            satisfied = True
    result.caught_up = satisfied or not peers
    return result


def recover_server_state(
    server_id: str,
    state_store: StateStore,
    network: Network,
    peers: Sequence[str],
) -> Tuple[DataStore, TransactionLog, Optional[object], RecoveryResult]:
    """The full recovery pipeline: load, restore+verify, catch up.

    Returns ``(store, log, checkpoint, result)`` -- the checkpoint is the
    one the persisted snapshot carried (``None`` at genesis), handed back so
    the caller does not have to decode the journal a second time.  Raises
    :class:`RecoveryError` when the persisted state is unusable or no peer
    could be caught up with (every response rejected/unreachable).
    """
    watch = Stopwatch()
    state = state_store.load()
    if state.server_id != server_id:
        raise RecoveryError(
            f"state store belongs to {state.server_id!r}, not {server_id!r}"
        )
    result = RecoveryResult(
        server_id=server_id,
        from_checkpoint_height=(
            state.checkpoint.height if state.checkpoint is not None else None
        ),
    )
    store, log = restore_from_state(state, result)
    catch_up_from_peers(
        server_id, store, log, network, peers, state_store=state_store, result=result
    )
    if not result.caught_up:
        raise RecoveryError(
            f"{server_id} could not catch up with any peer: {result.rejected}"
        )
    result.wall_time_s = watch.elapsed()
    return store, log, state.checkpoint, result
