"""Plain-text reporting of experiment sweeps.

The paper presents its evaluation as plots; our harness prints the same
series as aligned text tables (and CSV for anyone who wants to re-plot them).
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of row dicts (all sharing the same keys) as an aligned table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as CSV text (no external dependency)."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(str(column) for column in columns) + "\n")
    for row in rows:
        buffer.write(",".join(str(row.get(column, "")) for column in columns) + "\n")
    return buffer.getvalue()


def shape_ratio(rows: Sequence[Dict[str, object]], column: str) -> float:
    """Ratio of the last to the first value of ``column`` across a sweep.

    Used by benchmark assertions that check the *shape* of a figure (e.g.
    throughput should rise by at least X from the first to the last point).
    """
    if not rows:
        raise ValueError("no rows")
    first = float(rows[0][column])
    last = float(rows[-1][column])
    if first == 0:
        raise ValueError(f"first value of {column!r} is zero")
    return last / first
