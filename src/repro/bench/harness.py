"""Single-experiment runner and the simulated-time performance model.

The paper measures two quantities (Section 6): *commit latency* -- the time
to terminate a transaction once the client sends ``end_transaction`` -- and
*throughput* -- committed transactions per second.  On the paper's testbed
those come from wall clocks on EC2 VMs; here they come from the
simulated-time model described in DESIGN.md:

* every TFCommit / 2PC phase costs one outbound network delay + the slowest
  participant's *measured* compute + one inbound delay (participants work in
  parallel on real hardware, so the max is the right aggregate);
* blocks are produced sequentially (as in the paper's implementation), so the
  total run time is the sum of per-block latencies and the throughput is
  ``committed transactions / total simulated time``.

Commit latency per transaction is the block latency amortised over the
transactions batched in the block -- this is what Figure 13 reports when it
shows latency dropping as the batch grows.
"""

from __future__ import annotations

import math
import statistics
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import SystemConfig
from repro.core.fides import PROTOCOL_TFCOMMIT, FidesSystem
from repro.core.scaled import ScaledFidesSystem
from repro.net.latency import LatencyModel, lan_latency
from repro.sim.context import FixedCompute
from repro.workload.ycsb import PartitionedWorkload, YcsbWorkload


@dataclass(frozen=True)
class ExperimentConfig:
    """One point in an evaluation sweep.

    Defaults mirror the paper's setup: 5 servers, 10 000 items per shard,
    5 operations per transaction, 100 transactions per block, 1000 client
    requests, and the Transactional-YCSB-like workload.  ``num_requests`` is
    deliberately configurable because the pure-Python crypto makes the full
    1000-request sweeps slow in CI; the benchmark defaults use a few hundred
    requests, and ``python -m repro.bench`` can run the full size.
    """

    label: str = "experiment"
    protocol: str = PROTOCOL_TFCOMMIT
    num_servers: int = 5
    items_per_shard: int = 10_000
    txns_per_block: int = 100
    ops_per_txn: int = 5
    num_requests: int = 1000
    num_clients: int = 1
    message_signing: str = "hash"
    multi_versioned: bool = False
    pipeline_depth: int = 1
    #: Per-phase compute charge in milliseconds; ``None`` (the default) uses
    #: the measured wall-clock compute of the hybrid simulated-time model.
    #: CI's baseline-gated sweeps set it so their throughput is
    #: deterministic across machines (DESIGN.md section 7).
    fixed_compute_ms: Optional[float] = None
    seed: int = 2020
    #: ``"classic"`` (one coordinator) or ``"scaled"`` (dynamic groups +
    #: ordering service).  :func:`repro.bench.experiments.run` dispatches on
    #: this instead of callers picking a runner function by name.
    deployment: str = "classic"
    # -- scaled-deployment knobs (ignored by the classic deployment) --------
    #: Servers per workload home partition (group formation granularity).
    group_size: int = 2
    #: Probability a transaction stays within its home partition.
    locality: float = 1.0
    #: Zipfian skew over home partitions (0.0 = uniform round-robin).
    home_skew_theta: float = 0.0
    #: Reorder window of the single-lane ordering service.
    reorder_window: int = 0
    #: Ordering shards; > 1 swaps in the sharded sequencer (DESIGN.md §13).
    ordering_shards: int = 1
    #: Per-lane buffer bound of the sharded sequencer.
    epoch_max_blocks: int = 32

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            num_servers=self.num_servers,
            items_per_shard=self.items_per_shard,
            txns_per_block=self.txns_per_block,
            ops_per_txn=self.ops_per_txn,
            multi_versioned=self.multi_versioned,
            message_signing=self.message_signing,
            pipeline_depth=self.pipeline_depth,
            seed=self.seed,
        )


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty list).

    The canonical benchmark schema reports p50/p95/p99 commit latencies; the
    nearest-rank definition keeps the value an actual observed sample, which
    makes baseline comparisons stable at small smoke-sweep sizes.
    """
    if not samples:
        return 0.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("percentile fraction must be in (0, 1]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * fraction))
    return ordered[rank - 1]


@dataclass
class ExperimentResult:
    """Measurements for one experiment configuration.

    ``total_time_s`` is the run's *makespan* on the simulated event timeline
    (the end of the last scheduled activity).  With ``pipeline_depth=1`` the
    blocks are produced sequentially and the makespan equals the sum of the
    per-block latencies (the pre-event-loop accounting); with deeper
    pipelines overlapping rounds shrink it, which is exactly the throughput
    gain the ``pipeline`` sweep quantifies.
    """

    config: ExperimentConfig
    committed_txns: int = 0
    aborted_txns: int = 0
    blocks: int = 0
    total_time_s: float = 0.0
    throughput_tps: float = 0.0
    block_latency_ms: float = 0.0
    txn_latency_ms: float = 0.0
    txn_latency_p50_ms: float = 0.0
    txn_latency_p95_ms: float = 0.0
    txn_latency_p99_ms: float = 0.0
    mht_update_ms: float = 0.0
    mht_hashes_per_block: float = 0.0
    network_ms_per_block: float = 0.0
    compute_ms_per_block: float = 0.0
    #: Wall-clock spent in crypto (sign/verify/aggregate) amortised per
    #: block, read from the run's ``crypto.*.s`` metrics counters -- the
    #: isolated micro-timer, not a share of the coarse phase compute.
    crypto_ms_per_block: float = 0.0
    phase_ms: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row for reporting."""
        return {
            "label": self.config.label,
            "protocol": self.config.protocol,
            "servers": self.config.num_servers,
            "items/shard": self.config.items_per_shard,
            "txns/block": self.config.txns_per_block,
            "requests": self.config.num_requests,
            "clients": self.config.num_clients,
            "committed": self.committed_txns,
            "throughput (txns/s)": round(self.throughput_tps, 1),
            "txn latency (ms)": round(self.txn_latency_ms, 3),
            "txn p50 (ms)": round(self.txn_latency_p50_ms, 3),
            "txn p95 (ms)": round(self.txn_latency_p95_ms, 3),
            "txn p99 (ms)": round(self.txn_latency_p99_ms, 3),
            "block latency (ms)": round(self.block_latency_ms, 3),
            "MHT update (ms)": round(self.mht_update_ms, 3),
            "MHT hashes/block": round(self.mht_hashes_per_block, 1),
            "crypto (ms)": round(self.crypto_ms_per_block, 3),
        }


def run_experiment(
    config: ExperimentConfig, latency: Optional[LatencyModel] = None
) -> ExperimentResult:
    """Execute one experiment configuration and return its measurements."""
    system = FidesSystem(
        config=config.system_config(),
        protocol=config.protocol,
        latency=latency or lan_latency(seed=config.seed),
        compute_model=(
            FixedCompute(config.fixed_compute_ms / 1000.0)
            if config.fixed_compute_ms is not None
            else None
        ),
    )
    workload = YcsbWorkload(
        item_ids=system.shard_map.all_items(),
        ops_per_txn=config.ops_per_txn,
        conflict_free_window=config.txns_per_block,
        seed=config.seed,
    )
    specs = workload.generate(config.num_requests)
    outcome = system.run_workload(specs, num_clients=config.num_clients)

    result = ExperimentResult(config=config)
    result.committed_txns = outcome.committed
    result.aborted_txns = outcome.aborted
    block_results = [r for r in outcome.block_results if r.status in ("committed", "aborted")]
    result.blocks = len(block_results)
    if not block_results:
        return result

    block_latencies = [r.timing.total for r in block_results]
    txn_latencies = [r.timing.per_txn_latency for r in block_results]
    #: Every transaction in a block shares the block's amortised latency;
    #: weighting by block size makes the percentiles per-transaction ones.
    per_txn_samples = [
        r.timing.per_txn_latency for r in block_results for _ in range(max(1, r.timing.num_txns))
    ]
    result.total_time_s = system.sim.makespan
    result.block_latency_ms = statistics.mean(block_latencies) * 1000.0
    result.txn_latency_ms = statistics.mean(txn_latencies) * 1000.0
    result.txn_latency_p50_ms = percentile(per_txn_samples, 0.50) * 1000.0
    result.txn_latency_p95_ms = percentile(per_txn_samples, 0.95) * 1000.0
    result.txn_latency_p99_ms = percentile(per_txn_samples, 0.99) * 1000.0
    result.mht_update_ms = statistics.mean(r.timing.mht_time for r in block_results) * 1000.0
    result.mht_hashes_per_block = statistics.mean(
        r.timing.mht_hashes for r in block_results
    )
    result.network_ms_per_block = (
        statistics.mean(r.timing.network_time for r in block_results) * 1000.0
    )
    result.compute_ms_per_block = (
        statistics.mean(r.timing.compute_time for r in block_results) * 1000.0
    )
    # Crypto wall time comes from the isolated micro-timers around every
    # sign/verify/aggregate call (``crypto.*.s`` counters), not from a share
    # of the coarse phase compute -- the row previously omitted it entirely.
    crypto_s = sum(
        value
        for name, value in system.sim.obs.metrics.counters_matching("crypto.").items()
        if name.endswith(".s")
    )
    result.crypto_ms_per_block = crypto_s / result.blocks * 1000.0
    if result.total_time_s > 0:
        result.throughput_tps = result.committed_txns / result.total_time_s

    phase_names = {name for r in block_results for name in r.timing.phases}
    for name in sorted(phase_names):
        samples = [r.timing.phases.get(name, 0.0) for r in block_results]
        result.phase_ms[name] = statistics.mean(samples) * 1000.0
    return result


@dataclass
class ScaledExperimentResult:
    """Measurements of one scaled-deployment point vs its single-group baseline.

    Both durations come off the shared event timeline: group coordinators
    are distinct machines whose rounds genuinely interleave (subject to the
    scheduler's cross-group and ordering-service rules, DESIGN.md section 7),
    so the scaled run's duration is its makespan -- with one coordinator it
    degenerates to the baseline's sequential sum.  Ordered delivery is part
    of each block's timing (the ``order`` phase) and serializes on the
    shared ordering-service resource.
    """

    label: str = ""
    num_servers: int = 0
    group_size: int = 0
    locality: float = 1.0
    txns_per_block: int = 1
    committed_txns: int = 0
    aborted_txns: int = 0
    blocks: int = 0
    group_coordinators: int = 0
    distinct_groups: int = 0
    scaled_time_s: float = 0.0
    scaled_tps: float = 0.0
    baseline_tps: float = 0.0
    speedup: float = 0.0
    txn_latency_ms: float = 0.0
    #: Ordering shards the run used (1 = classic single-lane sequencer).
    ordering_shards: int = 1
    #: Busiest ordering lane's busy time over the makespan -- how saturated
    #: the ordering layer is (the scale-out sweep's headline bottleneck metric).
    ordering_busy_frac: float = 0.0
    #: Epoch anchors sealed (0 under the single-lane sequencer).
    epochs: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "servers": self.num_servers,
            "group size": self.group_size,
            "locality": self.locality,
            "txns/block": self.txns_per_block,
            "committed": self.committed_txns,
            "coordinators": self.group_coordinators,
            "groups": self.distinct_groups,
            "scaled tps": round(self.scaled_tps, 1),
            "baseline tps": round(self.baseline_tps, 1),
            "speedup": round(self.speedup, 2),
            "txn latency (ms)": round(self.txn_latency_ms, 3),
        }


def locality_partitions(system, group_size: int) -> List[List[str]]:
    """Split a system's item universe into per-``group_size``-servers pools."""
    server_ids = list(system.config.server_ids)
    partitions: List[List[str]] = []
    for start in range(0, len(server_ids), group_size):
        chunk = server_ids[start : start + group_size]
        items: List[str] = []
        for server_id in chunk:
            items.extend(system.shard_map.items_of(server_id))
        partitions.append(items)
    return partitions


def run_scaled_from_config(
    config: ExperimentConfig,
    latency: Optional[LatencyModel] = None,
    baseline: bool = True,
) -> ScaledExperimentResult:
    """Run one scaled-deployment point described by an :class:`ExperimentConfig`.

    ``config.ordering_shards`` selects the sequencer: 1 keeps the classic
    single-lane :class:`~repro.core.ordserv.OrderingService` (with
    ``config.reorder_window``), more swaps in the sharded service.  With
    ``baseline=True`` the same locality-partitioned workload also runs on a
    classic single-coordinator :class:`FidesSystem` -- each with its own
    seed-matched latency model, since sharing one instance would let the
    first run advance the RNG stream the second samples from.  The scale-out
    sweep passes ``baseline=False``: dragging 100+ servers through a
    single-coordinator round per block is not a useful baseline there (the
    1-shard scaled run is).
    """
    from repro.core.sequencing import sharded_sequencer, single_sequencer

    system_config = config.system_config()
    compute_model = (
        FixedCompute(config.fixed_compute_ms / 1000.0)
        if config.fixed_compute_ms is not None
        else None
    )
    sequencer = (
        sharded_sequencer(config.ordering_shards, epoch_max_blocks=config.epoch_max_blocks)
        if config.ordering_shards > 1
        else single_sequencer(config.reorder_window)
    )
    scaled = ScaledFidesSystem(
        system_config,
        latency=latency or lan_latency(seed=config.seed),
        reorder_window=config.reorder_window,
        compute_model=compute_model,
        sequencer=sequencer,
    )
    workload = PartitionedWorkload(
        partitions=locality_partitions(scaled, config.group_size),
        ops_per_txn=config.ops_per_txn,
        locality=config.locality,
        conflict_free_window=config.txns_per_block,
        seed=config.seed,
        home_skew_theta=config.home_skew_theta,
    )
    specs = workload.generate(config.num_requests)
    outcome = scaled.run_workload(specs, num_clients=config.num_clients)

    result = ScaledExperimentResult(
        label=config.label,
        num_servers=config.num_servers,
        group_size=config.group_size,
        locality=config.locality,
        txns_per_block=config.txns_per_block,
        ordering_shards=config.ordering_shards,
    )
    result.committed_txns = outcome.committed
    result.aborted_txns = outcome.aborted
    result.group_coordinators = len(scaled.active_group_coordinators)
    result.distinct_groups = len(scaled.groups_used())
    result.epochs = len(getattr(scaled.ordering, "epoch_anchors", ()))

    block_latencies = []
    txn_latencies = []
    for coordinator in scaled._coordinators():
        finished = [r for r in coordinator.results if r.status in ("committed", "aborted")]
        block_latencies.extend(r.timing.total for r in finished)
        txn_latencies.extend(r.timing.per_txn_latency for r in finished)
    result.blocks = len(block_latencies)
    result.scaled_time_s = scaled.sim.makespan
    if result.scaled_time_s > 0:
        result.scaled_tps = result.committed_txns / result.scaled_time_s
        busy = scaled.sim.scheduler.delivery_busy()
        if busy:
            result.ordering_busy_frac = max(busy.values()) / result.scaled_time_s
    if txn_latencies:
        result.txn_latency_ms = statistics.mean(txn_latencies) * 1000.0

    if not baseline:
        return result

    baseline_system = FidesSystem(
        config=system_config,
        protocol=PROTOCOL_TFCOMMIT,
        latency=lan_latency(seed=config.seed),
        compute_model=compute_model,
    )
    baseline_workload = PartitionedWorkload(
        partitions=locality_partitions(baseline_system, config.group_size),
        ops_per_txn=config.ops_per_txn,
        locality=config.locality,
        conflict_free_window=config.txns_per_block,
        seed=config.seed,
        home_skew_theta=config.home_skew_theta,
    )
    baseline_outcome = baseline_system.run_workload(
        baseline_workload.generate(config.num_requests), num_clients=config.num_clients
    )
    baseline_time = baseline_system.sim.makespan
    if baseline_time > 0:
        result.baseline_tps = baseline_outcome.committed / baseline_time
    if result.baseline_tps > 0:
        result.speedup = result.scaled_tps / result.baseline_tps
    return result


def run_scaled_experiment(
    label: str,
    num_servers: int = 4,
    group_size: int = 2,
    locality: float = 1.0,
    items_per_shard: int = 200,
    txns_per_block: int = 4,
    ops_per_txn: int = 2,
    num_requests: int = 40,
    num_clients: int = 2,
    reorder_window: int = 0,
    seed: int = 2020,
) -> ScaledExperimentResult:
    """Deprecated shim: build an :class:`ExperimentConfig` and delegate.

    Kept for callers of the historical keyword-per-knob signature; new code
    should construct an ``ExperimentConfig(deployment="scaled", ...)`` and
    call :func:`repro.bench.experiments.run` (or
    :func:`run_scaled_from_config` directly).
    """
    warnings.warn(
        "run_scaled_experiment(label, ...) is deprecated; use "
        "repro.bench.experiments.run(ExperimentConfig(deployment='scaled', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    config = ExperimentConfig(
        label=label,
        deployment="scaled",
        num_servers=num_servers,
        items_per_shard=items_per_shard,
        txns_per_block=txns_per_block,
        ops_per_txn=ops_per_txn,
        num_requests=num_requests,
        num_clients=num_clients,
        group_size=group_size,
        locality=locality,
        reorder_window=reorder_window,
        seed=seed,
    )
    return run_scaled_from_config(config)


@dataclass
class PipelineExperimentResult:
    """One pipelined-vs-sequential comparison point.

    Both runs execute the *same* workload on the same deployment shape; only
    ``pipeline_depth`` differs.  ``speedup`` is pipelined over sequential
    throughput -- at depth 1 it is exactly 1.0 by construction (the depth-1
    schedule *is* the sequential schedule), and the dependency rules cap how
    far it can rise with depth.
    """

    label: str = ""
    num_servers: int = 0
    group_size: int = 0  # 0 = classic single-coordinator deployment
    pipeline_depth: int = 1
    txns_per_block: int = 1
    committed_txns: int = 0
    aborted_txns: int = 0
    blocks: int = 0
    pipelined_time_s: float = 0.0
    pipelined_tps: float = 0.0
    sequential_time_s: float = 0.0
    sequential_tps: float = 0.0
    speedup: float = 0.0
    auditor_clean: bool = False

    def as_row(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "servers": self.num_servers,
            "groups": "scaled" if self.group_size else "classic",
            "depth": self.pipeline_depth,
            "txns/block": self.txns_per_block,
            "committed": self.committed_txns,
            "blocks": self.blocks,
            "pipelined tps": round(self.pipelined_tps, 1),
            "sequential tps": round(self.sequential_tps, 1),
            "speedup": round(self.speedup, 3),
            "audit clean": self.auditor_clean,
        }


def run_pipelined_experiment(
    label: str,
    pipeline_depth: int = 2,
    num_servers: int = 4,
    group_size: int = 0,
    items_per_shard: int = 200,
    txns_per_block: int = 4,
    ops_per_txn: int = 2,
    num_requests: int = 48,
    num_clients: int = 1,
    seed: int = 2020,
    audit: bool = True,
    fixed_compute_ms: Optional[float] = 1.0,
    obs=None,
) -> PipelineExperimentResult:
    """Run one workload pipelined (depth >= 2) and sequentially (depth 1).

    ``group_size=0`` drives the classic single-coordinator deployment;
    a positive ``group_size`` drives a :class:`ScaledFidesSystem` with a
    fully partitioned workload, so pipelining composes with dynamic groups
    and the ordering service.  The workload's conflict-free window spans
    ``pipeline_depth`` consecutive batches in both runs: the comparison
    measures the scheduler, not workload-conflict luck.

    By default both runs use a :class:`~repro.sim.context.FixedCompute`
    model (``fixed_compute_ms`` per phase): the speedup then isolates the
    scheduling effect and is bit-identical across repeats and machines --
    which is what the CI baseline gate compares.  Pass ``None`` to use
    measured compute instead.

    ``obs`` is a shared :class:`~repro.obs.Observability` bundle (the traced
    bench CLI passes a tracing-enabled one); each inner run becomes its own
    trace process so the pipelined and sequential timelines stay separable
    in the exported trace.
    """
    window = max(1, pipeline_depth) * txns_per_block
    compute_model = (
        FixedCompute(fixed_compute_ms / 1000.0) if fixed_compute_ms is not None else None
    )

    def run_at(depth: int):
        config = SystemConfig(
            num_servers=num_servers,
            items_per_shard=items_per_shard,
            txns_per_block=txns_per_block,
            ops_per_txn=ops_per_txn,
            multi_versioned=False,
            message_signing="hash",
            pipeline_depth=depth,
            seed=seed,
        )
        if obs is not None:
            obs.tracer.begin_process(f"{label}/d{depth}")
        if group_size:
            system = ScaledFidesSystem(
                config,
                latency=lan_latency(seed=seed),
                compute_model=compute_model,
                obs=obs,
            )
            workload = PartitionedWorkload(
                partitions=locality_partitions(system, group_size),
                ops_per_txn=ops_per_txn,
                locality=1.0,
                conflict_free_window=window,
                seed=seed,
            )
        else:
            system = FidesSystem(
                config=config,
                protocol=PROTOCOL_TFCOMMIT,
                latency=lan_latency(seed=seed),
                compute_model=compute_model,
                obs=obs,
            )
            workload = YcsbWorkload(
                item_ids=system.shard_map.all_items(),
                ops_per_txn=ops_per_txn,
                conflict_free_window=window,
                seed=seed,
            )
        outcome = system.run_workload(workload.generate(num_requests), num_clients=num_clients)
        return system, outcome

    pipelined_system, pipelined_outcome = run_at(pipeline_depth)
    if pipeline_depth == 1:
        # The depth-1 schedule IS the sequential schedule; re-running the
        # identical configuration would only double the anchor point's cost.
        sequential_system, sequential_outcome = pipelined_system, pipelined_outcome
    else:
        sequential_system, sequential_outcome = run_at(1)

    result = PipelineExperimentResult(
        label=label,
        num_servers=num_servers,
        group_size=group_size,
        pipeline_depth=pipeline_depth,
        txns_per_block=txns_per_block,
    )
    result.committed_txns = pipelined_outcome.committed
    result.aborted_txns = pipelined_outcome.aborted
    result.blocks = sum(
        1 for r in pipelined_outcome.block_results if r.status in ("committed", "aborted")
    )
    result.pipelined_time_s = pipelined_system.sim.makespan
    result.sequential_time_s = sequential_system.sim.makespan
    if result.pipelined_time_s > 0:
        result.pipelined_tps = pipelined_outcome.committed / result.pipelined_time_s
    if result.sequential_time_s > 0:
        result.sequential_tps = sequential_outcome.committed / result.sequential_time_s
    if result.sequential_tps > 0:
        result.speedup = result.pipelined_tps / result.sequential_tps
    if audit:
        result.auditor_clean = pipelined_system.audit().ok and (
            sequential_system is pipelined_system or sequential_system.audit().ok
        )
    return result


def run_average(config: ExperimentConfig, repeats: int = 1) -> ExperimentResult:
    """Run ``repeats`` independent runs (different seeds) and average the metrics.

    The paper averages 3 runs per data point; tests and quick benchmarks use
    1 to stay fast.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    runs: List[ExperimentResult] = []
    for repeat in range(repeats):
        cfg = ExperimentConfig(
            **{**config.__dict__, "seed": config.seed + repeat}
        )
        runs.append(run_experiment(cfg))
    if len(runs) == 1:
        return runs[0]
    merged = ExperimentResult(config=config)
    merged.committed_txns = round(statistics.mean(r.committed_txns for r in runs))
    merged.aborted_txns = round(statistics.mean(r.aborted_txns for r in runs))
    merged.blocks = round(statistics.mean(r.blocks for r in runs))
    merged.total_time_s = statistics.mean(r.total_time_s for r in runs)
    merged.throughput_tps = statistics.mean(r.throughput_tps for r in runs)
    merged.block_latency_ms = statistics.mean(r.block_latency_ms for r in runs)
    merged.txn_latency_ms = statistics.mean(r.txn_latency_ms for r in runs)
    merged.txn_latency_p50_ms = statistics.mean(r.txn_latency_p50_ms for r in runs)
    merged.txn_latency_p95_ms = statistics.mean(r.txn_latency_p95_ms for r in runs)
    merged.txn_latency_p99_ms = statistics.mean(r.txn_latency_p99_ms for r in runs)
    merged.mht_update_ms = statistics.mean(r.mht_update_ms for r in runs)
    merged.mht_hashes_per_block = statistics.mean(r.mht_hashes_per_block for r in runs)
    merged.network_ms_per_block = statistics.mean(r.network_ms_per_block for r in runs)
    merged.compute_ms_per_block = statistics.mean(r.compute_ms_per_block for r in runs)
    merged.crypto_ms_per_block = statistics.mean(r.crypto_ms_per_block for r in runs)
    # Merge the per-phase means as well: a run missing a phase (e.g. a
    # repeat whose every block failed before "finalize") contributes 0.
    phase_names = {name for r in runs for name in r.phase_ms}
    for name in sorted(phase_names):
        merged.phase_ms[name] = statistics.mean(r.phase_ms.get(name, 0.0) for r in runs)
    return merged
