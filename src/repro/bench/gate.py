"""The benchmark regression gate: compare canonical reports to a baseline.

CI runs the smoke sweeps with ``--json``, then::

    python -m repro.bench.gate --baseline benchmarks/baseline.json \\
        --tolerance 0.25 --output bench-comparison.json reports/*.json

The gate fails (exit 1) when a sweep or label recorded in the baseline is
missing from the reports, when a report was produced under a different sweep
configuration than the baseline records (a silent config drift would make
the comparison meaningless), or when any label's throughput fell more than
``tolerance`` below its baseline.  Improvements pass (the comparison report
flags them so the baseline can be refreshed).

``--update`` rewrites the baseline from the given reports instead of
comparing -- run it locally after an intentional performance change and
commit the result.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bench.schema import SCHEMA_VERSION, current_commit, validate_report

BASELINE_SCHEMA_VERSION = 1


def load_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def build_baseline(reports: List[Dict], tolerance: float) -> Dict:
    """Distil canonical reports into the committed baseline shape."""
    sweeps: Dict[str, Dict] = {}
    for report in reports:
        labels = {
            label: {"throughput_tps": metrics.get("throughput_tps")}
            for label, metrics in report["metrics"]["labels"].items()
            if metrics.get("throughput_tps") is not None
        }
        if not labels:
            continue  # nothing gateable (e.g. the fault-matrix report)
        sweeps[report["sweep"]] = {"config": report.get("config", {}), "labels": labels}
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "recorded_commit": current_commit(),
        "default_tolerance": tolerance,
        "sweeps": sweeps,
    }


def compare(baseline: Dict, reports: List[Dict], tolerance: float) -> Dict:
    """Compare reports against the baseline; returns the comparison document.

    The document's ``failures`` list is empty exactly when the gate passes.
    """
    by_sweep = {report["sweep"]: report for report in reports}
    failures: List[str] = []
    improvements: List[str] = []
    rows: List[Dict] = []
    for sweep, recorded in baseline.get("sweeps", {}).items():
        report = by_sweep.get(sweep)
        if report is None:
            failures.append(f"{sweep}: no report provided for baselined sweep")
            continue
        if report.get("config", {}) != recorded.get("config", {}):
            failures.append(
                f"{sweep}: report config {report.get('config')} differs from the "
                f"baseline's {recorded.get('config')}; refresh the baseline with --update"
            )
            continue
        current_labels = report["metrics"]["labels"]
        for label, recorded_metrics in recorded["labels"].items():
            recorded_tps = recorded_metrics["throughput_tps"]
            current = current_labels.get(label, {}).get("throughput_tps")
            row = {
                "sweep": sweep,
                "label": label,
                "baseline_tps": recorded_tps,
                "current_tps": current,
                "ratio": (current / recorded_tps) if current and recorded_tps else None,
                "status": "ok",
            }
            if current is None:
                row["status"] = "missing"
                failures.append(f"{sweep}/{label}: label missing from report")
            elif recorded_tps and current < recorded_tps * (1.0 - tolerance):
                row["status"] = "regression"
                failures.append(
                    f"{sweep}/{label}: throughput {current:.1f} fell more than "
                    f"{tolerance:.0%} below baseline {recorded_tps:.1f}"
                )
            elif recorded_tps and current > recorded_tps * (1.0 + tolerance):
                row["status"] = "improvement"
                improvements.append(
                    f"{sweep}/{label}: throughput {current:.1f} beats baseline "
                    f"{recorded_tps:.1f}; consider refreshing the baseline"
                )
            rows.append(row)
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "baseline_commit": baseline.get("recorded_commit", "unknown"),
        "compared_commit": current_commit(),
        "tolerance": tolerance,
        "rows": rows,
        "failures": failures,
        "improvements": improvements,
        "passed": not failures,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.gate",
        description="Compare canonical benchmark reports against the committed baseline.",
    )
    parser.add_argument("reports", nargs="+", help="canonical report JSON files")
    parser.add_argument("--baseline", required=True, help="baseline JSON path")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="max allowed relative throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--output", default=None, help="write the comparison document here (CI artifact)"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the reports instead of comparing",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    reports = []
    for path in args.reports:
        report = load_json(path)
        problems = validate_report(report)
        if problems:
            print(f"{path}: not a canonical v{SCHEMA_VERSION} report: {problems}", file=sys.stderr)
            return 2
        reports.append(report)

    if args.update:
        baseline = build_baseline(reports, args.tolerance)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        total = sum(len(sweep["labels"]) for sweep in baseline["sweeps"].values())
        print(f"recorded baseline for {len(baseline['sweeps'])} sweeps ({total} labels)")
        return 0

    baseline = load_json(args.baseline)
    if baseline.get("schema_version") != BASELINE_SCHEMA_VERSION:
        print(f"{args.baseline}: unsupported baseline schema", file=sys.stderr)
        return 2
    comparison = compare(baseline, reports, args.tolerance)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(comparison, handle, indent=2, sort_keys=True)
            handle.write("\n")
    for row in comparison["rows"]:
        ratio = f"{row['ratio']:.3f}" if row["ratio"] is not None else "-"
        print(
            f"[{row['status']:<11}] {row['sweep']}/{row['label']}: "
            f"baseline {row['baseline_tps']} -> current {row['current_tps']} (x{ratio})"
        )
    for note in comparison["improvements"]:
        print(f"note: {note}")
    if not comparison["passed"]:
        for failure in comparison["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"benchmark gate passed ({len(comparison['rows'])} labels within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
