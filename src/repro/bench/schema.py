"""The canonical benchmark-report schema and the JSON report builder.

Every ``python -m repro.bench <sweep> --json PATH`` invocation emits one
report in this schema; ``benchmarks/baseline.json`` stores the recorded
per-label throughputs CI compares new reports against (see
:mod:`repro.bench.gate` and DESIGN.md section 7).

Schema (version 1)::

    {
      "schema_version": 1,
      "sweep": "<registry name>",
      "commit": "<git SHA or 'unknown'>",
      "config": {"requests": ..., "smoke": ..., "fixed_compute_ms": ...},
      "rows": [...],                      # the sweep's table rows, verbatim
      "metrics": {
        "labels": {"<row label>": {"throughput_tps": .., "latency_ms": ..}},
        "throughput_tps": {"mean": .., "min": ..},
        "latency_ms": {"p50": .., "p95": .., "p99": ..}
      },
      "attribution": {...}                # optional; traced runs only
    }

The optional ``attribution`` block (present when the sweep ran with the
observability bundle attached, i.e. ``--trace``/``--metrics``) is the
per-phase / per-subsystem breakdown built by
:meth:`repro.obs.Observability.attribution`: summed virtual-time seconds
per protocol phase, wall-clock crypto/storage totals, byte counts, and the
full metrics snapshot.

Sweeps report throughput and latency under sweep-specific column names
(classic sweeps in txns/s and amortised ms, the scaled sweep as
``scaled tps``, the pipeline sweep as ``pipelined tps``, the recovery sweep
as ``recover (ms)``); :func:`summarize_rows` normalises them so the gate --
and anyone plotting trajectories across sweeps -- reads one shape.
Fault-matrix rows carry neither metric; their report has an empty
``labels`` map and the gate skips them.
"""

from __future__ import annotations

import subprocess
from typing import Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

#: Column names carrying a row's throughput, in priority order.
THROUGHPUT_COLUMNS = ("throughput (txns/s)", "pipelined tps", "scaled tps")
#: Column names carrying a row's headline latency, in priority order.
LATENCY_COLUMNS = ("txn latency (ms)", "recover (ms)")
#: Latency-percentile columns (present on the classic experiment rows).
PERCENTILE_COLUMNS = {
    "p50": "txn p50 (ms)",
    "p95": "txn p95 (ms)",
    "p99": "txn p99 (ms)",
}


def current_commit() -> str:
    """The repository's HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def _first_number(row: Dict[str, object], columns: Sequence[str]) -> Optional[float]:
    for column in columns:
        value = row.get(column)
        if isinstance(value, bool) or value is None:
            continue
        try:
            return float(value)
        except (TypeError, ValueError):
            continue
    return None


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def summarize_rows(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Normalise a sweep's rows into the canonical ``metrics`` block."""
    labels: Dict[str, Dict[str, Optional[float]]] = {}
    throughputs: List[float] = []
    latencies: Dict[str, List[float]] = {"p50": [], "p95": [], "p99": []}
    for index, row in enumerate(rows):
        label = str(row.get("label", f"row-{index}"))
        throughput = _first_number(row, THROUGHPUT_COLUMNS)
        latency = _first_number(row, LATENCY_COLUMNS)
        if throughput is None and latency is None:
            continue
        labels[label] = {"throughput_tps": throughput, "latency_ms": latency}
        if throughput is not None:
            throughputs.append(throughput)
        for name, column in PERCENTILE_COLUMNS.items():
            value = _first_number(row, (column,))
            if value is not None:
                latencies[name].append(value)
    return {
        "labels": labels,
        "throughput_tps": {
            "mean": _mean(throughputs),
            "min": min(throughputs) if throughputs else None,
        },
        "latency_ms": {name: _mean(values) for name, values in latencies.items()},
    }


def canonical_report(
    sweep: str,
    rows: Sequence[Dict[str, object]],
    config: Optional[Dict[str, object]] = None,
    attribution: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one canonical report dict for a finished sweep.

    ``attribution`` (traced runs only) adds the per-phase / per-subsystem
    block; untraced reports omit the key entirely so their JSON is
    byte-identical to pre-tracing reports.
    """
    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "sweep": sweep,
        "commit": current_commit(),
        "config": dict(config or {}),
        "rows": list(rows),
        "metrics": summarize_rows(rows),
    }
    if attribution is not None:
        report["attribution"] = attribution
    return report


def validate_report(report: Dict[str, object]) -> List[str]:
    """Return the list of schema problems (empty = valid)."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    for key in ("sweep", "commit", "config", "rows", "metrics"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    metrics = report.get("metrics")
    if isinstance(metrics, dict) and "labels" not in metrics:
        problems.append("metrics block is missing 'labels'")
    return problems
