"""Command-line entry point: ``python -m repro.bench <experiment>``.

Examples
--------
Run the reduced-size Figure 13 sweep::

    python -m repro.bench figure13

Run the paper-sized Figure 12 sweep (slow; pure-Python crypto)::

    python -m repro.bench figure12 --requests 1000

List available experiments::

    python -m repro.bench --list

Exit codes: 0 on success, 1 when the sweep raised or produced no rows (so a
silently empty sweep can never pass a CI smoke step), 2 for usage errors.
``--json`` writes the canonical report schema consumed by the CI baseline
gate (:mod:`repro.bench.gate`).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import traceback
from typing import List, Optional

from repro.bench.experiments import EXPERIMENT_REGISTRY
from repro.bench.reporting import format_table, rows_to_csv
from repro.bench.schema import canonical_report
from repro.common.errors import FidesError
from repro.obs import Observability


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of the Fides/TFCommit paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENT_REGISTRY),
        help="which figure / ablation to run",
    )
    parser.add_argument("--requests", type=int, default=None, help="client requests per point")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid for experiments that support it (faultmatrix: always-trigger only)",
    )
    parser.add_argument(
        "--fixed-compute-ms",
        type=float,
        default=None,
        metavar="MS",
        help="charge a fixed per-phase compute instead of measured wall time, "
        "making simulated throughput deterministic (experiments that support it; "
        "used by the CI baseline gate)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="additionally write the canonical report schema as JSON (CI artifact)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="run with span tracing enabled and write a Chrome trace-event "
        "JSON (Perfetto-loadable) there (experiments that support it)",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        default=None,
        help="like --trace, but the JSONL span export (the round-trip format)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metrics snapshot (counters/gauges/histograms) as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for name in sorted(EXPERIMENT_REGISTRY):
            print(f"  {name}")
        return 0
    runner = EXPERIMENT_REGISTRY[args.experiment]
    parameters = inspect.signature(runner).parameters
    kwargs = {}
    if args.requests is not None:
        kwargs["num_requests"] = args.requests
    if args.smoke and "smoke" in parameters:
        kwargs["smoke"] = True
    if args.fixed_compute_ms is not None:
        if "fixed_compute_ms" not in parameters:
            print(
                f"{args.experiment} does not support --fixed-compute-ms", file=sys.stderr
            )
            return 2
        kwargs["fixed_compute_ms"] = args.fixed_compute_ms
    observability = None
    if args.trace or args.trace_jsonl or args.metrics:
        if "obs" not in parameters:
            print(
                f"{args.experiment} does not support --trace/--trace-jsonl/--metrics",
                file=sys.stderr,
            )
            return 2
        observability = Observability(tracing=bool(args.trace or args.trace_jsonl))
        kwargs["obs"] = observability
    #: The report's config block must describe the sweep's *parameters*;
    #: the observability bundle is a measurement channel, not a parameter.
    report_config = {name: value for name, value in kwargs.items() if name != "obs"}
    try:
        rows = runner(**kwargs)
    except (FidesError, OSError):
        traceback.print_exc()
        print(f"sweep {args.experiment!r} raised; failing the run", file=sys.stderr)
        return 1
    if not rows:
        print(
            f"sweep {args.experiment!r} produced no result rows; failing the run",
            file=sys.stderr,
        )
        return 1
    if args.csv:
        print(rows_to_csv(rows), end="")
    else:
        print(format_table(rows, title=args.experiment))
    trace_problems: List[str] = []
    if observability is not None:
        trace_problems = observability.tracer.check_invariants()
        for problem in trace_problems:
            print(f"trace invariant violated: {problem}", file=sys.stderr)
        if args.trace is not None:
            observability.tracer.export_chrome(args.trace)
            print(
                f"wrote Chrome trace ({observability.tracer.span_count()} spans) "
                f"to {args.trace}"
            )
        if args.trace_jsonl is not None:
            observability.tracer.export_jsonl(args.trace_jsonl)
            print(
                f"wrote JSONL trace ({observability.tracer.span_count()} spans) "
                f"to {args.trace_jsonl}"
            )
        if args.metrics is not None:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                json.dump(observability.metrics.snapshot(), handle, indent=2)
                handle.write("\n")
            print(f"wrote metrics snapshot to {args.metrics}")
    if args.json is not None:
        report = canonical_report(
            args.experiment,
            rows,
            config=report_config,
            attribution=(
                observability.attribution(makespan=observability.tracer.makespan())
                if observability is not None
                else None
            ),
        )
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=str)
            handle.write("\n")
        print(f"wrote {len(rows)} rows to {args.json}")
    if trace_problems:
        print(
            f"{len(trace_problems)} trace invariant violation(s); failing the run",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
