"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.harness` -- run one experiment configuration and report
  throughput / latency with the simulated-time model described in DESIGN.md.
* :mod:`repro.bench.experiments` -- the parameter sweeps behind Figures 12-15
  plus the ablation studies.
* :mod:`repro.bench.reporting` -- plain-text tables mirroring the paper's plots.
* ``python -m repro.bench <figure>`` -- command-line entry point.
"""

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    ScaledExperimentResult,
    run_experiment,
    run_scaled_experiment,
)
from repro.bench.experiments import (
    faultmatrix,
    figure12_2pc_vs_tfcommit,
    figure13_txns_per_block,
    figure14_number_of_servers,
    figure15_items_per_shard,
    multiclient_scaling,
    scaledgroups,
)
from repro.bench.reporting import format_table, rows_to_csv

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ScaledExperimentResult",
    "faultmatrix",
    "figure12_2pc_vs_tfcommit",
    "figure13_txns_per_block",
    "figure14_number_of_servers",
    "figure15_items_per_shard",
    "format_table",
    "multiclient_scaling",
    "rows_to_csv",
    "run_experiment",
    "run_scaled_experiment",
    "scaledgroups",
]
