"""The parameter sweeps behind every figure of the paper's evaluation (Section 6).

Each ``figureXX_*`` function reproduces one plot: it sweeps the same
parameter the paper sweeps, runs the experiment at each point, and returns a
list of result rows (plus the raw :class:`ExperimentResult` objects when
``return_results=True``).  The sweeps default to a reduced request count so
they finish quickly under pytest-benchmark; pass ``num_requests=1000`` (the
paper's size) for a full run via ``python -m repro.bench``.

Ablation sweeps (latency regime, signing scheme, Merkle maintenance strategy)
live here as well; they back the design-choice discussion in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    PipelineExperimentResult,
    ScaledExperimentResult,
    run_experiment,
    run_pipelined_experiment,
    run_scaled_experiment,
    run_scaled_from_config,
)
from repro.common.errors import ConfigurationError
from repro.core.fides import PROTOCOL_2PC, PROTOCOL_TFCOMMIT
from repro.net.latency import lan_latency, wan_latency


def _rows(results: Sequence[ExperimentResult]) -> List[Dict[str, object]]:
    return [result.as_row() for result in results]


def run(config: ExperimentConfig, latency=None):
    """Run one experiment point; the deployment is chosen by the config.

    This is the single entrypoint the :mod:`repro.api` facade exports:
    ``config.deployment`` selects the runner (``"classic"`` -> one
    coordinator over the whole cluster, ``"scaled"`` -> dynamic groups plus
    the ordering service), so callers no longer pick between
    :func:`run_experiment` and the historical ``run_scaled_experiment``
    keyword-per-knob signature.
    """
    if config.deployment == "classic":
        return run_experiment(config, latency=latency)
    if config.deployment == "scaled":
        return run_scaled_from_config(config, latency=latency)
    raise ConfigurationError(
        f"unknown deployment {config.deployment!r} (expected 'classic' or 'scaled')"
    )


# ---------------------------------------------------------------------------
# Figure 12: 2PC vs TFCommit (3-7 servers, one transaction per block)
# ---------------------------------------------------------------------------

def figure12_2pc_vs_tfcommit(
    server_counts: Iterable[int] = (3, 4, 5, 6, 7),
    num_requests: int = 60,
    items_per_shard: int = 1000,
    return_results: bool = False,
):
    """2PC vs TFCommit commit latency and throughput, one txn per block.

    The paper finds TFCommit ~1.8x slower and ~2.1x lower-throughput than 2PC
    because of the extra phase, the collective signature, and the MHT update.
    """
    results: List[ExperimentResult] = []
    for protocol in (PROTOCOL_2PC, PROTOCOL_TFCOMMIT):
        for servers in server_counts:
            config = ExperimentConfig(
                label=f"fig12-{protocol}-{servers}s",
                protocol=protocol,
                num_servers=servers,
                items_per_shard=items_per_shard,
                txns_per_block=1,
                num_requests=num_requests,
            )
            results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


# ---------------------------------------------------------------------------
# Figure 13: varying the number of transactions per block (5 servers)
# ---------------------------------------------------------------------------

def figure13_txns_per_block(
    batch_sizes: Iterable[int] = (2, 20, 40, 60, 80, 100, 120),
    num_requests: int = 240,
    items_per_shard: int = 1000,
    fixed_compute_ms: Optional[float] = None,
    return_results: bool = False,
):
    """Latency and throughput as the block batch grows from 2 to 120 (5 servers).

    The paper reports per-transaction latency dropping ~2.6x and throughput
    rising ~2.5x once >= 80 transactions share a block.
    ``fixed_compute_ms`` makes the sweep's simulated throughput
    deterministic (the CI baseline gate runs it that way).
    """
    results: List[ExperimentResult] = []
    for batch in batch_sizes:
        config = ExperimentConfig(
            label=f"fig13-batch-{batch}",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=5,
            items_per_shard=items_per_shard,
            txns_per_block=batch,
            num_requests=max(num_requests, batch),
            fixed_compute_ms=fixed_compute_ms,
        )
        results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


# ---------------------------------------------------------------------------
# Figure 14: varying the number of servers / shards (100 txns per block)
# ---------------------------------------------------------------------------

def figure14_number_of_servers(
    server_counts: Iterable[int] = (3, 4, 5, 6, 7, 8, 9),
    num_requests: int = 300,
    items_per_shard: int = 1000,
    txns_per_block: int = 100,
    return_results: bool = False,
):
    """Scalability with the number of database servers at 100 txns per block.

    The paper reports throughput up ~47% and latency down ~33% from 3 to 9
    servers, driven by the per-shard MHT update work shrinking as the block's
    operations spread over more shards.
    """
    results: List[ExperimentResult] = []
    for servers in server_counts:
        config = ExperimentConfig(
            label=f"fig14-{servers}s",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=servers,
            items_per_shard=items_per_shard,
            txns_per_block=txns_per_block,
            num_requests=num_requests,
        )
        results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


# ---------------------------------------------------------------------------
# Figure 15: varying the number of data items per shard (5 servers, 100/block)
# ---------------------------------------------------------------------------

def figure15_items_per_shard(
    shard_sizes: Iterable[int] = (1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000),
    num_requests: int = 200,
    txns_per_block: int = 100,
    return_results: bool = False,
):
    """Sensitivity to shard size: deeper Merkle trees make commits slightly slower.

    The paper reports latency rising ~15% and throughput dropping ~14% from
    1k to 10k items per shard (tree depth grows from ~10 to ~14 levels).
    """
    results: List[ExperimentResult] = []
    for items in shard_sizes:
        config = ExperimentConfig(
            label=f"fig15-{items}items",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=5,
            items_per_shard=items,
            txns_per_block=txns_per_block,
            num_requests=num_requests,
        )
        results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


# ---------------------------------------------------------------------------
# Ablations (design-choice studies referenced in DESIGN.md)
# ---------------------------------------------------------------------------

def multiclient_scaling(
    client_counts: Iterable[int] = (1, 2, 4, 8),
    num_requests: int = 64,
    items_per_shard: int = 1000,
    txns_per_block: int = 8,
    fixed_compute_ms: Optional[float] = None,
    return_results: bool = False,
):
    """Throughput and latency as concurrent clients grow (Section 6 setup).

    The paper's evaluation drives every experiment with many concurrent
    clients; this sweep round-robins one conflict-free workload across 1-8
    client sessions.  Under a conflict-free workload every client count must
    commit the same number of transactions -- the sweep exposes the cost of
    interleaving independent Lamport clocks in one pending queue.
    """
    results: List[ExperimentResult] = []
    for clients in client_counts:
        config = ExperimentConfig(
            label=f"multiclient-{clients}c",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=5,
            items_per_shard=items_per_shard,
            txns_per_block=txns_per_block,
            num_requests=num_requests,
            num_clients=clients,
            fixed_compute_ms=fixed_compute_ms,
        )
        results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


def faultmatrix(
    num_requests: int = 8,
    num_clients: int = 2,
    num_servers: int = 3,
    items_per_shard: int = 48,
    txns_per_block: int = 2,
    smoke: bool = False,
    return_results: bool = False,
):
    """The detection matrix: sweep the full fault x trigger grid (Lemmas 1-7).

    Every scenario injects one declarative :class:`~repro.faultsim.FaultPlan`
    composition into a fresh deployment, drives the multi-client workload
    engine plus a deterministic probe, and reports whether the auditor (or
    the TFCommit round itself) detected the misbehaviour, whether the culprit
    attribution is correct, blocks-until-detection, and the audit wall-time
    against an honest-run baseline.  ``smoke=True`` restricts the grid to the
    always-firing trigger variant (the CI configuration).
    """
    from repro.faultsim import CampaignConfig, CampaignRunner, build_fault_matrix
    from repro.faultsim.plan import DEFAULT_TRIGGER_VARIANTS

    config = CampaignConfig(
        num_servers=num_servers,
        items_per_shard=items_per_shard,
        txns_per_block=txns_per_block,
        num_requests=num_requests,
        num_clients=num_clients,
    )
    variants = DEFAULT_TRIGGER_VARIANTS[:1] if smoke else DEFAULT_TRIGGER_VARIANTS
    scenarios = build_fault_matrix(config.server_ids, trigger_variants=variants)
    results = CampaignRunner(config).run_matrix(scenarios)
    rows = [result.as_row() for result in results]
    return (results, rows) if return_results else rows


def scaledgroups(
    server_counts: Iterable[int] = (4, 6),
    localities: Iterable[float] = (1.0, 0.75),
    batch_sizes: Iterable[int] = (2, 4),
    group_size: int = 2,
    num_requests: int = 40,
    num_clients: int = 2,
    items_per_shard: int = 120,
    smoke: bool = False,
    return_results: bool = False,
):
    """The Section 4.6 scale-out sweep: servers x group-locality x txns/block.

    Each point drives a locality-partitioned workload through a
    :class:`~repro.core.scaled.ScaledFidesSystem` (per-group TFCommit rounds
    merged by the ordering service) and through the classic single-coordinator
    deployment, reporting scaled vs baseline throughput.  Group coordinators
    are distinct machines, so the scaled run's simulated duration is the
    busiest coordinator's, not the sum -- the speedup column quantifies how
    much the dynamic groups buy at each locality level.

    ``smoke=True`` restricts the grid to one point per axis (the CI
    configuration).
    """
    if smoke:
        server_counts = tuple(server_counts)[:1]
        localities = tuple(localities)[:1]
        batch_sizes = tuple(batch_sizes)[:1]
        num_requests = min(num_requests, 16)
    results: List[ScaledExperimentResult] = []
    for servers in server_counts:
        for locality in localities:
            for batch in batch_sizes:
                results.append(
                    run_scaled_experiment(
                        label=f"scaled-{servers}s-loc{locality}-b{batch}",
                        num_servers=servers,
                        group_size=group_size,
                        locality=locality,
                        items_per_shard=items_per_shard,
                        txns_per_block=batch,
                        num_requests=num_requests,
                        num_clients=num_clients,
                    )
                )
    rows = [result.as_row() for result in results]
    return (results, rows) if return_results else rows


def scaleout(
    shard_counts: Iterable[int] = (1, 4, 16),
    cross_shard_ratios: Iterable[float] = (0.0, 0.1),
    num_servers: int = 128,
    group_size: int = 1,
    items_per_shard: int = 64,
    txns_per_block: int = 16,
    ops_per_txn: int = 2,
    num_clients: int = 4,
    home_skew_theta: float = 0.6,
    epoch_max_blocks: int = 32,
    num_requests: Optional[int] = None,
    fixed_compute_ms: Optional[float] = None,
    smoke: bool = False,
    return_results: bool = False,
):
    """Hundreds-of-groups ordering scale-out: shards x cross-shard traffic.

    Every point drives a Zipfian-skewed (``home_skew_theta``)
    locality-partitioned workload through 128 single-server groups and the
    :class:`~repro.core.sequencing.Sequencer` selected by ``shard_counts``:
    1 is the classic single-lane ordering service (the pre-sharding
    saturation point), more swap in the sharded service whose lanes order
    single-shard blocks independently (DESIGN.md section 13).
    ``cross_shard_ratios`` sets the fraction of transactions spanning two
    home partitions; each ratio's 1-shard point is the reference for that
    ratio's ``speedup vs 1 shard`` column, and ``ordserv busy`` reports the
    busiest lane's utilisation (the saturation the sharding removes).
    There is deliberately no single-coordinator baseline run: dragging 128
    servers through one coordinator per block is not a useful reference at
    this scale -- the 1-shard scaled run is.

    The full sweep defaults to ~10^6 transactions (6 points x 170k);
    ``smoke=True`` keeps the three shard counts at one non-zero ratio and
    ~38k requests per point (>= 10^5 transactions and >= 128 distinct
    groups total, the CI configuration).  ``fixed_compute_ms`` makes the
    throughputs deterministic for the baseline gate.
    """
    shard_counts = tuple(sorted(shard_counts))
    cross_shard_ratios = tuple(cross_shard_ratios)
    if smoke:
        nonzero = tuple(r for r in cross_shard_ratios if r > 0)
        cross_shard_ratios = nonzero[:1] or cross_shard_ratios[:1]
        if num_requests is None:
            num_requests = 38_400
    if num_requests is None:
        num_requests = 170_000
    results: List[ScaledExperimentResult] = []
    rows: List[Dict[str, object]] = []
    reference_tps: Dict[float, float] = {}
    for ratio in cross_shard_ratios:
        for shards in shard_counts:
            config = ExperimentConfig(
                label=f"scaleout-{num_servers}s-sh{shards}-x{ratio}",
                deployment="scaled",
                num_servers=num_servers,
                items_per_shard=items_per_shard,
                txns_per_block=txns_per_block,
                ops_per_txn=ops_per_txn,
                num_requests=num_requests,
                num_clients=num_clients,
                group_size=group_size,
                locality=1.0 - ratio,
                home_skew_theta=home_skew_theta,
                ordering_shards=shards,
                epoch_max_blocks=epoch_max_blocks,
                fixed_compute_ms=fixed_compute_ms,
            )
            result = run_scaled_from_config(config, baseline=False)
            results.append(result)
            reference = reference_tps.setdefault(ratio, result.scaled_tps)
            rows.append(
                {
                    "label": config.label,
                    "servers": num_servers,
                    "shards": shards,
                    "cross ratio": ratio,
                    "requests": num_requests,
                    "committed": result.committed_txns,
                    "groups": result.distinct_groups,
                    "epochs": result.epochs,
                    "scaled tps": round(result.scaled_tps, 1),
                    "ordserv busy": round(result.ordering_busy_frac, 3),
                    "speedup vs 1 shard": (
                        round(result.scaled_tps / reference, 2) if reference > 0 else 0.0
                    ),
                    "makespan (s)": round(result.scaled_time_s, 4),
                }
            )
    return (results, rows) if return_results else rows


def pipeline(
    depths: Iterable[int] = (1, 2, 4),
    deployments: Iterable[str] = ("classic", "scaled"),
    batch_sizes: Iterable[int] = (2, 4),
    num_servers: int = 4,
    group_size: int = 2,
    num_requests: int = 32,
    smoke: bool = False,
    return_results: bool = False,
    obs=None,
):
    """The event-driven pipelining sweep: depth x deployment x txns/block.

    Every point runs the same workload twice -- once at the given pipeline
    depth, once sequentially (depth 1) -- on the discrete-event timeline
    (DESIGN.md section 7) and reports the pipelined-vs-sequential speedup.
    The ``classic`` deployment pipelines one coordinator's consecutive
    blocks (phase 1 of block N+1 overlapping phases 2-5 of block N); the
    ``scaled`` deployment additionally interleaves per-group coordinators
    and the ordering service on the shared timeline.  Runs use the
    deterministic fixed-compute model, so every number is reproducible
    bit-for-bit -- the CI baseline gate compares these throughputs exactly.

    The depth-1 points are sanity anchors (speedup 1.0 by construction);
    ``smoke=True`` restricts the grid to one depth >= 2 point per
    deployment (the CI configuration).  ``obs`` is the shared
    :class:`~repro.obs.Observability` bundle the traced CLI threads through
    every point's systems (``--trace``/``--metrics``).
    """
    depths = tuple(depths)
    deployments = tuple(deployments)
    batch_sizes = tuple(batch_sizes)
    if smoke:
        depths = tuple(d for d in depths if d >= 2)[:1] or (2,)
        batch_sizes = batch_sizes[:1]
        num_requests = min(num_requests, 16)
    results: List[PipelineExperimentResult] = []
    for deployment in deployments:
        scaled = deployment == "scaled"
        for depth in depths:
            for batch in batch_sizes:
                results.append(
                    run_pipelined_experiment(
                        label=f"pipeline-{deployment}-d{depth}-b{batch}",
                        pipeline_depth=depth,
                        num_servers=num_servers,
                        group_size=group_size if scaled else 0,
                        txns_per_block=batch,
                        num_requests=num_requests,
                        num_clients=2 if scaled else 1,
                        obs=obs,
                    )
                )
    rows = [result.as_row() for result in results]
    return (results, rows) if return_results else rows


def recovery(
    gap_requests: Iterable[int] = (8, 16, 32),
    checkpoint_intervals: Iterable[int] = (0, 1),
    store_kinds: Iterable[str] = ("memory", "wal"),
    warmup_requests: int = 8,
    num_servers: int = 4,
    group_size: int = 2,
    items_per_shard: int = 60,
    txns_per_block: int = 2,
    num_clients: int = 2,
    num_requests: Optional[int] = None,
    smoke: bool = False,
    return_results: bool = False,
):
    """Crash-recovery sweep: recovery latency vs missed-log length x checkpointing.

    Each point builds a :class:`~repro.core.scaled.ScaledFidesSystem` (the
    deployment where disjoint groups keep committing while one server is
    down, so a real catch-up gap accumulates), runs a warm-up workload,
    optionally installs a checkpoint (``checkpoint_intervals``: 0 = never,
    1 = after the warm-up -- the recovering server then restores from the
    checkpoint snapshot instead of replaying from genesis), crashes one
    server, commits ``gap_requests`` more transactions on the surviving
    groups, and times :meth:`recover_server` -- restore + verified peer
    catch-up + rejoin.

    ``store_kinds`` compares the in-memory state store against the real
    append-only file WAL (``wal``), whose fsync-per-block cost shows up both
    in the workload wall time and in the recovery restore phase.
    ``num_requests`` (the CLI's ``--requests``) overrides the largest gap
    size; ``smoke=True`` restricts the grid to one point per axis.
    """
    import shutil
    import tempfile
    import time as _time

    from repro.bench.harness import locality_partitions
    from repro.common.config import SystemConfig
    from repro.core.scaled import ScaledFidesSystem
    from repro.net.latency import ConstantLatency
    from repro.recovery import FileStateStore
    from repro.workload.ycsb import PartitionedWorkload

    gap_requests = tuple(gap_requests)
    if num_requests is not None:
        gap_requests = tuple(g for g in gap_requests if g < num_requests) + (num_requests,)
    checkpoint_intervals = tuple(checkpoint_intervals)
    store_kinds = tuple(store_kinds)
    if smoke:
        gap_requests = gap_requests[:1]
        checkpoint_intervals = checkpoint_intervals[-1:]

    results = []
    for store_kind in store_kinds:
        for gap in gap_requests:
            for interval in checkpoint_intervals:
                tmpdir = tempfile.mkdtemp(prefix="fides-wal-") if store_kind == "wal" else None
                factory = (
                    (lambda sid, d=tmpdir: FileStateStore(f"{d}/{sid}.wal"))
                    if store_kind == "wal"
                    else None
                )
                config = SystemConfig(
                    num_servers=num_servers,
                    items_per_shard=items_per_shard,
                    txns_per_block=txns_per_block,
                    ops_per_txn=2,
                    multi_versioned=False,
                    message_signing="hash",
                    seed=2020,
                )
                system = ScaledFidesSystem(
                    config,
                    latency=ConstantLatency(0.0002),
                    state_store_factory=factory,
                )
                workload = PartitionedWorkload(
                    partitions=locality_partitions(system, group_size),
                    ops_per_txn=2,
                    locality=1.0,
                    conflict_free_window=txns_per_block,
                    seed=2020,
                )
                target = config.server_ids[-1]
                workload_started = _time.perf_counter()
                warmup = system.run_workload(
                    workload.generate(warmup_requests), num_clients=num_clients
                )
                if interval:
                    system.create_checkpoint()
                system.crash_server(target)
                gap_result = system.run_workload(
                    workload.generate(gap), num_clients=num_clients
                )
                workload_time = _time.perf_counter() - workload_started
                recovery_result = system.recover_server(target)
                wal_bytes = system.servers[target].state_store.size_bytes()
                if tmpdir is not None:
                    for server in system.servers.values():
                        server.state_store.close()
                    shutil.rmtree(tmpdir, ignore_errors=True)
                row = {
                    "label": f"recovery-{store_kind}-gap{gap}-ckpt{interval}",
                    "store": store_kind,
                    "checkpointed": bool(interval),
                    "warmup committed": warmup.committed,
                    "gap committed": gap_result.committed,
                    "restored blocks": recovery_result.restored_blocks,
                    "fetched blocks": recovery_result.fetched_blocks,
                    "recover (ms)": round(recovery_result.wall_time_s * 1000.0, 3),
                    "workload (s)": round(workload_time, 3),
                    "state store (KiB)": round(wal_bytes / 1024.0, 1),
                }
                results.append((recovery_result, row))
    rows = [row for _, row in results]
    return (results, rows) if return_results else rows


def failover(
    deployments: Iterable[str] = ("classic", "scaled"),
    stall_requests: Iterable[int] = (4, 8),
    warmup_requests: int = 4,
    post_requests: int = 4,
    num_servers: int = 4,
    group_size: int = 2,
    items_per_shard: int = 60,
    txns_per_block: int = 2,
    num_clients: int = 2,
    num_requests: Optional[int] = None,
    smoke: bool = False,
    return_results: bool = False,
):
    """Coordinator-failover sweep: view-change cost vs outage depth.

    Each point warms a deployment up, then crashes the coordinator *mid-round*
    (a declarative vote-phase crash plan): the in-flight round stalls on the
    surviving cohorts -- no ROUND_FAILED can arrive, the sender is dead.
    ``stall_requests`` more transactions are submitted into the outage
    (``classic``: they fail fast at the dead coordinator; ``scaled``: disjoint
    groups keep committing, deepening the frontier gap the successor must
    certify).  The server is then recovered and the view change timed:
    VIEW_CHANGE solicitation, frontier-certificate verification, NEW_VIEW,
    and the successor's re-proposal of every stalled round.  The virtual
    time is the protocol cost on the simulated network (the VIEW_CHANGE and
    NEW_VIEW broadcast round trips); the wall time is the Python cost of
    certificate verification and re-proposal.  ``post committed`` proves the
    cluster commits again under the successor.

    ``num_requests`` (the CLI's ``--requests``) overrides the largest stall
    depth; ``smoke=True`` restricts the grid to the smallest depth per
    deployment (the CI configuration).
    """
    import time as _time

    from repro.bench.harness import locality_partitions
    from repro.common.config import SystemConfig
    from repro.core.fides import FidesSystem
    from repro.core.scaled import ScaledFidesSystem
    from repro.faultsim.plan import FaultPlan
    from repro.faultsim.policy import PlannedFaultPolicy
    from repro.net.latency import ConstantLatency
    from repro.workload.ycsb import PartitionedWorkload, YcsbWorkload

    deployments = tuple(deployments)
    stall_requests = tuple(stall_requests)
    if num_requests is not None:
        stall_requests = tuple(g for g in stall_requests if g < num_requests) + (num_requests,)
    if smoke:
        stall_requests = stall_requests[:1]

    results = []
    for deployment in deployments:
        scaled = deployment == "scaled"
        for stall in stall_requests:
            config = SystemConfig(
                num_servers=num_servers,
                items_per_shard=items_per_shard,
                txns_per_block=txns_per_block,
                ops_per_txn=2,
                multi_versioned=False,
                message_signing="hash",
                seed=2020,
            )
            if scaled:
                system = ScaledFidesSystem(config, latency=ConstantLatency(0.0002))
                workload = PartitionedWorkload(
                    partitions=locality_partitions(system, group_size),
                    ops_per_txn=2,
                    locality=1.0,
                    conflict_free_window=txns_per_block,
                    seed=2020,
                )
            else:
                system = FidesSystem(config, latency=ConstantLatency(0.0002))
                workload = YcsbWorkload(
                    item_ids=list(system.shard_map.all_items()),
                    ops_per_txn=2,
                    conflict_free_window=txns_per_block,
                    seed=2020,
                )
            target = config.server_ids[0]
            warmup = system.run_workload(
                workload.generate(warmup_requests), num_clients=num_clients
            )
            # Crash mid-round: the plan fires at the target's first vote
            # observation of the outage workload, stranding that round on
            # the surviving cohorts.
            system.inject_fault(
                target,
                PlannedFaultPolicy(
                    [
                        FaultPlan(
                            fault="coordinator-crash",
                            target=target,
                            trigger={"kind": "phase", "phases": ["vote"]},
                        )
                    ]
                ),
            )
            stall_result = system.run_workload(
                workload.generate(stall), num_clients=num_clients
            )
            system.recover_server(target)
            started = _time.perf_counter()
            outcome = system.fail_over(target)
            wall_time = _time.perf_counter() - started
            post = system.run_workload(
                workload.generate(post_requests), num_clients=num_clients
            )
            row = {
                "label": f"failover-{deployment}-stall{stall}",
                "deployment": deployment,
                "stall requests": stall,
                "warmup committed": warmup.committed,
                "committed during outage": stall_result.committed,
                "reproposed rounds": len(outcome.stalled_rounds),
                "certificates": len(outcome.certificates),
                "frontier height": outcome.frontier_height,
                "successor": outcome.successor,
                "new view": outcome.new_view,
                "view change (virtual ms)": round(outcome.timing.total * 1000.0, 3),
                "view change (wall ms)": round(wall_time * 1000.0, 3),
                "post committed": post.committed,
            }
            results.append((outcome, row))
    rows = [row for _, row in results]
    return (results, rows) if return_results else rows


def ablation_latency_regime(
    num_requests: int = 60,
    return_results: bool = False,
):
    """LAN vs WAN latency: where TFCommit shifts from compute- to network-bound."""
    results: List[ExperimentResult] = []
    for name, latency in (("lan", lan_latency()), ("wan", wan_latency())):
        config = ExperimentConfig(
            label=f"ablation-latency-{name}",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=5,
            items_per_shard=1000,
            txns_per_block=20,
            num_requests=num_requests,
        )
        results.append(run_experiment(config, latency=latency))
    return (results, _rows(results)) if return_results else _rows(results)


def ablation_signing_scheme(
    num_requests: int = 40,
    return_results: bool = False,
):
    """Real Schnorr vs keyed-hash message envelopes (co-signing always Schnorr)."""
    results: List[ExperimentResult] = []
    for scheme in ("hash", "schnorr"):
        config = ExperimentConfig(
            label=f"ablation-signing-{scheme}",
            protocol=PROTOCOL_TFCOMMIT,
            num_servers=4,
            items_per_shard=500,
            txns_per_block=10,
            num_requests=num_requests,
            message_signing=scheme,
        )
        results.append(run_experiment(config))
    return (results, _rows(results)) if return_results else _rows(results)


#: Registry used by the CLI entry point.
EXPERIMENT_REGISTRY = {
    "figure12": figure12_2pc_vs_tfcommit,
    "figure13": figure13_txns_per_block,
    "figure14": figure14_number_of_servers,
    "figure15": figure15_items_per_shard,
    "multiclient": multiclient_scaling,
    "faultmatrix": faultmatrix,
    "pipeline": pipeline,
    "scaledgroups": scaledgroups,
    "scaleout": scaleout,
    "recovery": recovery,
    "failover": failover,
    "ablation-latency": ablation_latency_regime,
    "ablation-signing": ablation_signing_scheme,
}
