"""Counterexample traces as deterministic, replayable artifacts.

A trace is a small JSON document -- scenario name, pick sequence, the
invariant(s) it violates, and the mutation flags that must be on for the
bug to exist.  Because every run is deterministic given its pick prefix,
replaying a trace reproduces the original behaviour exactly; committed
traces under ``tests/check/traces/`` therefore double as regression tests
(``tests/check/test_traces.py`` replays each one and asserts that the
violation reproduces with its mutations enabled and disappears without).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.check.choices import ChoiceSource, driven_by
from repro.check.explorer import Counterexample
from repro.check.invariants import RunRecord, Violation, evaluate
from repro.check.mutations import MUTATIONS, mutated
from repro.check.scenarios import make_scenario

#: Bump when the trace document shape changes incompatibly.
TRACE_VERSION = 1


@dataclass
class Trace:
    """One saved counterexample (or witness) trace."""

    scenario: str
    choices: List[int]
    #: Invariants the trace violates; empty for a clean witness trace.
    invariants: List[str] = field(default_factory=list)
    #: Mutation flags that must be enabled to reproduce.
    mutations: List[str] = field(default_factory=list)
    #: "violation" (must violate when replayed with its mutations) or
    #: "clean" (must pass).
    expect: str = "violation"
    description: str = ""
    version: int = TRACE_VERSION

    def to_document(self) -> Dict:
        return {
            "version": self.version,
            "scenario": self.scenario,
            "choices": list(self.choices),
            "invariants": list(self.invariants),
            "mutations": list(self.mutations),
            "expect": self.expect,
            "description": self.description,
        }


def trace_from_counterexample(
    counterexample: Counterexample,
    mutations: Tuple[str, ...] = (),
    description: str = "",
) -> Trace:
    return Trace(
        scenario=counterexample.scenario,
        choices=list(counterexample.picks),
        invariants=counterexample.invariants,
        mutations=list(mutations),
        expect="violation",
        description=description,
    )


def save_trace(trace: Trace, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace.to_document(), indent=2, sort_keys=True) + "\n")
    return path


def load_trace(path) -> Trace:
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != TRACE_VERSION:
        raise ValueError(f"{path}: unsupported trace version {version!r}")
    for name in document.get("mutations", []):
        if name not in MUTATIONS:
            raise ValueError(f"{path}: unknown mutation {name!r}")
    return Trace(
        scenario=document["scenario"],
        choices=[int(pick) for pick in document["choices"]],
        invariants=list(document.get("invariants", [])),
        mutations=list(document.get("mutations", [])),
        expect=document.get("expect", "violation"),
        description=document.get("description", ""),
        version=version,
    )


def replay(
    trace: Trace, with_mutations: Optional[bool] = None
) -> Tuple[RunRecord, List[Violation]]:
    """Re-execute a trace; returns the run record and its violations.

    ``with_mutations=False`` replays the same pick sequence with the trace's
    mutation flags *off* -- the regression tests use it to assert the fixed
    code is clean on the exact schedule that broke the buggy code.
    """
    enabled = trace.mutations if (with_mutations is None or with_mutations) else ()
    scenario = make_scenario(trace.scenario)
    with mutated(*enabled):
        source = ChoiceSource(trace.choices, features=set(scenario.features))
        with driven_by(source):
            record = scenario.run()
    return record, evaluate(record, scenario.invariants)


def assert_trace(path) -> None:
    """Pytest helper: a saved trace must behave exactly as recorded.

    A ``violation`` trace must reproduce (a superset of) its recorded
    invariant violations with its mutations enabled, and replay clean with
    them disabled; a ``clean`` trace must simply pass.
    """
    trace = load_trace(path)
    _, violations = replay(trace)
    violated = {violation.invariant for violation in violations}
    if trace.expect == "clean":
        assert not violations, f"{path}: clean trace now violates {sorted(violated)}"
        return
    missing = set(trace.invariants) - violated
    assert not missing, (
        f"{path}: trace no longer reproduces invariant(s) {sorted(missing)} "
        f"(got {sorted(violated)})"
    )
    if trace.mutations:
        _, fixed_violations = replay(trace, with_mutations=False)
        assert not fixed_violations, (
            f"{path}: schedule still violates "
            f"{sorted({v.invariant for v in fixed_violations})} with the "
            "mutations disabled -- the bug is live, not re-introduced"
        )
