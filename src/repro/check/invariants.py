"""The safety-property library the model checker evaluates after each run.

Every invariant is a function ``(RunRecord) -> List[Violation]`` over the
*final* state of one explored run: the paper's safety claims (Section 5)
quantified over honest servers, plus implementation-level properties the
reproduction adds (round-state release, workload accounting, pipelining
conformance).  Invariants never mutate the system; the explorer calls
:func:`evaluate` once per run and treats any non-empty result as a
counterexample.

Byzantine servers are excluded where the paper's claims quantify over
honest participants only; servers still crashed at evaluation time are
excluded from liveness-flavoured checks (a crashed server holds no state to
check) but the scenarios recover every crashed server before evaluating, so
in practice the quantification is total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.crypto.cosi import cosi_verify
from repro.sim.scheduler import ORDSERV_RESOURCE

#: Tolerance when comparing virtual-time floats post hoc.
_EPS = 1e-9

#: Phase names that occupy a coordinator's compute serially.
_COMPUTE_PHASES = frozenset({"aggregate", "finalize"})


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in one explored run."""

    invariant: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.invariant}] {self.message}"


@dataclass
class RunRecord:
    """Everything one explored run exposes to the invariant library."""

    #: The FidesSystem / ScaledFidesSystem after the run (post-recovery).
    system: object
    #: One WorkloadResult per ``run_workload`` call, in call order.
    slices: List[object] = field(default_factory=list)
    #: Servers whose fault policy misbehaved this run (excluded from the
    #: honest-server quantifications).
    byzantine: FrozenSet[str] = frozenset()
    #: Free-form scenario annotations (crash points taken, recoveries...).
    notes: Dict[str, object] = field(default_factory=dict)

    def honest_servers(self) -> Dict[str, object]:
        return {
            server_id: server
            for server_id, server in self.system.servers.items()
            if server_id not in self.byzantine and not server.crashed
        }


InvariantFn = Callable[[RunRecord], List[Violation]]


def _decisions_of(server) -> Dict[str, str]:
    """txn_id -> "committed"/"aborted" as recorded in one server's log."""
    decisions: Dict[str, str] = {}
    for block in server.log:
        status = "committed" if block.is_commit else "aborted"
        for txn in block.transactions:
            decisions[txn.txn_id] = status
    return decisions


def check_agreement(record: RunRecord) -> List[Violation]:
    """No two honest servers decide differently for any transaction."""
    violations: List[Violation] = []
    merged: Dict[str, tuple] = {}
    for server_id, server in sorted(record.honest_servers().items()):
        for txn_id, status in _decisions_of(server).items():
            seen = merged.get(txn_id)
            if seen is None:
                merged[txn_id] = (server_id, status)
            elif seen[1] != status:
                violations.append(
                    Violation(
                        "agreement",
                        f"txn {txn_id}: {seen[0]} logged {seen[1]} but "
                        f"{server_id} logged {status}",
                    )
                )
    return violations


def check_decided_once(record: RunRecord) -> List[Violation]:
    """Every transaction is decided in at most one block per honest log.

    The view-change safety claim ("one decided block per (group, view)") in
    checkable form: a stalled round re-proposed by an elected successor must
    never decide twice -- neither as the original proposal racing the
    re-proposal through delivery, nor as a second decision under the new
    view.  Any double appearance of a txn_id in one log is a violation
    regardless of the two decisions agreeing.
    """
    violations: List[Violation] = []
    for server_id, server in sorted(record.honest_servers().items()):
        first_seen: Dict[str, int] = {}
        for block in server.log:
            for txn in block.transactions:
                earlier = first_seen.get(txn.txn_id)
                if earlier is not None:
                    violations.append(
                        Violation(
                            "decided-once",
                            f"{server_id}: txn {txn.txn_id} decided in block "
                            f"{earlier} and again in block {block.height}",
                        )
                    )
                else:
                    first_seen[txn.txn_id] = block.height
    return violations


def check_hash_chain(record: RunRecord) -> List[Violation]:
    """Every honest server's log verifies end to end (hash chain + co-signs)."""
    violations: List[Violation] = []
    directory = record.system.network.public_key_directory()
    for server_id, server in sorted(record.honest_servers().items()):
        result = server.log.verify(directory, checkpoint=server.latest_checkpoint)
        if not result.valid:
            violations.append(
                Violation(
                    "hash-chain",
                    f"{server_id}: log invalid at height "
                    f"{result.first_invalid_height}: {result.reason}",
                )
            )
    return violations


def check_frontier_monotonic(record: RunRecord) -> List[Violation]:
    """Commit timestamps advance strictly per chain (the staleness rule).

    Every commit block's smallest commit timestamp must lie strictly above
    the largest commit timestamp of every earlier commit block of the same
    group (or of the whole log, classic deployment) -- otherwise a stale
    transaction slipped past the frontier check.
    """
    violations: List[Violation] = []
    for server_id, server in sorted(record.honest_servers().items()):
        frontiers: Dict[object, object] = {}
        for block in server.log:
            if not block.is_commit or not block.transactions:
                continue
            key = block.group if block.group is not None else "__classic__"
            lowest = min(txn.commit_ts for txn in block.transactions)
            frontier = frontiers.get(key)
            if frontier is not None and lowest <= frontier:
                violations.append(
                    Violation(
                        "frontier-monotonic",
                        f"{server_id}: block {block.height} commits ts "
                        f"{lowest.as_tuple()} at or below the committed "
                        f"frontier {frontier.as_tuple()} of chain {key!r}",
                    )
                )
            highest = max(txn.commit_ts for txn in block.transactions)
            if frontier is None or highest > frontier:
                frontiers[key] = highest
    return violations


def check_no_commit_lost(record: RunRecord) -> List[Violation]:
    """Every client-committed transaction survives in every honest log.

    The cross-crash/recovery half of the paper's durability claim: once a
    client saw "committed", the transaction must be in a commit block on
    every honest server -- including servers that crashed and recovered
    since.
    """
    committed: List[str] = []
    for workload in record.slices:
        committed.extend(o.txn_id for o in workload.outcomes if o.committed)
    violations: List[Violation] = []
    for server_id, server in sorted(record.honest_servers().items()):
        decisions = _decisions_of(server)
        for txn_id in committed:
            if decisions.get(txn_id) != "committed":
                violations.append(
                    Violation(
                        "no-commit-lost",
                        f"txn {txn_id} was reported committed to its client "
                        f"but {server_id} logs it as "
                        f"{decisions.get(txn_id, 'absent')}",
                    )
                )
    return violations


def check_cosign_consistency(record: RunRecord) -> List[Violation]:
    """Every logged block is co-signed by exactly the right signer set.

    Classic blocks must carry the full server set; group blocks exactly the
    block's dynamic group.  The collective signature must verify over the
    block's signing digest, and every server with a root in the block must
    be among the signers.
    """
    violations: List[Violation] = []
    directory = record.system.network.public_key_directory()
    full_set = frozenset(record.system.config.server_ids)
    for server_id, server in sorted(record.honest_servers().items()):
        for block in server.log:
            where = f"{server_id}: block {block.height}"
            if block.cosign is None:
                violations.append(
                    Violation("cosign-consistency", f"{where} has no collective signature")
                )
                continue
            signers = frozenset(block.cosign.signer_ids)
            expected = frozenset(block.group) if block.group is not None else full_set
            if signers != expected:
                violations.append(
                    Violation(
                        "cosign-consistency",
                        f"{where} signed by {sorted(signers)}, expected "
                        f"{sorted(expected)}",
                    )
                )
            if not frozenset(block.roots) <= signers:
                violations.append(
                    Violation(
                        "cosign-consistency",
                        f"{where} records roots of non-signers "
                        f"{sorted(frozenset(block.roots) - signers)}",
                    )
                )
            if not cosi_verify(block.cosign, block.signing_digest(), directory):
                violations.append(
                    Violation(
                        "cosign-consistency",
                        f"{where}: collective signature fails verification",
                    )
                )
    return violations


def check_round_state_released(record: RunRecord) -> List[Violation]:
    """After quiescence no server buffers round state (nonce, spec root).

    A round either decides (the decision releases it) or fails (the
    ``ROUND_FAILED`` notification releases it); either way nothing may leak.
    This is the invariant the PR 3 ``ROUND_FAILED`` bug violated.
    """
    violations: List[Violation] = []
    for server_id, server in sorted(record.honest_servers().items()):
        pending = server.commitment.pending_round_count()
        if pending:
            violations.append(
                Violation(
                    "round-state-released",
                    f"{server_id} still buffers {pending} round(s) of "
                    "volatile state after quiescence",
                )
            )
    return violations


def check_workload_accounting(record: RunRecord) -> List[Violation]:
    """Each workload run reports exactly its own blocks and outcomes.

    Two halves: a block result must not appear in two runs' reports
    (the PR 3 double-count bug), and within one run the client-visible
    committed set must equal the block-level committed set.
    """
    violations: List[Violation] = []
    seen: Dict[int, int] = {}
    for index, workload in enumerate(record.slices):
        for block_result in workload.block_results:
            owner = seen.setdefault(id(block_result), index)
            if owner != index:
                violations.append(
                    Violation(
                        "workload-accounting",
                        f"block result ({block_result.status}) reported by "
                        f"workload run {owner} appears again in run {index}",
                    )
                )
        client_committed = {o.txn_id for o in workload.outcomes if o.committed}
        block_committed = {
            outcome.txn_id
            for block_result in workload.block_results
            for outcome in block_result.outcomes
            if outcome.status == "committed"
        }
        if client_committed != block_committed:
            violations.append(
                Violation(
                    "workload-accounting",
                    f"workload run {index}: clients saw commits "
                    f"{sorted(client_committed)} but blocks record "
                    f"{sorted(block_committed)}",
                )
            )
    return violations


def check_pipeline_conformance(record: RunRecord) -> List[Violation]:
    """The scheduled timeline respects the dependency rules (DESIGN.md §7).

    A conservative post-hoc replay over the scheduler's retained task
    windows: phase windows within a task must be sequential, coordinator
    compute phases and terminal deliveries must serialize per resource, and
    at pipeline depth 1 a chained task must start no earlier than its
    predecessor finished.  (Deeper pipelines gate on in-flight state that is
    overwritten as tasks progress, so only the depth-1 rule is replayable
    exactly.)
    """
    sim = getattr(record.system, "sim", None)
    if sim is None:
        return []
    scheduler = sim.scheduler
    violations: List[Violation] = []
    serialized: Dict[tuple, List[tuple]] = {}
    for resource, tasks in sorted(scheduler.all_tasks().items()):
        for task in tasks:
            windows = list(task.phases.items())
            for (phase_a, (_, end_a)), (phase_b, (start_b, _)) in zip(windows, windows[1:]):
                if start_b < end_a - _EPS:
                    violations.append(
                        Violation(
                            "pipeline-conformance",
                            f"{task.label}: phase {phase_b!r} starts at "
                            f"{start_b:.9f} before phase {phase_a!r} ends at "
                            f"{end_a:.9f}",
                        )
                    )
            for phase, window in task.phases.items():
                if phase in _COMPUTE_PHASES:
                    serialized.setdefault((resource, "compute"), []).append(
                        (*window, f"{task.label}/{phase}")
                    )
                elif phase == "decision":
                    serialized.setdefault((resource, "terminal"), []).append(
                        (*window, f"{task.label}/{phase}")
                    )
                elif phase == "order":
                    # The delivery occupied the lane(s) the scheduler
                    # recorded: one shared resource for the single
                    # sequencer, one per involved ordering shard for the
                    # sharded service (a cross-shard delivery serializes
                    # on every lane it names).
                    lanes = task.delivery_resources or (ORDSERV_RESOURCE,)
                    for lane in lanes:
                        serialized.setdefault((lane, "terminal"), []).append(
                            (*window, f"{task.label}/{phase}")
                        )
        if scheduler.pipeline_depth == 1:
            for previous, task in zip(tasks, tasks[1:]):
                if not (task.chained and previous.done_at is not None):
                    continue
                if task.started_at < previous.done_at - _EPS:
                    violations.append(
                        Violation(
                            "pipeline-conformance",
                            f"{task.label} starts at {task.started_at:.9f} "
                            f"inside its predecessor {previous.label} "
                            f"(done {previous.done_at:.9f}) at depth 1",
                        )
                    )
    for (resource, kind), windows in sorted(serialized.items()):
        windows.sort()
        for (_, end_a, label_a), (start_b, _, label_b) in zip(windows, windows[1:]):
            if start_b < end_a - _EPS:
                violations.append(
                    Violation(
                        "pipeline-conformance",
                        f"{kind} activities {label_a} and {label_b} overlap "
                        f"on resource {resource!r}",
                    )
                )
    return violations


#: The catalogue, in evaluation order.
INVARIANTS: Dict[str, InvariantFn] = {
    "agreement": check_agreement,
    "decided-once": check_decided_once,
    "hash-chain": check_hash_chain,
    "frontier-monotonic": check_frontier_monotonic,
    "no-commit-lost": check_no_commit_lost,
    "cosign-consistency": check_cosign_consistency,
    "round-state-released": check_round_state_released,
    "workload-accounting": check_workload_accounting,
    "pipeline-conformance": check_pipeline_conformance,
}


def evaluate(
    record: RunRecord, names: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the selected invariants (all by default) and collect violations."""
    selected = list(INVARIANTS) if names is None else list(names)
    violations: List[Violation] = []
    for name in selected:
        try:
            checker = INVARIANTS[name]
        except KeyError:
            raise KeyError(f"unknown invariant {name!r}; known: {sorted(INVARIANTS)}") from None
        violations.extend(checker(record))
    return violations
