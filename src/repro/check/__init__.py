"""Explicit-state checking of the real implementation.

``repro.check`` turns the deterministic simulation into a model checker:

- :mod:`repro.check.choices` -- the ChoicePoint API protocol code consults
  at every nondeterministic site (zero ``repro`` imports, safe everywhere);
- :mod:`repro.check.mutations` -- re-introducible historical bugs for
  checker self-tests (zero ``repro`` imports);
- :mod:`repro.check.invariants` -- the safety-property library evaluated
  against every explored run;
- :mod:`repro.check.scenarios` -- small checkable deployments (crash,
  Byzantine, ordering-service reorder) built from the real system classes;
- :mod:`repro.check.explorer` -- prefix-branching BFS/DFS with fingerprint
  dedup and counterexample minimization;
- :mod:`repro.check.replay` -- saved-trace replay, turning counterexamples
  into deterministic regression tests;
- :mod:`repro.check.lint` -- the AST lint pass (``python -m
  repro.check.lint``) enforcing determinism/codec/assert rules;
- :mod:`repro.check.static` -- the whole-program protocol analyzer
  (``python -m repro.check.static``): message-flow totality, round-state
  leak detection, and exception-effect checking.

Heavy submodules are loaded lazily: ``core``/``sim``/``net`` import the two
leaf modules above at import time, so this package ``__init__`` must not
import anything that imports them back.
"""

from __future__ import annotations

from typing import Any

_LAZY = {
    "choices": "repro.check.choices",
    "mutations": "repro.check.mutations",
    "invariants": "repro.check.invariants",
    "scenarios": "repro.check.scenarios",
    "explorer": "repro.check.explorer",
    "replay": "repro.check.replay",
    "lint": "repro.check.lint",
    "static": "repro.check.static",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        import importlib

        return importlib.import_module(_LAZY[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
