"""Command-line entry point for the model checker.

``python -m repro.check --smoke`` runs the bounded CI budget: every
registered scenario (crash, Byzantine, ordering-service reorder, and pure
interleaving branches) under a small per-scenario run cap, failing the
process if any invariant violation is found.  Counterexamples are minimized
and -- with ``--traces-dir`` -- saved as replayable JSON traces, which CI
uploads as artifacts so a red run ships its own reproducer.

Without ``--smoke`` the budgets come from ``--max-runs`` / ``--max-states``
/ ``--max-depth``, and ``--scenario`` narrows the sweep; ``--mutation``
re-introduces a fixed historical bug first (the self-test knobs from
:mod:`repro.check.mutations`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.check.explorer import ExplorationResult, Explorer
from repro.check.mutations import MUTATIONS, mutated
from repro.check.replay import save_trace, trace_from_counterexample
from repro.check.scenarios import SCENARIOS

#: Per-scenario run budget used by ``--smoke`` (chosen so the whole sweep
#: stays in the low seconds while still crossing >1000 distinct states).
SMOKE_MAX_RUNS = 15


def _explore_one(
    name: str,
    max_runs: int,
    max_states: Optional[int],
    max_depth: Optional[int],
    strategy: str,
    keep_going: bool,
) -> ExplorationResult:
    explorer = Explorer(
        SCENARIOS[name],
        max_runs=max_runs,
        max_states=max_states,
        max_depth=max_depth,
        strategy=strategy,
        stop_at_first_violation=not keep_going,
        minimize=True,
    )
    return explorer.explore()


def _result_document(result: ExplorationResult) -> Dict:
    return {
        "scenario": result.scenario,
        "runs": result.runs,
        "distinct_states": result.distinct_states,
        "choice_points": result.choice_points,
        "budget_exhausted": result.budget_exhausted,
        "clean": result.clean,
        "counterexamples": [
            {
                "picks": list(cex.picks),
                "invariants": cex.invariants,
                "minimized": cex.minimized,
                "violations": [
                    {"invariant": v.invariant, "message": v.message}
                    for v in cex.violations
                ],
            }
            for cex in result.counterexamples
        ],
    }


def _save_counterexamples(
    result: ExplorationResult, traces_dir: Path, mutations: Sequence[str]
) -> List[Path]:
    paths = []
    for index, cex in enumerate(result.counterexamples):
        trace = trace_from_counterexample(
            cex,
            mutations=tuple(mutations),
            description=(
                f"found by `python -m repro.check` exploring {result.scenario} "
                f"(run budget {result.runs})"
            ),
        )
        path = traces_dir / f"{result.scenario}-{index}.json"
        paths.append(save_trace(trace, path))
    return paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Explicit-state model checker over the real Fides implementation.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI budget: every scenario, {SMOKE_MAX_RUNS} runs each",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario(s) to explore (default: all)",
    )
    parser.add_argument("--max-runs", type=int, default=200, help="runs per scenario")
    parser.add_argument(
        "--max-states", type=int, default=None, help="distinct-state cap per scenario"
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, help="deviation-depth cap (choice index)"
    )
    parser.add_argument("--strategy", choices=("bfs", "dfs"), default="bfs")
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect every counterexample instead of stopping at the first",
    )
    parser.add_argument(
        "--mutation",
        action="append",
        default=[],
        choices=sorted(MUTATIONS),
        help="re-introduce a fixed historical bug (mutation self-test)",
    )
    parser.add_argument(
        "--traces-dir",
        type=Path,
        default=None,
        help="directory to write minimized counterexample traces into",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON on stdout"
    )
    args = parser.parse_args(argv)

    names = args.scenario if args.scenario else sorted(SCENARIOS)
    max_runs = SMOKE_MAX_RUNS if args.smoke else args.max_runs

    results: List[ExplorationResult] = []
    trace_paths: List[Path] = []
    with mutated(*args.mutation):
        for name in names:
            result = _explore_one(
                name,
                max_runs=max_runs,
                max_states=args.max_states,
                max_depth=args.max_depth,
                strategy=args.strategy,
                keep_going=args.keep_going,
            )
            results.append(result)
            if args.traces_dir is not None and result.counterexamples:
                trace_paths.extend(
                    _save_counterexamples(result, args.traces_dir, args.mutation)
                )

    total_states = sum(result.distinct_states for result in results)
    total_runs = sum(result.runs for result in results)
    violations = sum(len(result.counterexamples) for result in results)

    if args.json:
        print(
            json.dumps(
                {
                    "mutations": list(args.mutation),
                    "total_runs": total_runs,
                    "total_distinct_states": total_states,
                    "violations": violations,
                    "traces": [str(path) for path in trace_paths],
                    "scenarios": [_result_document(result) for result in results],
                },
                indent=2,
            )
        )
    else:
        for result in results:
            status = "clean" if result.clean else "VIOLATION"
            print(
                f"{result.scenario}: {status} -- {result.runs} runs, "
                f"{result.distinct_states} distinct states, "
                f"{result.choice_points} choice points"
            )
            for cex in result.counterexamples:
                print(
                    f"  counterexample picks={cex.picks} "
                    f"invariants={cex.invariants}"
                )
                for violation in cex.violations:
                    print(f"    {violation.invariant}: {violation.message}")
        for path in trace_paths:
            print(f"trace written: {path}")
        print(
            f"repro.check: {total_runs} runs, {total_states} distinct states, "
            f"{violations} violation(s)"
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
