"""Enumerable nondeterminism: the ChoicePoint API.

The reproduction's runs are deterministic by construction -- the event loop
orders everything by ``(time, seq)`` and every random draw is seeded.  That
determinism is what makes the implementation *checkable*: if every place
where a real deployment could behave differently (same-time delivery order,
which cohort a broadcast reaches first, when a crash fires, what a Byzantine
coordinator does, which buffered block the ordering service releases) asks an
explicit question instead of baking in one answer, then the set of reachable
behaviours becomes an enumerable tree of integer choices.

This module is that question-asking API.  It deliberately imports nothing
from the rest of ``repro`` so that any layer -- ``sim``, ``net``, ``core`` --
can consult it without creating an import cycle.

Protocol code calls :func:`choose` (or :func:`choose_order`) at each
nondeterministic site.  In production no :class:`ChoiceSource` is installed
and every call returns its default with near-zero overhead, reproducing the
historical single-schedule behaviour bit-for-bit.  Under the model checker
(:mod:`repro.check.explorer`) a source is installed via :func:`driven_by`:
it replays a *prefix* of forced picks, falls back to defaults past the
prefix, and records the full :class:`ChoicePoint` trace so the explorer can
branch on every alternative it saw.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, TypeVar

T = TypeVar("T")

_ROOT_FINGERPRINT = hashlib.sha256(b"repro.check/choice-tree-root").hexdigest()


class ChoiceError(Exception):
    """A choice prefix no longer matches the decision sites of the run."""


@dataclass(frozen=True)
class ChoicePoint:
    """One decision taken during a driven run."""

    #: Position in the run's choice sequence (0-based).
    index: int
    #: Stable human-readable description of the decision site.
    label: str
    #: Number of alternatives available (always >= 2 when recorded).
    options: int
    #: The alternative actually taken this run.
    picked: int


class ChoiceSource:
    """Replays a pick prefix, defaults past it, and records the trace.

    ``features`` restricts which families of choice sites are live (``None``
    means all): sites gate themselves with a feature tag so a scenario can,
    say, explore crash injection without also exploding every same-time
    event tie into ``k!`` interleavings.
    """

    def __init__(
        self,
        prefix: Sequence[int] = (),
        features: Optional[Set[str]] = None,
    ) -> None:
        self.prefix: List[int] = list(prefix)
        self.features = None if features is None else set(features)
        #: Every decision taken, in order.
        self.trace: List[ChoicePoint] = []
        #: Hash-chain fingerprint of each tree node visited (one per choice);
        #: the explorer counts these toward "distinct states explored".
        self.node_fingerprints: List[str] = []
        self._chain = _ROOT_FINGERPRINT

    def enabled(self, feature: Optional[str]) -> bool:
        return feature is None or self.features is None or feature in self.features

    def choose(self, label: str, options: int, default: int = 0) -> int:
        if options < 2:
            raise ChoiceError(f"choice {label!r} needs >= 2 options, got {options}")
        index = len(self.trace)
        if index < len(self.prefix):
            picked = self.prefix[index]
        else:
            picked = default
        if not 0 <= picked < options:
            raise ChoiceError(
                f"choice #{index} {label!r}: pick {picked} out of range for "
                f"{options} options (stale or foreign trace prefix)"
            )
        self.trace.append(ChoicePoint(index=index, label=label, options=options, picked=picked))
        self._chain = hashlib.sha256(
            f"{self._chain}|{label}|{options}|{picked}".encode("utf-8")
        ).hexdigest()
        self.node_fingerprints.append(self._chain)
        return picked

    def picks(self) -> List[int]:
        return [point.picked for point in self.trace]

    def __len__(self) -> int:
        return len(self.trace)


_active: Optional[ChoiceSource] = None


def active_choices() -> Optional[ChoiceSource]:
    """The installed :class:`ChoiceSource`, or ``None`` outside the checker."""
    return _active


@contextmanager
def driven_by(source: ChoiceSource) -> Iterator[ChoiceSource]:
    """Install ``source`` as the run's choice source for the ``with`` body."""
    global _active
    if _active is not None:
        raise ChoiceError("nested driven_by() is not supported; one run at a time")
    _active = source
    try:
        yield source
    finally:
        _active = None


def choose(label: str, options: int, default: int = 0, feature: Optional[str] = None) -> int:
    """Ask the active source to pick in ``range(options)``; default otherwise.

    Sites with fewer than two options, or whose ``feature`` the source has
    not enabled, are never recorded -- keeping traces short and stable.
    """
    source = _active
    if source is None or options < 2 or not source.enabled(feature):
        return default
    return source.choose(label, options, default)


def choose_order(label: str, items: Sequence[T], feature: Optional[str] = None) -> List[T]:
    """Return ``items`` in a chosen permutation (identity when undriven).

    The permutation is built one pick at a time so each branch point stays a
    small integer choice; enumerating all picks covers all ``k!`` orders.
    """
    ordered = list(items)
    source = _active
    if source is None or len(ordered) < 2 or not source.enabled(feature):
        return ordered
    out: List[T] = []
    while len(ordered) > 1:
        pick = source.choose(f"{label}[{len(out)}]", len(ordered), 0)
        out.append(ordered.pop(pick))
    out.extend(ordered)
    return out
