"""Mutation flags: re-introducible historical bugs for checker self-tests.

A model checker that has never caught a real bug proves nothing.  This
registry lets the test suite flip *fixed* bugs back on -- each one guarded
at its original site by ``if mutation_enabled("..."):`` -- and assert that
the checker rediscovers them as invariant violations with minimized,
replayable counterexamples.

Like :mod:`repro.check.choices`, this module imports nothing from the rest
of ``repro`` so protocol code can consult it without import cycles.  All
flags default to off; production behaviour is unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


@dataclass(frozen=True)
class Mutation:
    """One re-introducible bug."""

    name: str
    description: str


#: Every known mutation.  Keep descriptions tied to the fix that removed the
#: bug, so a reader can find both sides of the story.
MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="pr3-round-failed-leak",
            description=(
                "Coordinator does not broadcast ROUND_FAILED when a round "
                "aborts early (cohort unreachable / voter loss), so cohorts "
                "that already registered the round leak its RoundState "
                "(fixed in PR 3; caught by the round-state-released "
                "invariant)."
            ),
        ),
        Mutation(
            name="pr7-2pc-vote-keyerror",
            description=(
                "2PC coordinator tallies votes without first failing the "
                "round on unreachable/refused cohorts, so a crashed cohort's "
                "synthesized response (which carries no vote fields) "
                "KeyErrors the tally (fixed in PR 7; caught by the static "
                "analyzer's unguarded-subscript rule)."
            ),
        ),
        Mutation(
            name="pr3-double-count-blocks",
            description=(
                "run_workload() forgets the pre-run snapshot of coordinator "
                "results, so a second workload on the same system reports "
                "the first run's blocks again (fixed in PR 3; caught by the "
                "workload-accounting invariant)."
            ),
        ),
    )
}

_enabled: Dict[str, bool] = {name: False for name in MUTATIONS}


def mutation_enabled(name: str) -> bool:
    """Is the named mutation currently switched on?  (Hot-path guard.)"""
    try:
        return _enabled[name]
    except KeyError:
        raise KeyError(f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}") from None


def enable(name: str) -> None:
    mutation_enabled(name)  # validate the name
    _enabled[name] = True


def disable(name: str) -> None:
    mutation_enabled(name)
    _enabled[name] = False


def enabled_mutations() -> Tuple[str, ...]:
    return tuple(sorted(name for name, on in _enabled.items() if on))


@contextmanager
def mutated(*names: str) -> Iterator[None]:
    """Enable ``names`` for the ``with`` body, restoring prior state after."""
    previous = {name: _enabled[name] for name in _enabled}
    try:
        for name in names:
            enable(name)
        yield
    finally:
        _enabled.update(previous)
